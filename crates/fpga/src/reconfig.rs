//! Run-time reconfiguration operations.

use crate::arch::ArchParams;
use crate::cb::SetReset;
use crate::coords::{BramId, CbCoord, WireId};
use crate::frames::{CbField, FrameSet};

/// A partial reconfiguration of the device's configuration memory.
///
/// Mutations are the *only* way fault-emulation strategies alter a running
/// [`crate::Device`]; each one corresponds to writing specific
/// configuration frames, and [`Mutation::frames`] reports exactly which.
/// This keeps the emulation honest (no simulator back-doors) and makes the
/// reconfiguration cost of every fault model measurable.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Rewrite a LUT truth table (pulse / indetermination faults in
    /// combinational logic, paper §4.2 Fig. 5).
    SetLutTable {
        /// Target block.
        cb: CbCoord,
        /// New truth table.
        table: u16,
    },
    /// Toggle the `InvertFFinMux` control bit (pulse faults on CB input
    /// paths, paper §4.2 Fig. 6).
    SetInvertFfIn {
        /// Target block.
        cb: CbCoord,
        /// New control-bit value.
        invert: bool,
    },
    /// Select what value the local/global set-reset drives into the FF
    /// (`CLRMux`/`PRMux`).
    SetLsrDrive {
        /// Target block.
        cb: CbCoord,
        /// Set or reset.
        drive: SetReset,
    },
    /// Pulse the local set/reset line of one block by toggling its
    /// `InvertLSRMux` bit and restoring it (asynchronous single-FF
    /// bit-flip, paper §4.1).
    PulseLsr {
        /// Target block.
        cb: CbCoord,
    },
    /// Pulse the global set/reset line: *every* used flip-flop takes the
    /// value its `CLRMux`/`PRMux` selects.
    PulseGsr,
    /// Overwrite one bit of a memory block through its content frames
    /// (memory bit-flips, paper §4.1 Fig. 4).
    SetBramBit {
        /// Target block.
        bram: BramId,
        /// Word address.
        addr: usize,
        /// Bit within the word.
        bit: u32,
        /// New value.
        value: bool,
    },
    /// Turn on `extra` unused pass transistors along a wire, loading it
    /// (small delay faults, paper §4.3 Fig. 8). `extra = 0` restores the
    /// original routing.
    SetWireFanout {
        /// Target wire.
        wire: WireId,
        /// Extra pass transistors to enable.
        extra: u32,
    },
    /// Reroute a wire through `luts` unused pass-through LUTs (large delay
    /// faults, paper §4.3 Fig. 7). `luts = 0` restores the original route.
    SetWireDetour {
        /// Target wire.
        wire: WireId,
        /// Pass-through LUTs inserted.
        luts: u32,
    },
    /// Re-randomise an indeterminate flip-flop: rewrite its `CLRMux`/
    /// `PRMux` selection and pulse its local set/reset line in one merged
    /// frame write (the per-cycle operation of oscillating
    /// indeterminations, paper §6.2).
    ReRandomiseFf {
        /// Target block.
        cb: CbCoord,
        /// New random level.
        drive: SetReset,
    },
}

impl Mutation {
    /// The set of configuration frames this mutation writes.
    ///
    /// `ff_columns` is needed only by [`Mutation::PulseGsr`] (which itself
    /// writes nothing — the surrounding strategy pays for the mux
    /// reconfiguration of every FF column; the pulse is a port command).
    pub fn frames(&self, arch: &ArchParams, bitstream: &crate::Bitstream) -> FrameSet {
        let mut set = FrameSet::new();
        match self {
            Mutation::SetLutTable { cb, .. } => {
                set.add_cb_field(arch, *cb, CbField::LutTable);
            }
            Mutation::SetInvertFfIn { cb, .. } => {
                set.add_cb_field(arch, *cb, CbField::InvertFfIn);
            }
            Mutation::SetLsrDrive { cb, .. } | Mutation::ReRandomiseFf { cb, .. } => {
                set.add_cb_field(arch, *cb, CbField::LsrDrive);
            }
            Mutation::PulseLsr { cb } => {
                // Toggle and restore: the same frame is written twice, but
                // it is still one distinct frame; the double write is
                // reflected in the op's byte count by the device.
                set.add_cb_field(arch, *cb, CbField::InvertLsr);
            }
            Mutation::PulseGsr => {}
            Mutation::SetBramBit { bram, addr, .. } => {
                if let Ok(b) = bitstream.bram(*bram) {
                    set.add_bram_word(arch, *bram, *addr, b.width);
                }
            }
            Mutation::SetWireFanout { wire, .. } | Mutation::SetWireDetour { wire, .. } => {
                if let Ok(w) = bitstream.wire(*wire) {
                    set.add_wire_span(arch, w.col_span);
                }
            }
        }
        set
    }

    /// True if this mutation can alter circuit timing (and therefore
    /// requires a timing re-analysis).
    pub fn affects_timing(&self) -> bool {
        matches!(
            self,
            Mutation::SetWireFanout { .. } | Mutation::SetWireDetour { .. }
        )
    }
}
