//! The configured device: compiles a bitstream into an executable circuit
//! and runs it cycle by cycle.

use crate::arch::ArchParams;
use crate::bitstream::Bitstream;
use crate::cb::{FfDSrc, SetReset};
use crate::coords::{BramId, CbCoord, WireId};
use crate::error::FpgaError;
use crate::frames::{CbField, FrameSet};
use crate::ledger::{TransferKind, TransferLedger, TransferOp};
use crate::reconfig::Mutation;
use crate::routing::WireDriver;
use crate::state::{self, DeviceState};
use crate::timing::TimingReport;

/// Data source of a flip-flop node, resolved at compile time.
///
/// Crate-visible so the bit-parallel lane engine (`batch` module) can run
/// the same compiled structures 64 lanes at a time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FfData {
    /// Output of the LUT node with this index.
    LutInternal(u32),
    /// Value of the wire with this index.
    Wire(u32),
}

#[derive(Debug, Clone)]
pub(crate) struct LutNode {
    pub(crate) cb_flat: u32,
    pub(crate) pins: [Option<u32>; 4],
    pub(crate) out_wire: Option<u32>,
}

#[derive(Debug, Clone)]
pub(crate) struct FfNode {
    pub(crate) cb_flat: u32,
    pub(crate) data: FfData,
    pub(crate) out_wire: Option<u32>,
}

#[derive(Debug, Clone)]
pub(crate) struct BramWritePort {
    pub(crate) we: Option<u32>,
    pub(crate) addr: Vec<u32>,
    pub(crate) din: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum CombNode {
    Lut(u32),
    Bram(u32),
}

/// A configured, running FPGA.
///
/// Created with [`Device::configure`], which models downloading the
/// configuration file into the device. All subsequent behavioural changes
/// go through [`Device::apply`] (partial reconfiguration) or the readback
/// methods, and are accounted in the [`TransferLedger`].
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct Device {
    /// Live configuration memory.
    bits: Bitstream,
    /// Pristine copy for per-experiment reset (the tool keeps the original
    /// configuration file on the host; restoring state between experiments
    /// is the workload's own initialisation plus this host-side copy).
    pub(crate) pristine: Bitstream,
    ledger: TransferLedger,
    cycle: u64,

    // Compiled structures (connectivity never changes at run time; LUT
    // tables, mux bits, memory contents and routing delays are read live
    // from `bits`). Crate-visible so the lane engine can harvest them.
    pub(crate) luts: Vec<LutNode>,
    pub(crate) ffs: Vec<FfNode>,
    /// Flip-flop node index per CB (u32::MAX if none).
    pub(crate) ff_of_cb: Vec<u32>,
    /// LUT node index per CB (u32::MAX if none).
    pub(crate) lut_of_cb: Vec<u32>,
    pub(crate) bram_write_ports: Vec<BramWritePort>,
    pub(crate) bram_dout_wires: Vec<Vec<Option<u32>>>,
    pub(crate) eval_order: Vec<CombNode>,

    // Runtime state.
    wire_values: Vec<bool>,
    lut_values: Vec<bool>,
    ff_state: Vec<bool>,
    ff_prev_d: Vec<bool>,
    bram_prev_write: Vec<(bool, usize, u64)>,
    pub(crate) timing: TimingReport,

    // Incremental digests for state-hash convergence checks (see the
    // `state` module). `behav_hash` covers behaviour-affecting
    // configuration cells, `bram_hash` covers memory contents; both are
    // updated in O(1) per mutation/write. The pristine values are cached
    // at configure time so `reset` does not rescan the bitstream.
    behav_hash: u64,
    bram_hash: u64,
    pristine_behav_hash: u64,
    pristine_bram_hash: u64,
}

impl Device {
    /// Downloads a configuration into a fresh device.
    ///
    /// Records one full-download operation in the ledger.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CombinationalLoop`] if the configured LUT
    /// network contains a cycle.
    pub fn configure(bitstream: Bitstream) -> Result<Self, FpgaError> {
        let pristine = bitstream.clone();
        let mut dev = Device {
            bits: bitstream,
            pristine,
            ledger: TransferLedger::new(),
            cycle: 0,
            luts: Vec::new(),
            ffs: Vec::new(),
            ff_of_cb: Vec::new(),
            lut_of_cb: Vec::new(),
            bram_write_ports: Vec::new(),
            bram_dout_wires: Vec::new(),
            eval_order: Vec::new(),
            wire_values: Vec::new(),
            lut_values: Vec::new(),
            ff_state: Vec::new(),
            ff_prev_d: Vec::new(),
            bram_prev_write: Vec::new(),
            timing: TimingReport::default(),
            behav_hash: 0,
            bram_hash: 0,
            pristine_behav_hash: 0,
            pristine_bram_hash: 0,
        };
        dev.compile()?;
        dev.pristine_behav_hash = state::behaviour_hash(&dev.pristine);
        dev.pristine_bram_hash = state::bram_hash(&dev.pristine);
        dev.reset();
        let arch = *dev.bits.arch();
        dev.ledger.record(TransferOp {
            kind: TransferKind::FullDownload,
            frames: arch.total_frames(),
            bytes: arch.full_config_bytes(),
        });
        dev.recompute_timing();
        Ok(dev)
    }

    fn compile(&mut self) -> Result<(), FpgaError> {
        let n_cbs = self.bits.arch().cb_count();
        let rows = self.bits.arch().rows;
        self.lut_of_cb = vec![u32::MAX; n_cbs];
        self.ff_of_cb = vec![u32::MAX; n_cbs];
        self.luts.clear();
        self.ffs.clear();

        // Wire index driven by each LUT / FF / BRAM dout.
        let n_wires = self.bits.wires().len();
        let mut lut_out_wire = vec![None::<u32>; n_cbs];
        let mut ff_out_wire = vec![None::<u32>; n_cbs];
        let mut bram_dout: Vec<Vec<Option<u32>>> = vec![Vec::new(); self.bits.brams().len()];
        for (b, cfg) in self.bits.brams().iter().enumerate() {
            bram_dout[b] = vec![None; cfg.width as usize];
        }
        for (wi, w) in self.bits.wires().iter().enumerate() {
            match &w.driver {
                WireDriver::CbLut(cb) => lut_out_wire[cb.flat_index(rows)] = Some(wi as u32),
                WireDriver::CbFf(cb) => ff_out_wire[cb.flat_index(rows)] = Some(wi as u32),
                WireDriver::BramDout { bram, bit } => {
                    bram_dout[bram.index()][*bit as usize] = Some(wi as u32);
                }
                WireDriver::PrimaryInput { .. } => {}
            }
        }
        self.bram_dout_wires = bram_dout;

        for (flat, &out_wire) in lut_out_wire.iter().enumerate() {
            let cfg = &self.bits.cbs()[flat];
            if cfg.lut_used {
                let pins = cfg.lut_pins.map(|p| p.map(|w| w.0));
                self.lut_of_cb[flat] = self.luts.len() as u32;
                self.luts.push(LutNode {
                    cb_flat: flat as u32,
                    pins,
                    out_wire,
                });
            }
        }
        for (flat, &out_wire) in ff_out_wire.iter().enumerate() {
            let cfg = &self.bits.cbs()[flat];
            if cfg.ff_used {
                let data = match cfg.ff_d_src {
                    FfDSrc::LutOut => FfData::LutInternal(self.lut_of_cb[flat]),
                    FfDSrc::Direct(w) => FfData::Wire(w.0),
                };
                self.ff_of_cb[flat] = self.ffs.len() as u32;
                self.ffs.push(FfNode {
                    cb_flat: flat as u32,
                    data,
                    out_wire,
                });
            }
        }

        self.bram_write_ports = self
            .bits
            .brams()
            .iter()
            .map(|b| BramWritePort {
                we: b.we_pin.map(|w| w.0),
                addr: b.addr_pins.iter().map(|w| w.0).collect(),
                din: b.din_pins.iter().map(|w| w.0).collect(),
            })
            .collect();

        self.eval_order = self.levelize(n_wires)?;
        self.wire_values = vec![false; n_wires];
        self.lut_values = vec![false; self.luts.len()];
        self.ff_state = vec![false; self.ffs.len()];
        self.ff_prev_d = vec![false; self.ffs.len()];
        self.bram_prev_write = vec![(false, 0, 0); self.bits.brams().len()];
        Ok(())
    }

    /// Topologically orders the combinational nodes (LUTs and BRAM read
    /// ports).
    fn levelize(&self, n_wires: usize) -> Result<Vec<CombNode>, FpgaError> {
        // Which comb node drives each wire, if any.
        let mut wire_src: Vec<Option<CombNode>> = vec![None; n_wires];
        for (li, lut) in self.luts.iter().enumerate() {
            if let Some(w) = lut.out_wire {
                wire_src[w as usize] = Some(CombNode::Lut(li as u32));
            }
        }
        for (bi, douts) in self.bram_dout_wires.iter().enumerate() {
            for w in douts.iter().flatten() {
                wire_src[*w as usize] = Some(CombNode::Bram(bi as u32));
            }
        }

        let node_key = |n: CombNode| match n {
            CombNode::Lut(i) => i as usize,
            CombNode::Bram(i) => self.luts.len() + i as usize,
        };
        let total = self.luts.len() + self.bits.brams().len();
        let mut pending = vec![0u32; total];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n_wires];

        let comb_inputs = |n: CombNode| -> Vec<u32> {
            match n {
                CombNode::Lut(i) => self.luts[i as usize]
                    .pins
                    .iter()
                    .flatten()
                    .copied()
                    .collect(),
                // BRAM reads depend combinationally on the address only.
                CombNode::Bram(i) => self.bram_write_ports[i as usize].addr.clone(),
            }
        };

        let all_nodes: Vec<CombNode> = (0..self.luts.len())
            .map(|i| CombNode::Lut(i as u32))
            .chain((0..self.bits.brams().len()).map(|i| CombNode::Bram(i as u32)))
            .collect();
        for &node in &all_nodes {
            for w in comb_inputs(node) {
                if wire_src[w as usize].is_some() {
                    readers[w as usize].push(node_key(node));
                    pending[node_key(node)] += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(total);
        let mut queue: Vec<CombNode> = all_nodes
            .iter()
            .copied()
            .filter(|&n| pending[node_key(n)] == 0)
            .collect();
        let mut done = vec![false; total];
        while let Some(node) = queue.pop() {
            done[node_key(node)] = true;
            order.push(node);
            let outs: Vec<u32> = match node {
                CombNode::Lut(i) => self.luts[i as usize].out_wire.into_iter().collect(),
                CombNode::Bram(i) => self.bram_dout_wires[i as usize]
                    .iter()
                    .flatten()
                    .copied()
                    .collect(),
            };
            for out in outs {
                for &rk in &readers[out as usize] {
                    pending[rk] -= 1;
                    if pending[rk] == 0 {
                        queue.push(if rk < self.luts.len() {
                            CombNode::Lut(rk as u32)
                        } else {
                            CombNode::Bram((rk - self.luts.len()) as u32)
                        });
                    }
                }
            }
        }
        // A node the queue never reached sits on a cycle: report one of
        // its output wires for diagnosis.
        if let Some(stuck) = all_nodes.iter().find(|&&n| !done[node_key(n)]) {
            let wire = match stuck {
                CombNode::Lut(i) => self.luts[*i as usize].out_wire.unwrap_or(0),
                CombNode::Bram(i) => self.bram_dout_wires[*i as usize]
                    .iter()
                    .flatten()
                    .copied()
                    .next()
                    .unwrap_or(0),
            };
            return Err(FpgaError::CombinationalLoop(WireId(wire)));
        }
        Ok(order)
    }

    /// The architecture of the configured device.
    pub fn arch(&self) -> &ArchParams {
        self.bits.arch()
    }

    /// The live configuration memory.
    pub fn bitstream(&self) -> &Bitstream {
        &self.bits
    }

    /// The pristine configuration downloaded at [`Device::configure`] time.
    pub fn pristine(&self) -> &Bitstream {
        &self.pristine
    }

    /// The configuration-traffic ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Clears the configuration-traffic ledger (between experiments).
    pub fn clear_ledger(&mut self) {
        self.ledger.clear();
    }

    /// Cycles executed since the last [`reset`](Self::reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The current static-timing report.
    pub fn timing(&self) -> &TimingReport {
        &self.timing
    }

    /// Restores the device to its initial state: flip-flops to their init
    /// values, configuration memory (including block-RAM contents and any
    /// injected routing faults) to the pristine configuration.
    ///
    /// This models the start of a new experiment (paper Fig. 1, "reset
    /// system to initial state") and is not charged to the ledger: the
    /// restoration of faulted frames is part of the *previous* experiment's
    /// removal phase, which the strategies charge explicitly.
    pub fn reset(&mut self) {
        self.bits = self.pristine.clone();
        for (i, ff) in self.ffs.iter().enumerate() {
            let init = self.bits.cbs()[ff.cb_flat as usize].ff_init;
            self.ff_state[i] = init;
            self.ff_prev_d[i] = init;
        }
        for w in self.wire_values.iter_mut() {
            *w = false;
        }
        for v in self.lut_values.iter_mut() {
            *v = false;
        }
        for p in self.bram_prev_write.iter_mut() {
            *p = (false, 0, 0);
        }
        self.cycle = 0;
        self.behav_hash = self.pristine_behav_hash;
        self.bram_hash = self.pristine_bram_hash;
        self.recompute_timing();
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown port or wrong width.
    pub fn set_input(&mut self, name: &str, bits: &[bool]) -> Result<(), FpgaError> {
        let port = self
            .bits
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| FpgaError::UnknownPort(name.to_string()))?;
        if port.wires.len() != bits.len() {
            return Err(FpgaError::WidthMismatch {
                name: name.to_string(),
                expected: port.wires.len(),
                actual: bits.len(),
            });
        }
        for (w, &v) in port.wires.clone().iter().zip(bits) {
            self.wire_values[w.index()] = v;
        }
        Ok(())
    }

    /// Reads an output port as bits (LSB first); call after
    /// [`settle`](Self::settle).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownPort`] for an unknown port.
    pub fn output_bits(&self, name: &str) -> Result<Vec<bool>, FpgaError> {
        let port = self
            .bits
            .outputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| FpgaError::UnknownPort(name.to_string()))?;
        Ok(port
            .wires
            .iter()
            .map(|w| self.wire_values[w.index()])
            .collect())
    }

    /// Reads an output port as an integer (at most 64 bits).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownPort`] for an unknown port.
    pub fn output_u64(&self, name: &str) -> Result<u64, FpgaError> {
        let bits = self.output_bits(name)?;
        let mut v = 0u64;
        for (i, b) in bits.iter().enumerate().take(64) {
            if *b {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Propagates values through the combinational fabric.
    pub fn settle(&mut self) {
        // Present flip-flop state on output wires.
        for (i, ff) in self.ffs.iter().enumerate() {
            if let Some(w) = ff.out_wire {
                self.wire_values[w as usize] = self.ff_state[i];
            }
        }
        for idx in 0..self.eval_order.len() {
            match self.eval_order[idx] {
                CombNode::Lut(li) => {
                    let node = &self.luts[li as usize];
                    let cfg = &self.bits.cbs()[node.cb_flat as usize];
                    let mut pins = [false; 4];
                    for (p, pin) in node.pins.iter().enumerate() {
                        if let Some(w) = pin {
                            pins[p] = self.wire_values[*w as usize];
                        }
                    }
                    let v = cfg.eval_lut(pins);
                    self.lut_values[li as usize] = v;
                    if let Some(w) = node.out_wire {
                        self.wire_values[w as usize] = v;
                    }
                }
                CombNode::Bram(bi) => {
                    let addr = self.read_bus(&self.bram_write_ports[bi as usize].addr.clone());
                    let word = self.bits.brams()[bi as usize].contents[addr];
                    for (bit, w) in self.bram_dout_wires[bi as usize].clone().iter().enumerate() {
                        if let Some(w) = w {
                            self.wire_values[*w as usize] = (word >> bit) & 1 == 1;
                        }
                    }
                }
            }
        }
    }

    fn read_bus(&self, wires: &[u32]) -> usize {
        let mut v = 0usize;
        for (bit, w) in wires.iter().enumerate() {
            if self.wire_values[*w as usize] {
                v |= 1 << bit;
            }
        }
        v
    }

    /// Applies the clock edge: flip-flops capture their data inputs (the
    /// previous cycle's value if their path violates setup), memory blocks
    /// perform enabled writes.
    pub fn clock_edge(&mut self) {
        let mut captures = Vec::with_capacity(self.ffs.len());
        for (i, ff) in self.ffs.iter().enumerate() {
            let cfg = &self.bits.cbs()[ff.cb_flat as usize];
            let raw = match ff.data {
                FfData::LutInternal(li) => self.lut_values[li as usize],
                FfData::Wire(w) => self.wire_values[w as usize],
            };
            let d = raw ^ cfg.invert_ff_in;
            let overshoot = self.timing.ff_overshoot_ns.get(i).copied().unwrap_or(0.0);
            let captured = if self.capture_misses(overshoot, i as u64) {
                self.ff_prev_d[i]
            } else {
                d
            };
            captures.push((captured, d));
        }
        for (i, (captured, d)) in captures.into_iter().enumerate() {
            self.ff_state[i] = captured;
            self.ff_prev_d[i] = d;
        }
        for bi in 0..self.bram_write_ports.len() {
            let port = self.bram_write_ports[bi].clone();
            let Some(we) = port.we else { continue };
            let we_now = self.wire_values[we as usize];
            let addr_now = self.read_bus(&port.addr);
            let mut din_now = 0u64;
            for (bit, w) in port.din.iter().enumerate() {
                if self.wire_values[*w as usize] {
                    din_now |= 1 << bit;
                }
            }
            let overshoot = self
                .timing
                .bram_overshoot_ns
                .get(bi)
                .copied()
                .unwrap_or(0.0);
            let (we_eff, addr_eff, din_eff) =
                if self.capture_misses(overshoot, 0x8000_0000 | bi as u64) {
                    self.bram_prev_write[bi]
                } else {
                    (we_now, addr_now, din_now)
                };
            if we_eff {
                // Compiled port indices are valid by construction.
                let Ok(bram) = self.bits.bram_mut(BramId::from_index(bi)) else {
                    continue;
                };
                let old = bram.contents[addr_eff];
                bram.contents[addr_eff] = din_eff;
                let cell = ((bi as u64) << 32) | addr_eff as u64;
                self.bram_hash ^= state::mix(state::TAG_BRAM_WORD, cell, old)
                    ^ state::mix(state::TAG_BRAM_WORD, cell, din_eff);
            }
            self.bram_prev_write[bi] = (we_now, addr_now, din_now);
        }
        self.cycle += 1;
    }

    /// Runs one full cycle: settle, then clock edge.
    pub fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// Runs `n` full cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Applies a partial reconfiguration and records its frame traffic.
    ///
    /// # Errors
    ///
    /// Returns an error if the mutation's target does not exist or is not
    /// configured.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        self.apply_inner(mutation, false)
    }

    /// Applies a reconfiguration shipped inside a full configuration
    /// download: the semantic change takes effect, but the ledger records
    /// one bulk download instead of the touched frames (the paper's §6.2
    /// delay experiments were forced into this mode by driver problems).
    ///
    /// # Errors
    ///
    /// Same conditions as [`apply`](Self::apply).
    pub fn apply_via_full_download(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        self.apply_inner(mutation, true)
    }

    fn apply_inner(&mut self, mutation: &Mutation, full_download: bool) -> Result<(), FpgaError> {
        let arch = *self.bits.arch();
        let frames = mutation.frames(&arch, &self.bits);
        // PulseLsr writes its single frame twice (toggle + restore).
        let writes = match mutation {
            Mutation::PulseLsr { .. } => 2,
            _ => 1,
        } * frames.len() as u32;
        match mutation {
            Mutation::SetLutTable { cb, table } => {
                let flat = cb.flat_index(arch.rows) as u64;
                let cfg = self.bits.cb_mut(*cb)?;
                if !cfg.lut_used {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                self.behav_hash ^= state::mix(state::TAG_LUT_TABLE, flat, cfg.lut_table as u64)
                    ^ state::mix(state::TAG_LUT_TABLE, flat, *table as u64);
                cfg.lut_table = *table;
            }
            Mutation::SetInvertFfIn { cb, invert } => {
                let flat = cb.flat_index(arch.rows) as u64;
                let cfg = self.bits.cb_mut(*cb)?;
                if !cfg.ff_used {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                self.behav_hash ^=
                    state::mix(state::TAG_INVERT_FF_IN, flat, cfg.invert_ff_in as u64)
                        ^ state::mix(state::TAG_INVERT_FF_IN, flat, *invert as u64);
                cfg.invert_ff_in = *invert;
            }
            Mutation::SetLsrDrive { cb, drive } => {
                let cfg = self.bits.cb_mut(*cb)?;
                if !cfg.ff_used {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                cfg.lsr_drive = *drive;
            }
            Mutation::PulseLsr { cb } => {
                let cfg = self.bits.cb(*cb)?;
                if !cfg.ff_used {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                let drive = cfg.lsr_drive;
                self.force_ff(*cb, drive);
            }
            Mutation::PulseGsr => {
                let rows = arch.rows;
                for i in 0..self.ffs.len() {
                    let flat = self.ffs[i].cb_flat;
                    let cb = CbCoord::from_flat_index(flat as usize, rows);
                    let drive = self.bits.cb(cb)?.lsr_drive;
                    self.ff_state[i] = drive.value();
                }
                self.ledger.record(TransferOp {
                    kind: TransferKind::GlobalPulse,
                    frames: 0,
                    bytes: 0,
                });
                return Ok(());
            }
            Mutation::SetBramBit {
                bram,
                addr,
                bit,
                value,
            } => {
                let b = self.bits.bram_mut(*bram)?;
                if *addr >= b.depth() || *bit >= b.width {
                    return Err(FpgaError::BadBramLocation {
                        bram: *bram,
                        addr: *addr,
                        bit: *bit,
                    });
                }
                let cell = ((bram.index() as u64) << 32) | *addr as u64;
                let old = b.contents[*addr];
                if *value {
                    b.contents[*addr] |= 1 << bit;
                } else {
                    b.contents[*addr] &= !(1 << bit);
                }
                self.bram_hash ^= state::mix(state::TAG_BRAM_WORD, cell, old)
                    ^ state::mix(state::TAG_BRAM_WORD, cell, b.contents[*addr]);
            }
            Mutation::SetWireFanout { wire, extra } => {
                let w = self.bits.wire_mut(*wire)?;
                self.behav_hash ^=
                    state::mix(
                        state::TAG_WIRE_FANOUT,
                        wire.index() as u64,
                        w.extra_fanout as u64,
                    ) ^ state::mix(state::TAG_WIRE_FANOUT, wire.index() as u64, *extra as u64);
                w.extra_fanout = *extra;
            }
            Mutation::SetWireDetour { wire, luts } => {
                let w = self.bits.wire_mut(*wire)?;
                self.behav_hash ^=
                    state::mix(
                        state::TAG_WIRE_DETOUR,
                        wire.index() as u64,
                        w.detour_luts as u64,
                    ) ^ state::mix(state::TAG_WIRE_DETOUR, wire.index() as u64, *luts as u64);
                w.detour_luts = *luts;
            }
            Mutation::ReRandomiseFf { cb, drive } => {
                let cfg = self.bits.cb_mut(*cb)?;
                if !cfg.ff_used {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                cfg.lsr_drive = *drive;
                let drive = *drive;
                self.force_ff(*cb, drive);
            }
        }
        if full_download {
            self.ledger.record(TransferOp {
                kind: TransferKind::FullDownload,
                frames: arch.total_frames(),
                bytes: arch.full_config_bytes(),
            });
        } else {
            self.ledger.record(TransferOp {
                kind: TransferKind::Write,
                frames: writes,
                bytes: writes as u64 * arch.frame_bytes as u64,
            });
        }
        if mutation.affects_timing() {
            self.recompute_timing();
        }
        Ok(())
    }

    /// Holds the local set/reset line of one block asserted across a clock
    /// edge: the flip-flop stays at its configured `CLRMux`/`PRMux` value
    /// regardless of its data input.
    ///
    /// This is the steady-state of an indetermination window: the line was
    /// asserted by an earlier [`Mutation::PulseLsr`]-style reconfiguration
    /// and simply *stays* asserted, so holding costs no configuration
    /// traffic — only the assert and the release reconfigurations do.
    pub fn hold_lsr(&mut self, cb: CbCoord) -> Result<(), FpgaError> {
        let cfg = self.bits.cb(cb)?;
        if !cfg.ff_used {
            return Err(FpgaError::ResourceUnused(cb));
        }
        let drive = cfg.lsr_drive;
        self.force_ff(cb, drive);
        Ok(())
    }

    fn force_ff(&mut self, cb: CbCoord, drive: SetReset) {
        let flat = cb.flat_index(self.bits.arch().rows);
        let idx = self.ff_of_cb[flat];
        if idx != u32::MAX {
            self.ff_state[idx as usize] = drive.value();
        }
    }

    /// Reconfigures the `CLRMux`/`PRMux` selection of many flip-flops in
    /// one partial-reconfiguration pass (the preparation step of the GSR
    /// bit-flip approach, which must make *every* FF's set/reset drive its
    /// current value before pulsing the global line).
    ///
    /// Recorded as a single write of all touched mux frames.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is invalid or has no used FF.
    pub fn bulk_set_lsr_drives(&mut self, drives: &[(CbCoord, SetReset)]) -> Result<(), FpgaError> {
        let arch = *self.bits.arch();
        let mut set = FrameSet::new();
        for (cb, drive) in drives {
            let cfg = self.bits.cb_mut(*cb)?;
            if !cfg.ff_used {
                return Err(FpgaError::ResourceUnused(*cb));
            }
            cfg.lsr_drive = *drive;
            set.add_cb_field(&arch, *cb, CbField::LsrDrive);
        }
        self.ledger.record(TransferOp {
            kind: TransferKind::Write,
            frames: set.len() as u32,
            bytes: set.bytes(&arch),
        });
        Ok(())
    }

    /// Records the bulk download of a full configuration file without
    /// changing any state.
    ///
    /// The paper's delay-fault prototype hit driver limitations that forced
    /// it to ship a full configuration per reconfiguration; strategies call
    /// this to reproduce that cost model faithfully.
    pub fn charge_full_download(&mut self) {
        let arch = self.bits.arch();
        self.ledger.record(TransferOp {
            kind: TransferKind::FullDownload,
            frames: arch.total_frames(),
            bytes: arch.full_config_bytes(),
        });
    }

    /// Reads back the state of one flip-flop (one capture frame).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if the block's FF is unused.
    pub fn readback_ff(&mut self, cb: CbCoord) -> Result<bool, FpgaError> {
        let flat = cb.flat_index(self.bits.arch().rows);
        let idx = *self
            .ff_of_cb
            .get(flat)
            .ok_or(FpgaError::CoordOutOfRange(cb))?;
        if idx == u32::MAX {
            return Err(FpgaError::ResourceUnused(cb));
        }
        let mut set = FrameSet::new();
        set.add_cb_field(self.bits.arch(), cb, CbField::FfCapture);
        self.charge_readback(&set);
        Ok(self.ff_state[idx as usize])
    }

    /// Reads back the state of every used flip-flop (one capture frame per
    /// used column — the expensive step of the GSR bit-flip approach).
    pub fn readback_all_ffs(&mut self) -> Vec<(CbCoord, bool)> {
        let rows = self.bits.arch().rows;
        let mut set = FrameSet::new();
        set.add_ff_capture_columns(self.bits.ff_columns());
        self.charge_readback(&set);
        self.ffs
            .iter()
            .enumerate()
            .map(|(i, ff)| {
                (
                    CbCoord::from_flat_index(ff.cb_flat as usize, rows),
                    self.ff_state[i],
                )
            })
            .collect()
    }

    /// Reads back one word of a memory block (one content frame).
    ///
    /// # Errors
    ///
    /// Returns an error for a bad block id or address.
    pub fn readback_bram_word(&mut self, bram: BramId, addr: usize) -> Result<u64, FpgaError> {
        let b = self.bits.bram(bram)?;
        if addr >= b.depth() {
            return Err(FpgaError::BadBramLocation { bram, addr, bit: 0 });
        }
        let width = b.width;
        let word = b.contents[addr];
        let mut set = FrameSet::new();
        set.add_bram_word(self.bits.arch(), bram, addr, width);
        self.charge_readback(&set);
        Ok(word)
    }

    /// Reads back a LUT truth table (one configuration frame).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if the block's LUT is unused.
    pub fn readback_lut_table(&mut self, cb: CbCoord) -> Result<u16, FpgaError> {
        let cfg = *self.bits.cb(cb)?;
        if !cfg.lut_used {
            return Err(FpgaError::ResourceUnused(cb));
        }
        let mut set = FrameSet::new();
        set.add_cb_field(self.bits.arch(), cb, CbField::LutTable);
        self.charge_readback(&set);
        Ok(cfg.lut_table)
    }

    fn charge_readback(&mut self, set: &FrameSet) {
        self.ledger.record(TransferOp {
            kind: TransferKind::Readback,
            frames: set.len() as u32,
            bytes: set.bytes(self.bits.arch()),
        });
    }

    /// Direct (cost-free) view of a flip-flop's state, for assertions and
    /// golden-state snapshots. Fault-injection strategies must use
    /// [`readback_ff`](Self::readback_ff) instead.
    pub fn peek_ff(&self, cb: CbCoord) -> Option<bool> {
        let flat = cb.flat_index(self.bits.arch().rows);
        let idx = *self.ff_of_cb.get(flat)?;
        if idx == u32::MAX {
            None
        } else {
            Some(self.ff_state[idx as usize])
        }
    }

    /// Whether the flip-flop at `cb` has a setup-time violation in the
    /// *pristine* timing report (its data arrival overshoots the clock
    /// period, so it captures the previous cycle's value). `false` for
    /// coordinates without a used flip-flop.
    ///
    /// The static fault pre-classifier uses this: a violated register
    /// heals one cycle later than a clean one, so the conservative
    /// plan-time rules simply refuse to pre-classify faults on it.
    pub fn ff_timing_violated(&self, cb: CbCoord) -> bool {
        let flat = cb.flat_index(self.bits.arch().rows);
        match self.ff_of_cb.get(flat) {
            Some(&idx) if idx != u32::MAX => self
                .timing
                .ff_violated
                .get(idx as usize)
                .copied()
                .unwrap_or(true),
            _ => false,
        }
    }

    /// Snapshot of all sequential state (flip-flops then memory words),
    /// used for Latent-fault classification at experiment end.
    pub fn state_snapshot(&self) -> Vec<u64> {
        let mut snap = Vec::new();
        let mut acc = 0u64;
        let mut nbits = 0;
        for &s in &self.ff_state {
            if s {
                acc |= 1 << nbits;
            }
            nbits += 1;
            if nbits == 64 {
                snap.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            snap.push(acc);
        }
        for b in self.bits.brams() {
            snap.extend_from_slice(&b.contents);
        }
        snap
    }

    /// Snapshots the full runtime state (cycle counter, wire/LUT values,
    /// flip-flop state, pending BRAM captures, memory contents) for later
    /// [`restore_state`](Self::restore_state).
    ///
    /// Host-side and free: the snapshot lives on the controlling PC, not
    /// in the device, so nothing is charged to the ledger.
    pub fn save_state(&self) -> DeviceState {
        DeviceState {
            cycle: self.cycle,
            wire_values: self.wire_values.clone(),
            lut_values: self.lut_values.clone(),
            ff_state: self.ff_state.clone(),
            ff_prev_d: self.ff_prev_d.clone(),
            bram_prev_write: self.bram_prev_write.clone(),
            bram_contents: self
                .bits
                .brams()
                .iter()
                .map(|b| b.contents.clone())
                .collect(),
            bram_hash: self.bram_hash,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) on a
    /// device with the same compiled configuration.
    ///
    /// The caller must ensure the device's configuration memory equals
    /// the configuration the snapshot was taken under (in practice: call
    /// right after [`reset`](Self::reset), before injecting any fault).
    /// Like `reset`, this is a host-side operation and is not charged to
    /// the ledger: it models the controller fast-forwarding a worker to a
    /// known golden state instead of re-running the prefix.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's dimensions do not match this device.
    pub fn restore_state(&mut self, snap: &DeviceState) {
        self.cycle = snap.cycle;
        self.wire_values.copy_from_slice(&snap.wire_values);
        self.lut_values.copy_from_slice(&snap.lut_values);
        self.ff_state.copy_from_slice(&snap.ff_state);
        self.ff_prev_d.copy_from_slice(&snap.ff_prev_d);
        self.bram_prev_write.copy_from_slice(&snap.bram_prev_write);
        assert_eq!(
            snap.bram_contents.len(),
            self.bits.brams().len(),
            "snapshot BRAM count matches device"
        );
        for (bi, contents) in snap.bram_contents.iter().enumerate() {
            let Ok(b) = self.bits.bram_mut(BramId::from_index(bi)) else {
                continue;
            };
            b.contents.copy_from_slice(contents);
        }
        self.bram_hash = snap.bram_hash;
    }

    /// Digest of everything that determines the device's evolution from
    /// here under free-running clocking: the cycle counter, sequential
    /// state (flip-flops, previous-D shadows, pending BRAM captures),
    /// memory contents, and the behaviour-affecting configuration cells.
    ///
    /// Primary inputs are not hashed: campaign workloads are self-driving
    /// (inputs stay at their reset values), which is what makes "hash
    /// equals the golden hash at the same cycle" imply "all future cycles
    /// are identical". Combinational wire/LUT values are recomputed by
    /// [`settle`](Self::settle) and need no hashing either.
    pub fn state_hash(&self) -> u64 {
        let mut h = state::splitmix(self.cycle ^ 0x5851_F42D_4C95_7F2D);
        let mut acc = 0u64;
        let mut n = 0u32;
        for (&s, &p) in self.ff_state.iter().zip(&self.ff_prev_d) {
            acc = (acc << 2) | ((s as u64) << 1) | (p as u64);
            n += 1;
            if n == 32 {
                h = state::splitmix(h ^ acc);
                acc = 0;
                n = 0;
            }
        }
        if n > 0 {
            h = state::splitmix(h ^ acc ^ ((n as u64) << 56));
        }
        for &(we, addr, din) in &self.bram_prev_write {
            h = state::splitmix(h ^ ((we as u64) << 63) ^ addr as u64);
            h = state::splitmix(h ^ din);
        }
        h ^ self.bram_hash ^ self.behav_hash
    }

    /// Whether the behaviour-affecting configuration equals the pristine
    /// configuration (LUT tables, FF-input inverters, wire fault state).
    ///
    /// `lsr_drive` reprogramming is deliberately ignored — a removed
    /// bit-flip fault leaves the set/reset mux reconfigured without
    /// affecting free-running behaviour.
    pub fn config_behaviourally_pristine(&self) -> bool {
        self.behav_hash == self.pristine_behav_hash
    }

    /// Recomputes static timing for the current configuration.
    pub fn recompute_timing(&mut self) {
        let arch = *self.bits.arch();
        let n_wires = self.bits.wires().len();
        let mut arrival = vec![0.0f64; n_wires];
        let mut lut_ready = vec![0.0f64; self.luts.len()];
        let mut bram_ready = vec![0.0f64; self.bits.brams().len()];

        // Source wires (inputs, FF outputs) are ready at t=0 plus their own
        // wire delay.
        for (wi, w) in self.bits.wires().iter().enumerate() {
            if matches!(
                w.driver,
                WireDriver::PrimaryInput { .. } | WireDriver::CbFf(_)
            ) {
                arrival[wi] = w.delay_ns(&arch);
            }
        }
        for &node in &self.eval_order {
            match node {
                CombNode::Lut(li) => {
                    let n = &self.luts[li as usize];
                    let mut t: f64 = 0.0;
                    for pin in n.pins.iter().flatten() {
                        t = t.max(arrival[*pin as usize]);
                    }
                    let ready = t + arch.lut_delay_ns;
                    lut_ready[li as usize] = ready;
                    if let Some(w) = n.out_wire {
                        arrival[w as usize] = ready + self.bits.wires()[w as usize].delay_ns(&arch);
                    }
                }
                CombNode::Bram(bi) => {
                    let port = &self.bram_write_ports[bi as usize];
                    let mut t: f64 = 0.0;
                    for a in &port.addr {
                        t = t.max(arrival[*a as usize]);
                    }
                    let ready = t + arch.bram_read_ns;
                    bram_ready[bi as usize] = ready;
                    for w in self.bram_dout_wires[bi as usize].iter().flatten() {
                        arrival[*w as usize] =
                            ready + self.bits.wires()[*w as usize].delay_ns(&arch);
                    }
                }
            }
        }
        let limit = arch.usable_period_ns();
        let mut critical: f64 = 0.0;
        let ff_overshoot_ns: Vec<f64> = self
            .ffs
            .iter()
            .map(|ff| {
                let t = match ff.data {
                    FfData::LutInternal(li) => lut_ready[li as usize],
                    FfData::Wire(w) => arrival[w as usize],
                };
                critical = critical.max(t);
                (t - limit).max(0.0)
            })
            .collect();
        let bram_overshoot_ns: Vec<f64> = self
            .bram_write_ports
            .iter()
            .map(|p| {
                let mut t: f64 = 0.0;
                for w in p.addr.iter().chain(&p.din).chain(p.we.iter()) {
                    t = t.max(arrival[*w as usize]);
                }
                critical = critical.max(t);
                (t - limit).max(0.0)
            })
            .collect();
        self.timing = TimingReport {
            wire_arrival_ns: arrival,
            ff_violated: ff_overshoot_ns.iter().map(|&o| o > 0.0).collect(),
            ff_overshoot_ns,
            bram_write_violated: bram_overshoot_ns.iter().map(|&o| o > 0.0).collect(),
            bram_overshoot_ns,
            critical_path_ns: critical,
        };
    }

    /// Whether a marginal setup violation corrupts *this* cycle's capture.
    ///
    /// The static analysis gives worst-case arrival; the path actually
    /// exercised depends on the cycle's data, so an overshoot of `o` ns
    /// misses the edge with probability `min(1, o / arrival_spread_ns)`.
    /// The draw is a deterministic hash of (cycle, element), keeping
    /// experiments reproducible.
    fn capture_misses(&self, overshoot: f64, element: u64) -> bool {
        if overshoot <= 0.0 {
            return false;
        }
        let p = (overshoot / self.bits.arch().arrival_spread_ns).min(1.0);
        if p >= 1.0 {
            return true;
        }
        let mut h = self.cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ element.wrapping_mul(0xD1B5_4A32_D192_ED03);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        ((h >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::FfDSrc;
    use crate::routing::WireSink;

    fn inverter_loop_device() -> Device {
        // Packed CB: LUT inverts pin0, FF registers the LUT output, and the
        // LUT's pin0 reads the FF output (feedback) — q toggles each cycle.
        // The LUT is created with no pins and patched afterwards because
        // the feedback wire only exists once the FF does.
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(2, 3);
        let _lut_out = bs.add_lut(cb, 0x5555, [None, None, None, None]).unwrap();
        let ff_out = bs.add_ff(cb, false, FfDSrc::LutOut).unwrap();
        bs.cb_mut(cb).unwrap().lut_pins[0] = Some(ff_out);
        bs.wire_mut(ff_out)
            .unwrap()
            .sinks
            .push(WireSink::LutPin { cb, pin: 0 });
        bs.add_output("q", &[ff_out]).unwrap();
        Device::configure(bs).unwrap()
    }

    #[test]
    fn toggle_ff_toggles() {
        let mut dev = inverter_loop_device();
        let mut seen = Vec::new();
        for _ in 0..4 {
            dev.settle();
            seen.push(dev.output_u64("q").unwrap());
            dev.clock_edge();
        }
        assert_eq!(seen, vec![0, 1, 0, 1]);
    }

    #[test]
    fn lsr_pulse_flips_ff_and_charges_frames() {
        let mut dev = inverter_loop_device();
        dev.clear_ledger();
        dev.settle();
        let cb = CbCoord::new(2, 3);
        assert_eq!(dev.peek_ff(cb), Some(false));
        dev.apply(&Mutation::SetLsrDrive {
            cb,
            drive: SetReset::Set,
        })
        .unwrap();
        dev.apply(&Mutation::PulseLsr { cb }).unwrap();
        assert_eq!(dev.peek_ff(cb), Some(true));
        // One frame for the drive mux, two writes of the InvertLSR frame.
        assert_eq!(dev.ledger().total_frames(), 3);
    }

    #[test]
    fn bram_bit_mutation_changes_memory() {
        let mut bs = Bitstream::new(ArchParams::small());
        let addr = bs.add_input("addr", 4);
        let dout = bs
            .add_bram("m", &addr, &[], None, 8, &[7, 0, 0, 0])
            .unwrap();
        bs.add_output("dout", &dout).unwrap();
        let mut dev = Device::configure(bs).unwrap();
        dev.set_input("addr", &[false; 4]).unwrap();
        dev.settle();
        assert_eq!(dev.output_u64("dout").unwrap(), 7);
        dev.apply(&Mutation::SetBramBit {
            bram: BramId::from_index(0),
            addr: 0,
            bit: 3,
            value: true,
        })
        .unwrap();
        dev.settle();
        assert_eq!(dev.output_u64("dout").unwrap(), 15);
    }

    #[test]
    fn detour_causes_timing_violation_and_stale_capture() {
        let mut dev = inverter_loop_device();
        // Without faults the FF toggles; with a huge detour on its feedback
        // wire, the FF starts capturing stale data.
        dev.settle();
        dev.clock_edge();
        let cb = CbCoord::new(2, 3);
        assert_eq!(dev.peek_ff(cb), Some(true));
        assert!(!dev.timing().any_violation());
        // Feedback wire is the FF output wire (index of the second wire
        // created in the builder). Find it via the bitstream.
        let wire = dev
            .bitstream()
            .wires()
            .iter()
            .enumerate()
            .find(|(_, w)| matches!(w.driver, WireDriver::CbFf(_)))
            .map(|(i, _)| WireId::from_index(i))
            .unwrap();
        let luts_needed = (dev.arch().usable_period_ns()
            / (dev.arch().lut_delay_ns + dev.arch().wire_base_ns))
            .ceil() as u32
            + 1;
        dev.apply(&Mutation::SetWireDetour {
            wire,
            luts: luts_needed,
        })
        .unwrap();
        assert!(dev.timing().any_violation());
        // With a setup violation the FF repeatedly captures the previous D,
        // so its value lags: run two cycles and compare against the
        // fault-free toggle pattern.
        let before = dev.peek_ff(cb).unwrap();
        dev.step();
        // Fault-free it would invert; stale capture keeps the old D (which
        // equals the inverted-previous value), so after removal the state
        // sequence deviates from a pure toggle. At minimum, the report must
        // flag the violation; the functional effect is asserted by the
        // campaign-level tests in fades-core.
        let _ = before;
    }
}
