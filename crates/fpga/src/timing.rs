//! Static timing results for a configured device.

/// Static timing analysis of the configured circuit.
///
/// Recomputed after every reconfiguration that touches routing. Delay
/// faults work through this report: when an injected detour or fan-out
/// load pushes a flip-flop's data-arrival time past the usable clock
/// period, the flip-flop captures the *previous* cycle's data value — the
/// digital-level manifestation of a setup violation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingReport {
    /// Data arrival time (ns) at each wire, indexed by wire index.
    pub wire_arrival_ns: Vec<f64>,
    /// Per flip-flop node: true if its data input violates setup.
    pub ff_violated: Vec<bool>,
    /// Per flip-flop node: nanoseconds by which the worst-case arrival
    /// exceeds the usable period (0 when timing is met). The capture
    /// corruption probability scales with this overshoot (see
    /// [`crate::ArchParams::arrival_spread_ns`]).
    pub ff_overshoot_ns: Vec<f64>,
    /// Per memory block: true if its write port (address, data or enable)
    /// violates setup.
    pub bram_write_violated: Vec<bool>,
    /// Per memory block: write-port overshoot in nanoseconds.
    pub bram_overshoot_ns: Vec<f64>,
    /// Longest register-to-register path in nanoseconds.
    pub critical_path_ns: f64,
}

impl TimingReport {
    /// Number of flip-flops currently violating setup.
    pub fn violated_ff_count(&self) -> usize {
        self.ff_violated.iter().filter(|v| **v).count()
    }

    /// True if any sequential element is in violation.
    pub fn any_violation(&self) -> bool {
        self.ff_violated.iter().any(|v| *v) || self.bram_write_violated.iter().any(|v| *v)
    }
}
