//! Generic SRAM-based FPGA model for run-time-reconfiguration fault
//! emulation.
//!
//! This crate is the hardware substrate of the FADES reproduction. It
//! implements the "generic FPGA architecture" of the paper's Section 3:
//!
//! * a grid of configurable blocks ([`CbConfig`]) — each a 4-input LUT, a
//!   D-type flip-flop and the multiplexers (`InvertFFinMux`,
//!   `InvertLSRMux`, `CLRMux`/`PRMux`, `LUTorFFMux`) that wire them up,
//! * programmable interconnect ([`WireConfig`]) whose pass transistors
//!   determine routing, fan-out and — crucially for delay faults —
//!   propagation delay,
//! * embedded memory blocks ([`BramConfig`]),
//! * global and local set/reset lines (GSR / LSR),
//! * a frame-organised configuration memory ([`Bitstream`], [`FrameAddr`])
//!   that controls *all* of the above.
//!
//! The [`Device`] runtime compiles a bitstream into an executable circuit
//! and only ever changes behaviour through configuration-memory operations
//! ([`Mutation`]), exactly like real silicon: this is what makes the
//! fault-emulation strategies in `fades-core` honest run-time
//! reconfiguration rather than simulator back-doors. Every reconfiguration
//! and readback is accounted in a [`TransferLedger`], from which the
//! emulation-time model derives the paper's Figure 10 / Table 2 results.
//!
//! # Example
//!
//! ```
//! use fades_fpga::{ArchParams, Bitstream, CbCoord, Device, Mutation};
//!
//! // A bitstream with a single inverter LUT: out = !in.
//! let arch = ArchParams::small();
//! let mut bs = Bitstream::new(arch);
//! let input = bs.add_input("a", 1);
//! let cb = CbCoord::new(0, 0);
//! let lut_out = bs.add_lut(cb, 0x5555, [Some(input[0]), None, None, None])?;
//! bs.add_output("y", &[lut_out])?;
//!
//! let mut dev = Device::configure(bs)?;
//! dev.set_input("a", &[false])?;
//! dev.settle();
//! assert_eq!(dev.output_u64("y")?, 1);
//!
//! // Run-time reconfiguration: invert the truth table (a pulse fault).
//! dev.apply(&Mutation::SetLutTable { cb, table: !0x5555 })?;
//! dev.settle();
//! assert_eq!(dev.output_u64("y")?, 0);
//! # Ok::<(), fades_fpga::FpgaError>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod arch;
mod batch;
mod bitstream;
mod bram;
mod cb;
mod coords;
mod device;
mod error;
mod file;
mod frames;
mod ledger;
mod reconfig;
mod routing;
mod state;
mod timing;

pub use arch::ArchParams;
pub use batch::{
    lane_obstacles, sparse_default, BatchDevice, ConfigAccess, LaneDevice, LaneObstacle,
    GOLDEN_LANE_MASK, LANES,
};
pub use bitstream::Bitstream;
pub use bram::BramConfig;
pub use cb::{CbConfig, FfDSrc, SetReset};
pub use coords::{BramId, CbCoord, WireId};
pub use device::Device;
pub use error::FpgaError;
pub use frames::{FrameAddr, FrameSet};
pub use ledger::{TransferKind, TransferLedger, TransferOp};
pub use reconfig::Mutation;
pub use routing::{WireConfig, WireDriver, WireSink};
pub use state::DeviceState;
pub use timing::TimingReport;
