//! Error type for the FPGA model.

use std::error::Error;
use std::fmt;

use crate::coords::{BramId, CbCoord, WireId};

/// Errors produced when building bitstreams or operating a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// A CB coordinate is outside the device grid.
    CoordOutOfRange(CbCoord),
    /// A CB is already occupied by another cell.
    CbOccupied(CbCoord),
    /// No memory block is available.
    NoBramAvailable,
    /// A memory is too large for one block.
    BramTooLarge {
        /// Requested capacity in bits.
        requested: usize,
        /// Block capacity in bits.
        capacity: u32,
    },
    /// A wire id is out of range.
    BadWire(WireId),
    /// A memory block id is out of range.
    BadBram(BramId),
    /// A memory address or bit is out of range for the block.
    BadBramLocation {
        /// Block.
        bram: BramId,
        /// Word address.
        addr: usize,
        /// Bit within the word.
        bit: u32,
    },
    /// A port name was not found.
    UnknownPort(String),
    /// A port was accessed with the wrong width.
    WidthMismatch {
        /// Port name.
        name: String,
        /// Declared width.
        expected: usize,
        /// Supplied width.
        actual: usize,
    },
    /// The configured circuit contains a combinational loop.
    CombinationalLoop(WireId),
    /// A mutation targeted a CB whose relevant resource is unused.
    ResourceUnused(CbCoord),
    /// There are not enough unused resources for a delay detour.
    InsufficientSpareResources {
        /// What was requested.
        what: &'static str,
    },
    /// A configuration file could not be parsed.
    BadConfigFile(String),
    /// A mutation cannot be expressed in the bit-parallel lane engine
    /// (routing mutations alter timing, which all lanes share).
    LaneUnsupported(&'static str),
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::CoordOutOfRange(cb) => write!(f, "{cb} outside device grid"),
            FpgaError::CbOccupied(cb) => write!(f, "{cb} already occupied"),
            FpgaError::NoBramAvailable => f.write_str("no memory block available"),
            FpgaError::BramTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "memory of {requested} bits exceeds block capacity of {capacity} bits"
            ),
            FpgaError::BadWire(w) => write!(f, "wire {w} out of range"),
            FpgaError::BadBram(b) => write!(f, "memory block {b} out of range"),
            FpgaError::BadBramLocation { bram, addr, bit } => {
                write!(f, "location addr={addr} bit={bit} out of range for {bram}")
            }
            FpgaError::UnknownPort(n) => write!(f, "unknown port `{n}`"),
            FpgaError::WidthMismatch {
                name,
                expected,
                actual,
            } => write!(f, "port `{name}` has width {expected}, got {actual} bits"),
            FpgaError::CombinationalLoop(w) => {
                write!(f, "configured circuit has a combinational loop through {w}")
            }
            FpgaError::ResourceUnused(cb) => {
                write!(f, "mutation targets unused resource at {cb}")
            }
            FpgaError::InsufficientSpareResources { what } => {
                write!(f, "not enough spare {what} for delay detour")
            }
            FpgaError::BadConfigFile(msg) => write!(f, "bad configuration file: {msg}"),
            FpgaError::LaneUnsupported(what) => {
                write!(f, "{what} is not expressible in the lane engine")
            }
        }
    }
}

impl Error for FpgaError {}
