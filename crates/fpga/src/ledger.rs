//! Accounting of configuration-memory traffic.

use std::fmt;

/// The kind of a configuration-port operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Frame readback through the configuration port.
    Readback,
    /// Partial reconfiguration: writing selected frames.
    Write,
    /// Bulk download of a full configuration file.
    FullDownload,
    /// Pulsing a global line (GSR); no frame traffic but one port command.
    GlobalPulse,
}

impl fmt::Display for TransferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransferKind::Readback => "readback",
            TransferKind::Write => "write",
            TransferKind::FullDownload => "full-download",
            TransferKind::GlobalPulse => "global-pulse",
        };
        f.write_str(s)
    }
}

/// One recorded configuration-port operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOp {
    /// Operation kind.
    pub kind: TransferKind,
    /// Frames moved.
    pub frames: u32,
    /// Bytes moved.
    pub bytes: u64,
}

/// Ledger of all configuration-memory traffic performed on a
/// [`crate::Device`].
///
/// The fault-emulation time model (Fig. 10 / Table 2 of the paper) is a
/// function of this ledger: each operation pays a fixed software latency
/// (the JBits/driver overhead that dominated the paper's measurements) plus
/// the transfer time of its bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferLedger {
    ops: Vec<TransferOp>,
}

impl TransferLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an operation.
    pub fn record(&mut self, op: TransferOp) {
        self.ops.push(op);
    }

    /// All recorded operations, in order.
    pub fn ops(&self) -> &[TransferOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of operations of a given kind.
    pub fn count_of(&self, kind: TransferKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// Total frames moved.
    pub fn total_frames(&self) -> u64 {
        self.ops.iter().map(|o| o.frames as u64).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes).sum()
    }

    /// Bytes moved by operations of a given kind.
    pub fn bytes_of(&self, kind: TransferKind) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == kind)
            .map(|o| o.bytes)
            .sum()
    }

    /// Clears the ledger (e.g. between experiments).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Merges another ledger's operations into this one.
    pub fn merge(&mut self, other: &TransferLedger) {
        self.ops.extend_from_slice(&other.ops);
    }
}

impl fmt::Display for TransferLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops, {} frames, {} bytes",
            self.op_count(),
            self.total_frames(),
            self.total_bytes()
        )
    }
}
