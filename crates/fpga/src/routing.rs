//! Programmable interconnect configuration.

use crate::coords::{BramId, CbCoord};

/// The resource driving a wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDriver {
    /// LUT output of a configurable block.
    CbLut(CbCoord),
    /// Flip-flop output of a configurable block.
    CbFf(CbCoord),
    /// A primary input port bit.
    PrimaryInput {
        /// Index into [`crate::Bitstream::inputs`].
        port: u32,
        /// Bit within the port (LSB first).
        bit: u32,
    },
    /// A memory block's data-output bit.
    BramDout {
        /// Memory block.
        bram: BramId,
        /// Bit within the read port.
        bit: u32,
    },
}

/// A resource a wire feeds into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSink {
    /// A LUT input pin of a configurable block.
    LutPin {
        /// The block.
        cb: CbCoord,
        /// Pin index 0..4.
        pin: u8,
    },
    /// The direct (LUT-bypassing) flip-flop data input of a block.
    FfDirect {
        /// The block.
        cb: CbCoord,
    },
    /// A memory block address pin.
    BramAddr {
        /// Memory block.
        bram: BramId,
        /// Address bit.
        bit: u32,
    },
    /// A memory block data-input pin.
    BramDin {
        /// Memory block.
        bram: BramId,
        /// Data bit.
        bit: u32,
    },
    /// A memory block write-enable pin.
    BramWe {
        /// Memory block.
        bram: BramId,
    },
    /// A primary output port bit.
    PrimaryOutput {
        /// Index into [`crate::Bitstream::outputs`].
        port: u32,
        /// Bit within the port.
        bit: u32,
    },
}

/// Routing configuration of one wire (one logical net after
/// implementation).
///
/// `segments` and `pass_transistors` describe the programmable-matrix
/// resources the router committed; `extra_fanout` and `detour_luts` are
/// normally zero and are raised *at run time* by the delay-fault injection
/// strategies:
///
/// * turning on unused pass transistors loads the line and adds
///   [`crate::ArchParams::per_fanout_ns`] each (small delays, paper Fig. 8);
/// * rerouting through unused CBs adds a LUT delay each (large delays,
///   paper Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireConfig {
    /// Driving resource.
    pub driver: WireDriver,
    /// Sinks fed by this wire.
    pub sinks: Vec<WireSink>,
    /// Routing segments committed by the router.
    pub segments: u32,
    /// Pass transistors turned on by the router.
    pub pass_transistors: u32,
    /// Extra pass transistors turned on by fault injection.
    pub extra_fanout: u32,
    /// Pass-through LUTs inserted into the route by fault injection.
    pub detour_luts: u32,
    /// Inclusive CB-column span of the route, for frame accounting.
    pub col_span: (u16, u16),
}

impl WireConfig {
    /// Creates a wire with the given driver and no sinks; the router fills
    /// in sinks and resource counts.
    pub fn new(driver: WireDriver) -> Self {
        WireConfig {
            driver,
            sinks: Vec::new(),
            segments: 0,
            pass_transistors: 0,
            extra_fanout: 0,
            detour_luts: 0,
            col_span: (0, 0),
        }
    }

    /// Effective fan-out (sinks plus injected extra loads).
    pub fn fanout(&self) -> u32 {
        self.sinks.len() as u32 + self.extra_fanout
    }

    /// Number of columns the route crosses.
    pub fn cols_crossed(&self) -> u32 {
        (self.col_span.1 - self.col_span.0) as u32 + 1
    }

    /// Propagation delay of this wire in nanoseconds under the given
    /// architecture timing parameters.
    pub fn delay_ns(&self, arch: &crate::ArchParams) -> f64 {
        arch.wire_base_ns
            + self.segments as f64 * arch.per_segment_ns
            + (self.pass_transistors + self.extra_fanout) as f64 * arch.per_fanout_ns
            + self.detour_luts as f64 * (arch.lut_delay_ns + arch.wire_base_ns)
    }

    /// True if any delay fault is currently injected on this wire.
    pub fn has_delay_fault(&self) -> bool {
        self.extra_fanout > 0 || self.detour_luts > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchParams;

    #[test]
    fn fanout_increases_delay_slightly_detour_greatly() {
        let arch = ArchParams::virtex1000_like();
        let mut w = WireConfig::new(WireDriver::CbLut(CbCoord::new(0, 0)));
        w.segments = 4;
        w.pass_transistors = 5;
        let base = w.delay_ns(&arch);
        w.extra_fanout = 10;
        let with_fanout = w.delay_ns(&arch);
        w.extra_fanout = 0;
        w.detour_luts = 2;
        let with_detour = w.delay_ns(&arch);
        assert!(with_fanout > base);
        // Paper §4.3: fan-out adds fractions of a nanosecond, a LUT adds
        // roughly half a nanosecond, so detours dominate.
        assert!(with_fanout - base < 0.5);
        assert!(with_detour - base > 1.0);
    }
}
