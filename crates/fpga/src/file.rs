//! Configuration-file serialization.
//!
//! The paper's Figure 1 flow produces a *configuration file* from
//! synthesis and implementation and downloads it into the device. This
//! module gives the [`Bitstream`] that concrete form: a self-describing
//! little-endian binary encoding that round-trips exactly, so
//! configurations can be stored, diffed and shipped like real `.bit`
//! files.

use crate::arch::ArchParams;
use crate::bitstream::Bitstream;
use crate::cb::{CbConfig, FfDSrc, SetReset};
use crate::coords::{CbCoord, WireId};
use crate::error::FpgaError;
use crate::routing::{WireConfig, WireDriver, WireSink};

const MAGIC: &[u8; 8] = b"FADESCFG";
const VERSION: u16 = 1;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_wire(&mut self, w: Option<WireId>) {
        match w {
            Some(w) => self.u32(w.index() as u32 + 1),
            None => self.u32(0),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FpgaError> {
        if self.pos + n > self.buf.len() {
            return Err(bad("unexpected end of file"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FpgaError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FpgaError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().map_err(|_| bad("short field"))?,
        ))
    }
    fn u32(&mut self) -> Result<u32, FpgaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().map_err(|_| bad("short field"))?,
        ))
    }
    fn u64(&mut self) -> Result<u64, FpgaError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().map_err(|_| bad("short field"))?,
        ))
    }
    fn f64(&mut self) -> Result<f64, FpgaError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().map_err(|_| bad("short field"))?,
        ))
    }
    fn str(&mut self) -> Result<String, FpgaError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("invalid string"))
    }
    fn opt_wire(&mut self) -> Result<Option<WireId>, FpgaError> {
        let v = self.u32()?;
        Ok(if v == 0 {
            None
        } else {
            Some(WireId::from_index(v as usize - 1))
        })
    }
}

fn bad(msg: &str) -> FpgaError {
    FpgaError::BadConfigFile(msg.to_string())
}

impl Bitstream {
    /// Serialises the configuration to its file form.
    pub fn to_config_file(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(MAGIC);
        w.u16(VERSION);
        let a = self.arch();
        w.u16(a.rows);
        w.u16(a.cols);
        w.u16(a.frames_per_col);
        w.u32(a.frame_bytes);
        w.u16(a.bram_blocks);
        w.u32(a.bram_bits);
        w.u16(a.frames_per_bram);
        for v in [
            a.clock_period_ns,
            a.lut_delay_ns,
            a.wire_base_ns,
            a.per_segment_ns,
            a.per_fanout_ns,
            a.bram_read_ns,
            a.ff_setup_ns,
            a.arrival_spread_ns,
        ] {
            w.f64(v);
        }
        // Used CBs only (sparse encoding: the grid is mostly empty).
        let used: Vec<(usize, &CbConfig)> = self
            .cbs()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_unused())
            .collect();
        w.u32(used.len() as u32);
        for (flat, cb) in used {
            w.u32(flat as u32);
            w.u8(cb.lut_used as u8);
            w.u16(cb.lut_table);
            for pin in cb.lut_pins {
                w.opt_wire(pin);
            }
            w.u8(cb.ff_used as u8);
            w.u8(cb.ff_init as u8);
            match cb.ff_d_src {
                FfDSrc::LutOut => w.u32(0),
                FfDSrc::Direct(wire) => w.u32(wire.index() as u32 + 1),
            }
            w.u8(cb.invert_ff_in as u8);
            w.u8(cb.invert_lsr as u8);
            w.u8(matches!(cb.lsr_drive, SetReset::Set) as u8);
        }
        // Wires.
        w.u32(self.wires().len() as u32);
        for wire in self.wires() {
            match &wire.driver {
                WireDriver::CbLut(cb) => {
                    w.u8(0);
                    w.u16(cb.col);
                    w.u16(cb.row);
                }
                WireDriver::CbFf(cb) => {
                    w.u8(1);
                    w.u16(cb.col);
                    w.u16(cb.row);
                }
                WireDriver::PrimaryInput { port, bit } => {
                    w.u8(2);
                    w.u32(*port);
                    w.u32(*bit);
                }
                WireDriver::BramDout { bram, bit } => {
                    w.u8(3);
                    w.u16(bram.index() as u16);
                    w.u32(*bit);
                }
            }
            w.u32(wire.sinks.len() as u32);
            for sink in &wire.sinks {
                match sink {
                    WireSink::LutPin { cb, pin } => {
                        w.u8(0);
                        w.u16(cb.col);
                        w.u16(cb.row);
                        w.u8(*pin);
                    }
                    WireSink::FfDirect { cb } => {
                        w.u8(1);
                        w.u16(cb.col);
                        w.u16(cb.row);
                    }
                    WireSink::BramAddr { bram, bit } => {
                        w.u8(2);
                        w.u16(bram.index() as u16);
                        w.u32(*bit);
                    }
                    WireSink::BramDin { bram, bit } => {
                        w.u8(3);
                        w.u16(bram.index() as u16);
                        w.u32(*bit);
                    }
                    WireSink::BramWe { bram } => {
                        w.u8(4);
                        w.u16(bram.index() as u16);
                    }
                    WireSink::PrimaryOutput { port, bit } => {
                        w.u8(5);
                        w.u32(*port);
                        w.u32(*bit);
                    }
                }
            }
            w.u32(wire.segments);
            w.u32(wire.pass_transistors);
            w.u32(wire.extra_fanout);
            w.u32(wire.detour_luts);
            w.u16(wire.col_span.0);
            w.u16(wire.col_span.1);
        }
        // Memory blocks.
        w.u32(self.brams().len() as u32);
        for b in self.brams() {
            w.str(&b.name);
            w.u32(b.addr_pins.len() as u32);
            for p in &b.addr_pins {
                w.u32(p.index() as u32);
            }
            w.u32(b.din_pins.len() as u32);
            for p in &b.din_pins {
                w.u32(p.index() as u32);
            }
            w.u32(b.dout_wires.len() as u32);
            for p in &b.dout_wires {
                w.opt_wire(*p);
            }
            w.opt_wire(b.we_pin);
            w.u32(b.width);
            w.u32(b.contents.len() as u32);
            for word in &b.contents {
                w.u64(*word);
            }
        }
        // Ports.
        for ports in [self.inputs(), self.outputs()] {
            w.u32(ports.len() as u32);
            for p in ports {
                w.str(&p.name);
                w.u32(p.wires.len() as u32);
                for wire in &p.wires {
                    w.u32(wire.index() as u32);
                }
            }
        }
        w.buf
    }

    /// Parses a configuration file produced by
    /// [`to_config_file`](Self::to_config_file).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadConfigFile`] for truncated, corrupt or
    /// unsupported files.
    pub fn from_config_file(bytes: &[u8]) -> Result<Self, FpgaError> {
        let mut r = Reader::new(bytes);
        if r.take(8)? != MAGIC {
            return Err(bad("bad magic"));
        }
        if r.u16()? != VERSION {
            return Err(bad("unsupported version"));
        }
        let arch = ArchParams {
            rows: r.u16()?,
            cols: r.u16()?,
            frames_per_col: r.u16()?,
            frame_bytes: r.u32()?,
            bram_blocks: r.u16()?,
            bram_bits: r.u32()?,
            frames_per_bram: r.u16()?,
            clock_period_ns: r.f64()?,
            lut_delay_ns: r.f64()?,
            wire_base_ns: r.f64()?,
            per_segment_ns: r.f64()?,
            per_fanout_ns: r.f64()?,
            bram_read_ns: r.f64()?,
            ff_setup_ns: r.f64()?,
            arrival_spread_ns: r.f64()?,
        };
        let mut bs = Bitstream::new(arch);
        let n_used = r.u32()? as usize;
        for _ in 0..n_used {
            let flat = r.u32()? as usize;
            if flat >= arch.cb_count() {
                return Err(bad("CB index out of range"));
            }
            let lut_used = r.u8()? != 0;
            let lut_table = r.u16()?;
            let mut lut_pins = [None; 4];
            for pin in &mut lut_pins {
                *pin = r.opt_wire()?;
            }
            let ff_used = r.u8()? != 0;
            let ff_init = r.u8()? != 0;
            let d_src = r.u32()?;
            let invert_ff_in = r.u8()? != 0;
            let invert_lsr = r.u8()? != 0;
            let lsr_drive = if r.u8()? != 0 {
                SetReset::Set
            } else {
                SetReset::Reset
            };
            let cb = CbCoord::from_flat_index(flat, arch.rows);
            *bs.cb_mut(cb)? = CbConfig {
                lut_used,
                lut_table,
                lut_pins,
                ff_used,
                ff_init,
                ff_d_src: if d_src == 0 {
                    FfDSrc::LutOut
                } else {
                    FfDSrc::Direct(WireId::from_index(d_src as usize - 1))
                },
                invert_ff_in,
                invert_lsr,
                lsr_drive,
            };
        }
        let n_wires = r.u32()? as usize;
        for _ in 0..n_wires {
            let driver = match r.u8()? {
                0 => WireDriver::CbLut(CbCoord::new(r.u16()?, r.u16()?)),
                1 => WireDriver::CbFf(CbCoord::new(r.u16()?, r.u16()?)),
                2 => WireDriver::PrimaryInput {
                    port: r.u32()?,
                    bit: r.u32()?,
                },
                3 => WireDriver::BramDout {
                    bram: crate::coords::BramId::from_index(r.u16()? as usize),
                    bit: r.u32()?,
                },
                _ => return Err(bad("unknown wire driver")),
            };
            let mut wire = WireConfig::new(driver);
            let n_sinks = r.u32()? as usize;
            for _ in 0..n_sinks {
                let sink = match r.u8()? {
                    0 => WireSink::LutPin {
                        cb: CbCoord::new(r.u16()?, r.u16()?),
                        pin: r.u8()?,
                    },
                    1 => WireSink::FfDirect {
                        cb: CbCoord::new(r.u16()?, r.u16()?),
                    },
                    2 => WireSink::BramAddr {
                        bram: crate::coords::BramId::from_index(r.u16()? as usize),
                        bit: r.u32()?,
                    },
                    3 => WireSink::BramDin {
                        bram: crate::coords::BramId::from_index(r.u16()? as usize),
                        bit: r.u32()?,
                    },
                    4 => WireSink::BramWe {
                        bram: crate::coords::BramId::from_index(r.u16()? as usize),
                    },
                    5 => WireSink::PrimaryOutput {
                        port: r.u32()?,
                        bit: r.u32()?,
                    },
                    _ => return Err(bad("unknown wire sink")),
                };
                wire.sinks.push(sink);
            }
            wire.segments = r.u32()?;
            wire.pass_transistors = r.u32()?;
            wire.extra_fanout = r.u32()?;
            wire.detour_luts = r.u32()?;
            wire.col_span = (r.u16()?, r.u16()?);
            bs.push_raw_wire(wire);
        }
        let n_brams = r.u32()? as usize;
        for _ in 0..n_brams {
            let name = r.str()?;
            let mut addr_pins = Vec::new();
            for _ in 0..r.u32()? {
                addr_pins.push(WireId::from_index(r.u32()? as usize));
            }
            let mut din_pins = Vec::new();
            for _ in 0..r.u32()? {
                din_pins.push(WireId::from_index(r.u32()? as usize));
            }
            let mut dout_wires = Vec::new();
            for _ in 0..r.u32()? {
                dout_wires.push(r.opt_wire()?);
            }
            let we_pin = r.opt_wire()?;
            let width = r.u32()?;
            let mut contents = Vec::new();
            for _ in 0..r.u32()? {
                contents.push(r.u64()?);
            }
            bs.push_raw_bram(crate::bram::BramConfig {
                name,
                addr_pins,
                din_pins,
                dout_wires,
                we_pin,
                width,
                contents,
            });
        }
        for is_input in [true, false] {
            let n = r.u32()? as usize;
            for _ in 0..n {
                let name = r.str()?;
                let mut wires = Vec::new();
                for _ in 0..r.u32()? {
                    wires.push(WireId::from_index(r.u32()? as usize));
                }
                bs.push_raw_port(name, wires, is_input);
            }
        }
        if r.pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(bs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn sample_bitstream() -> Bitstream {
        let mut bs = Bitstream::new(ArchParams::small());
        let a = bs.add_input("a", 2);
        let cb = CbCoord::new(2, 3);
        let lut = bs
            .add_lut(cb, 0x8778, [Some(a[0]), Some(a[1]), None, None])
            .unwrap();
        let ff = bs.add_ff(cb, true, FfDSrc::LutOut).unwrap();
        let dout = bs
            .add_bram("m", &[a[0], a[1]], &[], None, 8, &[1, 2, 3, 4])
            .unwrap();
        let mut outs = vec![lut, ff];
        outs.extend(dout);
        bs.add_output("y", &outs).unwrap();
        bs.set_routing(lut, 3, 5, (2, 4)).unwrap();
        bs
    }

    #[test]
    fn config_file_roundtrips_exactly() {
        let bs = sample_bitstream();
        let bytes = bs.to_config_file();
        let parsed = Bitstream::from_config_file(&bytes).unwrap();
        assert_eq!(bs, parsed);
    }

    #[test]
    fn parsed_configuration_behaves_identically() {
        let bs = sample_bitstream();
        let parsed = Bitstream::from_config_file(&bs.to_config_file()).unwrap();
        let mut d1 = Device::configure(bs).unwrap();
        let mut d2 = Device::configure(parsed).unwrap();
        for v in [[false, false], [true, false], [true, true]] {
            d1.set_input("a", &v).unwrap();
            d2.set_input("a", &v).unwrap();
            d1.step();
            d2.step();
            d1.settle();
            d2.settle();
            assert_eq!(d1.output_u64("y").unwrap(), d2.output_u64("y").unwrap());
        }
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let bs = sample_bitstream();
        let mut bytes = bs.to_config_file();
        assert!(Bitstream::from_config_file(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert!(Bitstream::from_config_file(&bytes).is_err());
    }
}
