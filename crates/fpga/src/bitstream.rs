//! The configuration memory of a device: every LUT table, mux selection,
//! routing bit and memory word.

use crate::arch::ArchParams;
use crate::bram::BramConfig;
use crate::cb::{CbConfig, FfDSrc};
use crate::coords::{BramId, CbCoord, WireId};
use crate::error::FpgaError;
use crate::routing::{WireConfig, WireDriver, WireSink};

/// A named port of the configured design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    /// Port name.
    pub name: String,
    /// Wires carrying the port bits, LSB first.
    pub wires: Vec<WireId>,
}

/// A full device configuration ("configuration file").
///
/// This is the artefact the synthesis-and-implementation flow
/// (`fades-pnr`) produces and the [`crate::Device`] executes. It is also
/// the unit of frame accounting: [`ArchParams::full_config_bytes`] is what
/// a bulk download moves.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitstream {
    arch: ArchParams,
    cbs: Vec<CbConfig>,
    wires: Vec<WireConfig>,
    brams: Vec<BramConfig>,
    inputs: Vec<PortDef>,
    outputs: Vec<PortDef>,
}

impl Bitstream {
    /// Creates an empty configuration for the given architecture.
    pub fn new(arch: ArchParams) -> Self {
        Bitstream {
            arch,
            cbs: vec![CbConfig::default(); arch.cb_count()],
            wires: Vec::new(),
            brams: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The architecture this configuration targets.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// All configurable blocks, column-major (see [`CbCoord::flat_index`]).
    pub fn cbs(&self) -> &[CbConfig] {
        &self.cbs
    }

    /// The configuration of one block.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`] if `cb` is outside the grid.
    pub fn cb(&self, cb: CbCoord) -> Result<&CbConfig, FpgaError> {
        if cb.col >= self.arch.cols || cb.row >= self.arch.rows {
            return Err(FpgaError::CoordOutOfRange(cb));
        }
        Ok(&self.cbs[cb.flat_index(self.arch.rows)])
    }

    /// Mutable access to one block's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`] if `cb` is outside the grid.
    pub fn cb_mut(&mut self, cb: CbCoord) -> Result<&mut CbConfig, FpgaError> {
        if cb.col >= self.arch.cols || cb.row >= self.arch.rows {
            return Err(FpgaError::CoordOutOfRange(cb));
        }
        Ok(&mut self.cbs[cb.flat_index(self.arch.rows)])
    }

    /// All routed wires.
    pub fn wires(&self) -> &[WireConfig] {
        &self.wires
    }

    /// One wire's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadWire`] if the id is out of range.
    pub fn wire(&self, wire: WireId) -> Result<&WireConfig, FpgaError> {
        self.wires.get(wire.index()).ok_or(FpgaError::BadWire(wire))
    }

    /// Mutable access to one wire's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadWire`] if the id is out of range.
    pub fn wire_mut(&mut self, wire: WireId) -> Result<&mut WireConfig, FpgaError> {
        self.wires
            .get_mut(wire.index())
            .ok_or(FpgaError::BadWire(wire))
    }

    /// All memory blocks.
    pub fn brams(&self) -> &[BramConfig] {
        &self.brams
    }

    /// One memory block's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadBram`] if the id is out of range.
    pub fn bram(&self, bram: BramId) -> Result<&BramConfig, FpgaError> {
        self.brams.get(bram.index()).ok_or(FpgaError::BadBram(bram))
    }

    /// Mutable access to one memory block.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadBram`] if the id is out of range.
    pub fn bram_mut(&mut self, bram: BramId) -> Result<&mut BramConfig, FpgaError> {
        self.brams
            .get_mut(bram.index())
            .ok_or(FpgaError::BadBram(bram))
    }

    /// Declared input ports.
    pub fn inputs(&self) -> &[PortDef] {
        &self.inputs
    }

    /// Declared output ports.
    pub fn outputs(&self) -> &[PortDef] {
        &self.outputs
    }

    fn new_wire(&mut self, driver: WireDriver) -> WireId {
        let id = WireId(self.wires.len() as u32);
        self.wires.push(WireConfig::new(driver));
        id
    }

    /// Declares an input port of `width` bits; returns the wires its bits
    /// drive.
    pub fn add_input(&mut self, name: impl Into<String>, width: usize) -> Vec<WireId> {
        let port = self.inputs.len() as u32;
        let wires: Vec<WireId> = (0..width)
            .map(|bit| {
                self.new_wire(WireDriver::PrimaryInput {
                    port,
                    bit: bit as u32,
                })
            })
            .collect();
        self.inputs.push(PortDef {
            name: name.into(),
            wires: wires.clone(),
        });
        wires
    }

    /// Declares an output port observing the given wires.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadWire`] if any wire id is out of range.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        wires: &[WireId],
    ) -> Result<(), FpgaError> {
        let port = self.outputs.len() as u32;
        for (bit, &w) in wires.iter().enumerate() {
            self.wire_mut(w)?.sinks.push(WireSink::PrimaryOutput {
                port,
                bit: bit as u32,
            });
        }
        self.outputs.push(PortDef {
            name: name.into(),
            wires: wires.to_vec(),
        });
        Ok(())
    }

    /// Configures the LUT of a block and returns the wire its output
    /// drives.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`] for a bad coordinate,
    /// [`FpgaError::CbOccupied`] if the block's LUT is already used, or
    /// [`FpgaError::BadWire`] for a bad pin wire.
    pub fn add_lut(
        &mut self,
        cb: CbCoord,
        table: u16,
        pins: [Option<WireId>; 4],
    ) -> Result<WireId, FpgaError> {
        if self.cb(cb)?.lut_used {
            return Err(FpgaError::CbOccupied(cb));
        }
        for (pin, wire) in pins.iter().enumerate() {
            if let Some(w) = wire {
                self.wire_mut(*w)?
                    .sinks
                    .push(WireSink::LutPin { cb, pin: pin as u8 });
            }
        }
        let out = self.new_wire(WireDriver::CbLut(cb));
        let cfg = self.cb_mut(cb)?;
        cfg.lut_used = true;
        cfg.lut_table = table;
        cfg.lut_pins = pins;
        Ok(out)
    }

    /// Configures the flip-flop of a block and returns the wire its output
    /// drives.
    ///
    /// With [`FfDSrc::LutOut`] the FF registers the block's own LUT (which
    /// must already be configured); with [`FfDSrc::Direct`] it registers a
    /// routed wire.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`], [`FpgaError::CbOccupied`]
    /// if the FF is already used, [`FpgaError::ResourceUnused`] if
    /// `LutOut` is requested on a block without a LUT, or
    /// [`FpgaError::BadWire`] for a bad direct wire.
    pub fn add_ff(&mut self, cb: CbCoord, init: bool, d_src: FfDSrc) -> Result<WireId, FpgaError> {
        let cfg = self.cb(cb)?;
        if cfg.ff_used {
            return Err(FpgaError::CbOccupied(cb));
        }
        match d_src {
            FfDSrc::LutOut => {
                if !cfg.lut_used {
                    return Err(FpgaError::ResourceUnused(cb));
                }
            }
            FfDSrc::Direct(w) => {
                self.wire_mut(w)?.sinks.push(WireSink::FfDirect { cb });
            }
        }
        let out = self.new_wire(WireDriver::CbFf(cb));
        let cfg = self.cb_mut(cb)?;
        cfg.ff_used = true;
        cfg.ff_init = init;
        cfg.ff_d_src = d_src;
        Ok(out)
    }

    /// Configures a memory block; returns the wires its data outputs drive.
    ///
    /// `contents` supplies the initial words (missing words are zero).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::NoBramAvailable`] if all blocks are in use,
    /// [`FpgaError::BramTooLarge`] if the memory exceeds one block, or
    /// [`FpgaError::BadWire`] for a bad pin wire.
    pub fn add_bram(
        &mut self,
        name: impl Into<String>,
        addr_pins: &[WireId],
        din_pins: &[WireId],
        we_pin: Option<WireId>,
        width: u32,
        contents: &[u64],
    ) -> Result<Vec<WireId>, FpgaError> {
        if self.brams.len() >= self.arch.bram_blocks as usize {
            return Err(FpgaError::NoBramAvailable);
        }
        let depth = 1usize << addr_pins.len();
        let requested = depth * width as usize;
        if requested > self.arch.bram_bits as usize {
            return Err(FpgaError::BramTooLarge {
                requested,
                capacity: self.arch.bram_bits,
            });
        }
        let bram = BramId(self.brams.len() as u16);
        for (bit, &w) in addr_pins.iter().enumerate() {
            self.wire_mut(w)?.sinks.push(WireSink::BramAddr {
                bram,
                bit: bit as u32,
            });
        }
        for (bit, &w) in din_pins.iter().enumerate() {
            self.wire_mut(w)?.sinks.push(WireSink::BramDin {
                bram,
                bit: bit as u32,
            });
        }
        if let Some(w) = we_pin {
            self.wire_mut(w)?.sinks.push(WireSink::BramWe { bram });
        }
        let dout_wires: Vec<Option<WireId>> = (0..width)
            .map(|bit| Some(self.new_wire(WireDriver::BramDout { bram, bit })))
            .collect();
        let mut full = contents.to_vec();
        full.resize(depth, 0);
        self.brams.push(BramConfig {
            name: name.into(),
            addr_pins: addr_pins.to_vec(),
            din_pins: din_pins.to_vec(),
            dout_wires: dout_wires.clone(),
            we_pin,
            width,
            contents: full,
        });
        Ok(dout_wires.into_iter().flatten().collect())
    }

    /// Places a LUT without connecting its pins yet; returns the wire its
    /// output drives.
    ///
    /// The implementation flow creates every cell's output wire first and
    /// connects pins afterwards with [`connect_lut_pin`](Self::connect_lut_pin),
    /// which is how feedback through flip-flops is expressed.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`] or [`FpgaError::CbOccupied`].
    pub fn place_lut(&mut self, cb: CbCoord, table: u16) -> Result<WireId, FpgaError> {
        if self.cb(cb)?.lut_used {
            return Err(FpgaError::CbOccupied(cb));
        }
        let out = self.new_wire(WireDriver::CbLut(cb));
        let cfg = self.cb_mut(cb)?;
        cfg.lut_used = true;
        cfg.lut_table = table;
        Ok(out)
    }

    /// Places a flip-flop without connecting its data source yet; returns
    /// the wire its output drives. Complete with [`connect_ff`](Self::connect_ff).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CoordOutOfRange`] or [`FpgaError::CbOccupied`].
    pub fn place_ff(&mut self, cb: CbCoord, init: bool) -> Result<WireId, FpgaError> {
        if self.cb(cb)?.ff_used {
            return Err(FpgaError::CbOccupied(cb));
        }
        let out = self.new_wire(WireDriver::CbFf(cb));
        let cfg = self.cb_mut(cb)?;
        cfg.ff_used = true;
        cfg.ff_init = init;
        Ok(out)
    }

    /// Places a memory block without connecting its pins yet; returns the
    /// wires its data outputs drive. Complete with
    /// [`connect_bram`](Self::connect_bram).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::NoBramAvailable`] or [`FpgaError::BramTooLarge`].
    pub fn place_bram(
        &mut self,
        name: impl Into<String>,
        addr_bits: usize,
        width: u32,
        contents: &[u64],
    ) -> Result<(BramId, Vec<WireId>), FpgaError> {
        if self.brams.len() >= self.arch.bram_blocks as usize {
            return Err(FpgaError::NoBramAvailable);
        }
        let depth = 1usize << addr_bits;
        let requested = depth * width as usize;
        if requested > self.arch.bram_bits as usize {
            return Err(FpgaError::BramTooLarge {
                requested,
                capacity: self.arch.bram_bits,
            });
        }
        let bram = BramId(self.brams.len() as u16);
        let dout_wires: Vec<Option<WireId>> = (0..width)
            .map(|bit| Some(self.new_wire(WireDriver::BramDout { bram, bit })))
            .collect();
        let mut full = contents.to_vec();
        full.resize(depth, 0);
        self.brams.push(BramConfig {
            name: name.into(),
            addr_pins: Vec::new(),
            din_pins: Vec::new(),
            dout_wires: dout_wires.clone(),
            we_pin: None,
            width,
            contents: full,
        });
        Ok((bram, dout_wires.into_iter().flatten().collect()))
    }

    /// Connects one LUT input pin of a placed LUT.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if no LUT is placed at `cb`,
    /// or [`FpgaError::BadWire`] for a bad wire id.
    pub fn connect_lut_pin(&mut self, cb: CbCoord, pin: u8, wire: WireId) -> Result<(), FpgaError> {
        if !self.cb(cb)?.lut_used {
            return Err(FpgaError::ResourceUnused(cb));
        }
        self.wire_mut(wire)?
            .sinks
            .push(WireSink::LutPin { cb, pin });
        self.cb_mut(cb)?.lut_pins[pin as usize] = Some(wire);
        Ok(())
    }

    /// Connects the data source of a placed flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if no FF is placed at `cb` or
    /// `LutOut` is requested without a placed LUT, or
    /// [`FpgaError::BadWire`] for a bad wire id.
    pub fn connect_ff(&mut self, cb: CbCoord, src: FfDSrc) -> Result<(), FpgaError> {
        let cfg = self.cb(cb)?;
        if !cfg.ff_used {
            return Err(FpgaError::ResourceUnused(cb));
        }
        match src {
            FfDSrc::LutOut => {
                if !cfg.lut_used {
                    return Err(FpgaError::ResourceUnused(cb));
                }
            }
            FfDSrc::Direct(w) => {
                self.wire_mut(w)?.sinks.push(WireSink::FfDirect { cb });
            }
        }
        self.cb_mut(cb)?.ff_d_src = src;
        Ok(())
    }

    /// Connects the address, data-in and write-enable pins of a placed
    /// memory block.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadBram`] or [`FpgaError::BadWire`].
    pub fn connect_bram(
        &mut self,
        bram: BramId,
        addr: &[WireId],
        din: &[WireId],
        we: Option<WireId>,
    ) -> Result<(), FpgaError> {
        self.bram(bram)?;
        for (bit, &w) in addr.iter().enumerate() {
            self.wire_mut(w)?.sinks.push(WireSink::BramAddr {
                bram,
                bit: bit as u32,
            });
        }
        for (bit, &w) in din.iter().enumerate() {
            self.wire_mut(w)?.sinks.push(WireSink::BramDin {
                bram,
                bit: bit as u32,
            });
        }
        if let Some(w) = we {
            self.wire_mut(w)?.sinks.push(WireSink::BramWe { bram });
        }
        let b = self.bram_mut(bram)?;
        b.addr_pins = addr.to_vec();
        b.din_pins = din.to_vec();
        b.we_pin = we;
        Ok(())
    }

    /// Sets the routing metadata of a wire (segments, pass transistors and
    /// column span), as committed by the router.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadWire`] if the id is out of range.
    pub fn set_routing(
        &mut self,
        wire: WireId,
        segments: u32,
        pass_transistors: u32,
        col_span: (u16, u16),
    ) -> Result<(), FpgaError> {
        let w = self.wire_mut(wire)?;
        w.segments = segments;
        w.pass_transistors = pass_transistors;
        w.col_span = col_span;
        Ok(())
    }

    /// Columns that contain at least one used flip-flop (the GSR bit-flip
    /// strategy must read back and reconfigure all of them).
    pub fn ff_columns(&self) -> Vec<u16> {
        let mut cols: Vec<u16> = Vec::new();
        for col in 0..self.arch.cols {
            let used = (0..self.arch.rows)
                .any(|row| self.cbs[CbCoord::new(col, row).flat_index(self.arch.rows)].ff_used);
            if used {
                cols.push(col);
            }
        }
        cols
    }

    /// All coordinates whose flip-flop is in use.
    pub fn used_ffs(&self) -> Vec<CbCoord> {
        self.used_cbs(|c| c.ff_used)
    }

    /// All coordinates whose LUT is in use.
    pub fn used_luts(&self) -> Vec<CbCoord> {
        self.used_cbs(|c| c.lut_used)
    }

    /// All completely unused blocks (candidates for delay detours).
    pub fn unused_cbs(&self) -> Vec<CbCoord> {
        self.used_cbs(super::cb::CbConfig::is_unused)
    }

    fn used_cbs(&self, pred: impl Fn(&CbConfig) -> bool) -> Vec<CbCoord> {
        self.cbs
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(c))
            .map(|(i, _)| CbCoord::from_flat_index(i, self.arch.rows))
            .collect()
    }

    /// Appends a fully-formed wire (configuration-file loading).
    pub(crate) fn push_raw_wire(&mut self, wire: WireConfig) {
        self.wires.push(wire);
    }

    /// Appends a fully-formed memory block (configuration-file loading).
    pub(crate) fn push_raw_bram(&mut self, bram: BramConfig) {
        self.brams.push(bram);
    }

    /// Appends a port definition (configuration-file loading).
    pub(crate) fn push_raw_port(&mut self, name: String, wires: Vec<WireId>, input: bool) {
        let def = PortDef { name, wires };
        if input {
            self.inputs.push(def);
        } else {
            self.outputs.push(def);
        }
    }

    /// Resource utilisation: (used LUTs, used FFs, memory blocks).
    pub fn utilisation(&self) -> (usize, usize, usize) {
        let luts = self.cbs.iter().filter(|c| c.lut_used).count();
        let ffs = self.cbs.iter().filter(|c| c.ff_used).count();
        (luts, ffs, self.brams.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupied_cb_is_rejected() {
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(1, 1);
        let a = bs.add_input("a", 1);
        bs.add_lut(cb, 0x5555, [Some(a[0]), None, None, None])
            .unwrap();
        let err = bs.add_lut(cb, 0xAAAA, [Some(a[0]), None, None, None]);
        assert_eq!(err, Err(FpgaError::CbOccupied(cb)));
    }

    #[test]
    fn ff_on_lutless_cb_requires_direct_source() {
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(0, 0);
        assert_eq!(
            bs.add_ff(cb, false, FfDSrc::LutOut),
            Err(FpgaError::ResourceUnused(cb))
        );
        let a = bs.add_input("a", 1);
        assert!(bs.add_ff(cb, false, FfDSrc::Direct(a[0])).is_ok());
    }

    #[test]
    fn bram_capacity_is_enforced() {
        let mut bs = Bitstream::new(ArchParams::small());
        let addr = bs.add_input("addr", 10);
        // 1024 x 8 = 8192 bits > 4096-bit block.
        let err = bs.add_bram("m", &addr, &[], None, 8, &[]);
        assert!(matches!(err, Err(FpgaError::BramTooLarge { .. })));
    }
}
