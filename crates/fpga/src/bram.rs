//! Embedded memory block configuration.

use crate::coords::WireId;

/// Configuration of one embedded memory block.
///
/// The contents live in the configuration memory (`init`), which is exactly
/// what makes the paper's memory-block bit-flip mechanism work: reading the
/// corresponding frame back, flipping one bit and writing the frame again
/// changes the stored word — and, since the fault persists until the
/// application rewrites the word, no removal reconfiguration is needed
/// (paper §4.1, Fig. 4).
///
/// Reads are asynchronous; writes are synchronous on the global clock when
/// the write-enable wire is high.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramConfig {
    /// Human-readable name (from the HDL model).
    pub name: String,
    /// Wires feeding the address pins (LSB first); depth is
    /// `2^addr_pins.len()`.
    pub addr_pins: Vec<WireId>,
    /// Wires feeding the data-input pins (empty for ROMs).
    pub din_pins: Vec<WireId>,
    /// Wires driven by the data-output pins; `None` for unconnected bits.
    pub dout_wires: Vec<Option<WireId>>,
    /// Wire feeding the write-enable pin; `None` for ROMs.
    pub we_pin: Option<WireId>,
    /// Word width in bits (<= 64).
    pub width: u32,
    /// Contents, one word per address. Part of the configuration memory.
    pub contents: Vec<u64>,
}

impl BramConfig {
    /// Number of addressable words.
    pub fn depth(&self) -> usize {
        1usize << self.addr_pins.len()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.depth() * self.width as usize
    }

    /// True if the block has no write port.
    pub fn is_rom(&self) -> bool {
        self.we_pin.is_none()
    }

    /// Reads one stored bit.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `bit` is out of range.
    pub fn bit(&self, addr: usize, bit: u32) -> bool {
        assert!(bit < self.width, "bit {bit} out of width {}", self.width);
        (self.contents[addr] >> bit) & 1 == 1
    }

    /// Flips one stored bit.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `bit` is out of range.
    pub fn flip_bit(&mut self, addr: usize, bit: u32) {
        assert!(bit < self.width, "bit {bit} out of width {}", self.width);
        self.contents[addr] ^= 1 << bit;
    }
}
