//! Configuration-frame addressing and accounting.

use std::collections::BTreeSet;
use std::fmt;

use crate::arch::ArchParams;
use crate::coords::{BramId, CbCoord};

/// Address of one configuration frame.
///
/// Like Virtex-class devices, the configuration memory is organised in
/// column-major frames: each CB column owns `frames_per_col` frames that
/// together hold the LUT tables, mux selections and routing bits of that
/// column; each memory block owns `frames_per_bram` content frames. The
/// reconfiguration cost of an operation is the number of distinct frames it
/// reads and writes — this is the quantity the paper's emulation-time
/// results (Fig. 10, Table 2) hinge on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameAddr {
    /// Frame `index` of CB column `col`.
    CbColumn {
        /// Column.
        col: u16,
        /// Frame index within the column.
        index: u16,
    },
    /// Frame `index` of memory block `bram`.
    Bram {
        /// Memory block.
        bram: BramId,
        /// Frame index within the block.
        index: u16,
    },
}

impl fmt::Display for FrameAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameAddr::CbColumn { col, index } => write!(f, "col{col}.f{index}"),
            FrameAddr::Bram { bram, index } => write!(f, "{bram}.f{index}"),
        }
    }
}

/// Fields of a CB configuration, used to derive which frame within a column
/// holds a given configuration bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbField {
    /// LUT truth-table bits.
    LutTable,
    /// `InvertFFinMux` control bit.
    InvertFfIn,
    /// `InvertLSRMux` control bit.
    InvertLsr,
    /// `CLRMux`/`PRMux` selection.
    LsrDrive,
    /// Flip-flop state capture (readback only).
    FfCapture,
}

/// A set of distinct frame addresses, used to cost a reconfiguration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameSet {
    frames: BTreeSet<FrameAddr>,
}

impl FrameSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the frame holding the given field of the given CB.
    pub fn add_cb_field(&mut self, arch: &ArchParams, cb: CbCoord, field: CbField) {
        self.frames.insert(frame_of(arch, cb, field));
    }

    /// Adds the frame holding one word of a memory block.
    pub fn add_bram_word(&mut self, arch: &ArchParams, bram: BramId, addr: usize, width: u32) {
        // Words are packed sequentially into the block's frames.
        let bits_per_frame = (arch.frame_bytes * 8).max(1);
        let bit_offset = addr as u32 * width;
        let index = (bit_offset / bits_per_frame) % arch.frames_per_bram as u32;
        self.frames.insert(FrameAddr::Bram {
            bram,
            index: index as u16,
        });
    }

    /// Adds the routing frames of a wire spanning the given columns.
    ///
    /// Routing bits live in the same column frames as CB configuration;
    /// a wire touches roughly one routing frame per column crossed.
    pub fn add_wire_span(&mut self, arch: &ArchParams, col_span: (u16, u16)) {
        for col in col_span.0..=col_span.1 {
            let index = (col as u32 * 7 + 3) % arch.frames_per_col as u32;
            self.frames.insert(FrameAddr::CbColumn {
                col,
                index: index as u16,
            });
        }
    }

    /// Adds the capture frames required to read back all flip-flop states
    /// in the given columns.
    pub fn add_ff_capture_columns(&mut self, cols: impl IntoIterator<Item = u16>) {
        for col in cols {
            self.frames.insert(FrameAddr::CbColumn { col, index: 0 });
        }
    }

    /// Number of distinct frames in the set.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if no frames are present.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total bytes these frames occupy.
    pub fn bytes(&self, arch: &ArchParams) -> u64 {
        self.len() as u64 * arch.frame_bytes as u64
    }

    /// Iterates over the frame addresses.
    pub fn iter(&self) -> impl Iterator<Item = &FrameAddr> {
        self.frames.iter()
    }
}

/// Deterministically maps a CB field to the frame holding it.
///
/// Real devices interleave configuration bits across a column's frames;
/// the exact layout is irrelevant as long as distinct fields land in a
/// stable, small set of frames, so a simple row/field hash is used.
fn frame_of(arch: &ArchParams, cb: CbCoord, field: CbField) -> FrameAddr {
    let field_idx = match field {
        CbField::FfCapture => {
            return FrameAddr::CbColumn {
                col: cb.col,
                index: 0,
            }
        }
        CbField::LutTable => 0u32,
        CbField::InvertFfIn => 1,
        CbField::InvertLsr => 2,
        CbField::LsrDrive => 3,
    };
    // Frame 0 is the capture frame; spread config fields over the rest.
    let rest = (arch.frames_per_col - 1).max(1) as u32;
    let index = 1 + (cb.row as u32 * 4 + field_idx) % rest;
    FrameAddr::CbColumn {
        col: cb.col,
        index: index as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_fields_of_one_cb_are_few_frames() {
        let arch = ArchParams::virtex1000_like();
        let mut s = FrameSet::new();
        let cb = CbCoord::new(3, 7);
        s.add_cb_field(&arch, cb, CbField::LutTable);
        s.add_cb_field(&arch, cb, CbField::InvertLsr);
        s.add_cb_field(&arch, cb, CbField::LsrDrive);
        assert!(s.len() <= 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn wire_span_touches_one_frame_per_column() {
        let arch = ArchParams::virtex1000_like();
        let mut s = FrameSet::new();
        s.add_wire_span(&arch, (4, 9));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn ff_capture_is_one_frame_per_column() {
        let mut s = FrameSet::new();
        s.add_ff_capture_columns(0..10);
        assert_eq!(s.len(), 10);
    }
}
