//! Bit-parallel lane engine: 63 faulty machines plus one golden machine
//! per `u64` word.
//!
//! [`BatchDevice`] replicates the dynamics of [`Device`] with every piece
//! of per-element runtime state widened from `bool` to `u64`: bit `l` of a
//! word is the value that element holds in *lane* `l`. Lane 0 is reserved
//! for the golden (fault-free) run; lanes `1..=63` each carry one
//! independent fault-injection experiment. LUT evaluation becomes a
//! branch-free mux tree over input words, flip-flop captures and
//! block-RAM writes are lane-masked word operations, and every
//! reconfiguration a strategy performs goes through a [`LaneDevice`]
//! facade that touches only its own lane's bit while charging that lane's
//! own [`TransferLedger`].
//!
//! The engine is honest in the same sense the scalar device is: strategies
//! drive it through the [`ConfigAccess`] trait — the exact
//! readback/reconfigure surface of [`Device`] — so a strategy cannot tell
//! whether it is reconfiguring a real (scalar) device or one lane of the
//! batch engine, and the per-lane ledger records byte-for-byte the traffic
//! the scalar run would have recorded.
//!
//! Lanes never mutate routing: wire mutations change static timing, which
//! all lanes share (the capture-miss draw of a marginal setup path must be
//! lane-uniform for whole-word selects to be exact). The campaign layer
//! partitions such faults onto the scalar path.

use crate::arch::ArchParams;
use crate::bitstream::Bitstream;
use crate::cb::SetReset;
use crate::coords::{BramId, CbCoord};
use crate::device::{CombNode, Device, FfData, FfNode};
use crate::error::FpgaError;
use crate::frames::{CbField, FrameSet};
use crate::ledger::{TransferKind, TransferLedger, TransferOp};
use crate::reconfig::Mutation;
use crate::state::DeviceState;
use fades_telemetry::sim;

/// Default sparse-settle decision for lane engines: the divergence-
/// frontier scheduler is on unless the `FADES_NO_SPARSE` kill switch is
/// set (to a non-empty value other than `0`). Both modes are
/// bit-identical; the full sweep is the reference semantics.
#[must_use]
pub fn sparse_default() -> bool {
    !matches!(std::env::var("FADES_NO_SPARSE"), Ok(v) if !v.is_empty() && v != "0")
}

/// Number of lanes in one batch word.
pub const LANES: usize = 64;

/// Lane-mask of the golden lane (lane 0, never faulted).
pub const GOLDEN_LANE_MASK: u64 = 1;

/// A sparse settle that touches more than `n_nodes / DENSE_FRONTIER_DIV`
/// nodes bails out into the streaming full sweep and flips the engine
/// into dense mode. The random-access dirty-cone eval costs roughly 5×
/// a streamed eval per node (measured ≈24 ns vs ≈4.5 ns on the 8051
/// SoC), so the sweep wins once the frontier passes ~20% of the design;
/// 1/8 keeps a margin in sparse mode's favour before switching.
const DENSE_FRONTIER_DIV: usize = 8;

/// In dense mode the engine re-probes with a (bail-bounded) sparse
/// settle every this many settles, so it returns to the dirty-cone
/// schedule when the divergence frontier collapses — e.g. after lane
/// retirements leave only golden activity on a quiet workload phase.
const DENSE_RESAMPLE_PERIOD: u32 = 32;

/// Broadcasts a boolean across all 64 lanes.
#[inline(always)]
fn splat(b: bool) -> u64 {
    0u64.wrapping_sub(b as u64)
}

/// Broadcasts lane 0 of a word across all 64 lanes.
#[inline(always)]
fn splat_lane0(w: u64) -> u64 {
    0u64.wrapping_sub(w & 1)
}

/// True if every lane of the word holds the same value.
#[inline(always)]
fn uniform(w: u64) -> bool {
    w == 0 || w == u64::MAX
}

/// The readback/reconfigure surface injection strategies drive.
///
/// [`Device`] implements it by delegating to its inherent methods; a
/// [`LaneDevice`] implements it against one lane of a [`BatchDevice`].
/// Fault-injection strategies are written against this trait, which is
/// what lets the same strategy code run one experiment on a scalar device
/// or 63 at once on the lane engine.
pub trait ConfigAccess {
    /// Reads back the state of one flip-flop (one capture frame).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if the block's FF is unused.
    fn readback_ff(&mut self, cb: CbCoord) -> Result<bool, FpgaError>;

    /// Reads back the state of every used flip-flop (one capture frame
    /// per used column).
    fn readback_all_ffs(&mut self) -> Vec<(CbCoord, bool)>;

    /// Reads back one word of a memory block (one content frame).
    ///
    /// # Errors
    ///
    /// Returns an error for a bad block id or address.
    fn readback_bram_word(&mut self, bram: BramId, addr: usize) -> Result<u64, FpgaError>;

    /// Reads back a LUT truth table (one configuration frame).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if the block's LUT is unused.
    fn readback_lut_table(&mut self, cb: CbCoord) -> Result<u16, FpgaError>;

    /// Applies a partial reconfiguration and records its frame traffic.
    ///
    /// # Errors
    ///
    /// Returns an error if the mutation's target does not exist or is not
    /// configured.
    fn apply(&mut self, mutation: &Mutation) -> Result<(), FpgaError>;

    /// Applies a reconfiguration shipped inside a full configuration
    /// download (semantic change plus one bulk-download ledger entry).
    ///
    /// # Errors
    ///
    /// Same conditions as [`apply`](Self::apply).
    fn apply_via_full_download(&mut self, mutation: &Mutation) -> Result<(), FpgaError>;

    /// Reconfigures the `CLRMux`/`PRMux` selection of many flip-flops in
    /// one partial-reconfiguration pass.
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is invalid or has no used FF.
    fn bulk_set_lsr_drives(&mut self, drives: &[(CbCoord, SetReset)]) -> Result<(), FpgaError>;

    /// Holds the local set/reset line of one block asserted across a
    /// clock edge (no configuration traffic).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceUnused`] if the block's FF is unused.
    fn hold_lsr(&mut self, cb: CbCoord) -> Result<(), FpgaError>;
}

impl ConfigAccess for Device {
    fn readback_ff(&mut self, cb: CbCoord) -> Result<bool, FpgaError> {
        Device::readback_ff(self, cb)
    }

    fn readback_all_ffs(&mut self) -> Vec<(CbCoord, bool)> {
        Device::readback_all_ffs(self)
    }

    fn readback_bram_word(&mut self, bram: BramId, addr: usize) -> Result<u64, FpgaError> {
        Device::readback_bram_word(self, bram, addr)
    }

    fn readback_lut_table(&mut self, cb: CbCoord) -> Result<u16, FpgaError> {
        Device::readback_lut_table(self, cb)
    }

    fn apply(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        Device::apply(self, mutation)
    }

    fn apply_via_full_download(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        Device::apply_via_full_download(self, mutation)
    }

    fn bulk_set_lsr_drives(&mut self, drives: &[(CbCoord, SetReset)]) -> Result<(), FpgaError> {
        Device::bulk_set_lsr_drives(self, drives)
    }

    fn hold_lsr(&mut self, cb: CbCoord) -> Result<(), FpgaError> {
        Device::hold_lsr(self, cb)
    }
}

/// One memory block, lane-parallel: contents are stored transposed, one
/// lane word per (address, bit) cell.
#[derive(Debug, Clone)]
struct LaneBram {
    we: Option<u32>,
    addr_wires: Vec<u32>,
    din_wires: Vec<u32>,
    dout_wires: Vec<Option<u32>>,
    width: usize,
    depth: usize,
    /// `contents[addr * width + bit]` is the lane word of that bit.
    contents: Vec<u64>,
    /// Scalar pristine words, for broadcast reset.
    pristine_words: Vec<u64>,
    /// Indices into `contents` that may differ across lanes. Lazily swept
    /// by the divergence scan; the invariant is that every non-uniform
    /// content word is on this list.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    prev_we: u64,
    prev_addr: Vec<u64>,
    prev_din: Vec<u64>,
}

/// Evaluation descriptor of one combinational node, packed so the sparse
/// settle's random-order evaluation reads a single 32-byte record per
/// node. For a LUT node: `target` is the LUT index, `table_off` its
/// slice start in `compact_tables`, `arity`/`pins` the connected pin
/// count and wires, `cpristine` the compact pristine table (for the
/// golden-uniform scalar path). For a BRAM node (`is_bram != 0`):
/// `target` is the BRAM index and the rest is unused.
#[derive(Debug, Clone, Copy)]
struct NodeDesc {
    target: u32,
    out_wire: u32,
    table_off: u32,
    arity: u8,
    is_bram: u8,
    cpristine: u16,
    pins: [u32; 4],
}

impl LaneBram {
    fn mark_dirty(&mut self, idx: usize) {
        if !self.is_dirty[idx] {
            self.is_dirty[idx] = true;
            self.dirty.push(idx as u32);
        }
    }

    fn reset(&mut self) {
        for (addr, &w) in self.pristine_words.iter().enumerate() {
            for bit in 0..self.width {
                self.contents[addr * self.width + bit] = splat((w >> bit) & 1 == 1);
            }
        }
        for &idx in &self.dirty {
            self.is_dirty[idx as usize] = false;
        }
        self.dirty.clear();
        self.prev_we = 0;
        for w in self.prev_addr.iter_mut() {
            *w = 0;
        }
        for w in self.prev_din.iter_mut() {
            *w = 0;
        }
    }
}

/// A lane-parallel replica of one configured [`Device`]: 64 copies of the
/// compiled circuit advance together, one `u64` lane word per wire, LUT,
/// flip-flop and memory bit.
///
/// Constructed from a configured device with [`BatchDevice::new`]; the
/// compiled structures, pristine configuration and (pristine) static
/// timing are harvested once and shared by all lanes. Per-lane
/// reconfiguration goes through [`BatchDevice::lane`].
#[derive(Debug, Clone)]
pub struct BatchDevice {
    arch: ArchParams,
    pristine: Bitstream,
    ffs: Vec<FfNode>,
    ff_of_cb: Vec<u32>,
    lut_of_cb: Vec<u32>,
    ff_overshoot_ns: Vec<f64>,
    bram_overshoot_ns: Vec<f64>,
    ff_columns: Vec<u16>,

    // Pristine per-node configuration (broadcast targets for reset and
    // the reference side of the config-divergence accounting).
    pristine_tables: Vec<u16>,
    pristine_invert: Vec<bool>,
    pristine_drive: Vec<bool>,
    ff_init: Vec<bool>,

    // Lane configuration state. A LUT table is 16 lane words: bit `l` of
    // `lut_tables[li][k]` is truth-table entry `k` in lane `l`. This is
    // the readback/bookkeeping representation; evaluation uses the
    // arity-compacted mirror below.
    lut_tables: Vec<[u64; 16]>,
    /// Number of connected pins per LUT (structural: mutations rewrite
    /// tables, never routing, so this is lane-invariant and constant).
    lut_arity: Vec<u8>,
    /// Compact-index → full-table-index map per LUT (first `1 << arity`
    /// entries valid): compact bit `k` corresponds to connected pin `k`.
    lut_cfull: Vec<[u8; 16]>,
    /// Pristine truth table in compact index space.
    lut_cpristine: Vec<u16>,
    /// Start of each LUT's slice in `compact_tables` (length `1 << arity`).
    lut_coff: Vec<u32>,
    /// Lane-word truth tables in compact index space, arity-packed flat —
    /// the evaluation mirror of `lut_tables`. Unconnected pins always
    /// present a constant-0 word, so only the `1 << arity` entries with
    /// those index bits clear are reachable; restricting the mux tree to
    /// them is exact for pristine *and* mutated tables.
    compact_tables: Vec<u64>,
    /// Lanes whose table differs from pristine, per LUT node.
    lut_table_diff: Vec<u64>,
    invert_ff_in: Vec<u64>,
    /// Lanes whose inverter differs from pristine, per FF node.
    invert_diff: Vec<u64>,
    lsr_drive: Vec<u64>,
    /// Per lane: number of configuration cells (LUT tables + inverters)
    /// currently differing from pristine. Zero means the lane is
    /// behaviourally pristine (`lsr_drive` deliberately excluded, exactly
    /// like [`Device::config_behaviourally_pristine`]).
    config_diff_count: [u32; LANES],

    // Lane runtime state.
    cycle: u64,
    wire_values: Vec<u64>,
    lut_values: Vec<u64>,
    ff_state: Vec<u64>,
    ff_prev_d: Vec<u64>,
    brams: Vec<LaneBram>,
    ledgers: Vec<TransferLedger>,

    // Sparse divergence-frontier scheduler (see `settle_sparse`). The
    // invariant it maintains: between settles, `wire_values`/`lut_values`
    // always equal the full-sweep fixpoint of the current sequential
    // state, configuration and inputs — so a node outside the fan-out of
    // a changed word cannot change output and need not be re-evaluated.
    sparse: bool,
    /// Forces the next settle to run the full sweep (set by `reset`,
    /// whose zeroed wires are *not* a settled fixpoint).
    all_dirty: bool,
    /// True while every lane word is still a broadcast of the golden
    /// lane and the configuration is pristine (no `lane()` handed out
    /// since the last reset/restore): LUT evaluation collapses to one
    /// scalar table lookup per node.
    lanes_uniform: bool,
    /// Per-`eval_order`-position evaluation descriptor: everything the
    /// hot path needs to evaluate a node, gathered into one 32-byte
    /// record so a dirty-cone eval touches one metadata cache line
    /// instead of five scattered arrays.
    node_descs: Vec<NodeDesc>,
    /// Flip-flops whose state word changed since the last settle
    /// (maintained by `clock_edge` and the direct `ff_state` writers);
    /// the sparse settle presents exactly these instead of rescanning
    /// every flip-flop. May contain duplicates; re-presenting is a no-op.
    ff_changed: Vec<u32>,
    /// Density feedback for the hybrid settle: true while the last
    /// sparse probe exceeded [`DENSE_FRONTIER_DIV`] and the streaming
    /// full sweep is the cheaper schedule; re-probed sparsely every
    /// [`DENSE_RESAMPLE_PERIOD`] settles.
    frontier_dense: bool,
    /// Settles remaining until the next sparse re-probe in dense mode.
    resample_in: u32,
    node_of_lut: Vec<u32>,
    node_of_bram: Vec<u32>,
    /// CSR wire → consuming `eval_order` positions.
    consumer_start: Vec<u32>,
    consumers: Vec<u32>,
    /// Dirty bitmap over `eval_order` positions, one bit per node. A
    /// single ascending scan evaluates each dirty node at most once:
    /// `eval_order` is topological, so a consumer marked during the scan
    /// always sits at a strictly higher position than the node that
    /// marked it. Ascending order also makes the walk sequential in
    /// `node_descs`, which is what keeps the per-node cost near the full
    /// sweep's streaming cost instead of random-access latency.
    dirty_words: Vec<u64>,

    // Incremental retirement mask (see `seq_divergence`): the flip-flop
    // and capture-shadow components are folded during `clock_edge`, so
    // the per-cycle retirement check no longer rescans every word.
    seq_div_ff: u64,
    seq_div_shadow: u64,
    /// A set/reset pulse mutated `ff_state` after the last edge, so the
    /// cached `seq_div_ff` fold may be stale.
    ff_touched_since_edge: bool,
}

/// One reason a pristine configuration cannot be represented bit-exactly
/// by the transposed lane store of [`BatchDevice`].
///
/// Campaign engines fall back to scalar execution when any obstacle is
/// present; the `lane-obstacle` lint rule in `fades-analysis` reports the
/// same findings as diagnostics so the fallback is explained instead of
/// showing up as an unexplained scalar run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneObstacle {
    /// A memory word wider than the 64-bit lane word.
    WordTooWide {
        /// The offending memory block.
        bram: crate::coords::BramId,
        /// Its declared word width.
        width: u32,
    },
    /// Pristine memory words carrying bits at or above the declared
    /// width. The scalar device preserves such stray bits in state
    /// snapshots until the word is first written; the lane store cannot,
    /// so the engines would disagree on `Latent` classification.
    StrayBits {
        /// The offending memory block.
        bram: crate::coords::BramId,
        /// Word addresses with stray bits, ascending.
        addrs: Vec<usize>,
    },
}

impl std::fmt::Display for LaneObstacle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneObstacle::WordTooWide { bram, width } => {
                write!(
                    f,
                    "bram{} word width {width} exceeds the 64-bit lane word",
                    bram.0
                )
            }
            LaneObstacle::StrayBits { bram, addrs } => {
                write!(
                    f,
                    "bram{} has stray bits above the declared width at word address(es) {addrs:?}",
                    bram.0
                )
            }
        }
    }
}

/// Enumerates everything that stops [`BatchDevice::new`] from lane-encoding
/// `bitstream`. Empty means the lane engine can represent the design
/// bit-exactly. Deterministic: blocks in id order, addresses ascending.
pub fn lane_obstacles(bitstream: &Bitstream) -> Vec<LaneObstacle> {
    let mut out = Vec::new();
    for (i, b) in bitstream.brams().iter().enumerate() {
        let bram = crate::coords::BramId(i as u16);
        let width = b.width as usize;
        if width > 64 {
            out.push(LaneObstacle::WordTooWide {
                bram,
                width: b.width,
            });
        } else if width < 64 {
            let addrs: Vec<usize> = b
                .contents
                .iter()
                .enumerate()
                .filter(|(_, &w)| w >> width != 0)
                .map(|(a, _)| a)
                .collect();
            if !addrs.is_empty() {
                out.push(LaneObstacle::StrayBits { bram, addrs });
            }
        }
    }
    out
}

impl BatchDevice {
    /// Builds a lane engine from a configured device.
    ///
    /// The device is cloned and reset internally, so the harvest always
    /// reflects the pristine configuration regardless of what the caller
    /// has done to `dev` since configuring it.
    ///
    /// Returns `None` for configurations the engine cannot represent
    /// bit-exactly (see [`lane_obstacles`]), counting the refusal in
    /// `fades_telemetry::analysis::LANE_FALLBACKS` so the resulting
    /// scalar fallback is visible on `/metrics`.
    #[must_use]
    pub fn new(dev: &Device) -> Option<Self> {
        let mut d = dev.clone();
        d.reset();
        let arch = *d.arch();
        let pristine = d.pristine.clone();
        if !lane_obstacles(&pristine).is_empty() {
            fades_telemetry::analysis::LANE_FALLBACKS.inc();
            return None;
        }

        let luts = std::mem::take(&mut d.luts);
        let ffs = std::mem::take(&mut d.ffs);
        let ff_of_cb = std::mem::take(&mut d.ff_of_cb);
        let lut_of_cb = std::mem::take(&mut d.lut_of_cb);
        let eval_order = std::mem::take(&mut d.eval_order);
        let bram_write_ports = std::mem::take(&mut d.bram_write_ports);
        let bram_dout_wires = std::mem::take(&mut d.bram_dout_wires);
        let ff_overshoot_ns = std::mem::take(&mut d.timing.ff_overshoot_ns);
        let bram_overshoot_ns = std::mem::take(&mut d.timing.bram_overshoot_ns);

        let cbs = pristine.cbs();
        let pristine_tables: Vec<u16> = luts
            .iter()
            .map(|l| cbs[l.cb_flat as usize].lut_table)
            .collect();
        let pristine_invert: Vec<bool> = ffs
            .iter()
            .map(|f| cbs[f.cb_flat as usize].invert_ff_in)
            .collect();
        let pristine_drive: Vec<bool> = ffs
            .iter()
            .map(|f| cbs[f.cb_flat as usize].lsr_drive.value())
            .collect();
        let ff_init: Vec<bool> = ffs
            .iter()
            .map(|f| cbs[f.cb_flat as usize].ff_init)
            .collect();

        // Arity-compacted evaluation structures: gather each LUT's
        // connected pins into the low index positions and permute its
        // truth table to match, so evaluation walks a `2^arity`-word mux
        // tree instead of the full 16-word tree.
        let mut lut_arity = Vec::with_capacity(luts.len());
        let mut lut_cpins = Vec::with_capacity(luts.len());
        let mut lut_cfull = Vec::with_capacity(luts.len());
        let mut lut_cpristine = Vec::with_capacity(luts.len());
        let mut lut_coff = Vec::with_capacity(luts.len());
        let mut coff = 0u32;
        for (li, l) in luts.iter().enumerate() {
            let mut cpins = [0u32; 4];
            let mut used = [0u8; 4];
            let mut arity = 0usize;
            for (k, pin) in l.pins.iter().enumerate() {
                if let Some(w) = pin {
                    cpins[arity] = *w;
                    used[arity] = k as u8;
                    arity += 1;
                }
            }
            let mut cfull = [0u8; 16];
            let mut cpristine = 0u16;
            for (j, cf) in cfull.iter_mut().enumerate().take(1usize << arity) {
                let mut full = 0usize;
                for (k, &pos) in used.iter().enumerate().take(arity) {
                    full |= ((j >> k) & 1) << pos;
                }
                *cf = full as u8;
                cpristine |= (((pristine_tables[li] >> full) & 1) as u16) << j;
            }
            lut_arity.push(arity as u8);
            lut_cpins.push(cpins);
            lut_cfull.push(cfull);
            lut_cpristine.push(cpristine);
            lut_coff.push(coff);
            coff += 1u32 << arity;
        }

        let brams: Vec<LaneBram> = pristine
            .brams()
            .iter()
            .zip(&bram_write_ports)
            .zip(&bram_dout_wires)
            .map(|((cfg, port), douts)| {
                let width = cfg.width as usize;
                let depth = cfg.depth();
                LaneBram {
                    we: port.we,
                    addr_wires: port.addr.clone(),
                    din_wires: port.din.clone(),
                    dout_wires: douts.clone(),
                    width,
                    depth,
                    contents: vec![0; depth * width],
                    pristine_words: cfg.contents.clone(),
                    dirty: Vec::new(),
                    is_dirty: vec![false; depth * width],
                    prev_we: 0,
                    prev_addr: vec![0; port.addr.len()],
                    prev_din: vec![0; port.din.len()],
                }
            })
            .collect();

        let n_wires = pristine.wires().len();
        let ff_columns = pristine.ff_columns();
        let n_luts = luts.len();
        let n_ffs = ffs.len();

        // Build the wire → consumers index the sparse settle walks.
        // `eval_order` is already topological (producers strictly before
        // consumers), which is what makes the ascending bitmap scan in
        // `settle_sparse` evaluate each dirty node at most once.
        let n_nodes = eval_order.len();
        let mut node_of_lut = vec![u32::MAX; n_luts];
        let mut node_of_bram = vec![u32::MAX; brams.len()];
        let mut consumer_start = vec![0u32; n_wires + 1];
        let node_inputs = |node: CombNode| -> Vec<u32> {
            match node {
                CombNode::Lut(li) => luts[li as usize].pins.iter().flatten().copied().collect(),
                CombNode::Bram(bi) => brams[bi as usize].addr_wires.clone(),
            }
        };
        for (pos, &node) in eval_order.iter().enumerate() {
            match node {
                CombNode::Lut(li) => node_of_lut[li as usize] = pos as u32,
                CombNode::Bram(bi) => node_of_bram[bi as usize] = pos as u32,
            }
            for w in node_inputs(node) {
                consumer_start[w as usize + 1] += 1;
            }
        }
        for w in 0..n_wires {
            consumer_start[w + 1] += consumer_start[w];
        }
        let mut fill: Vec<u32> = consumer_start[..n_wires].to_vec();
        let mut consumers = vec![0u32; consumer_start[n_wires] as usize];
        for (pos, &node) in eval_order.iter().enumerate() {
            for w in node_inputs(node) {
                consumers[fill[w as usize] as usize] = pos as u32;
                fill[w as usize] += 1;
            }
        }

        let node_descs: Vec<NodeDesc> = eval_order
            .iter()
            .map(|&node| match node {
                CombNode::Lut(li) => {
                    let l = li as usize;
                    NodeDesc {
                        target: li,
                        out_wire: luts[l].out_wire.unwrap_or(u32::MAX),
                        table_off: lut_coff[l],
                        arity: lut_arity[l],
                        is_bram: 0,
                        cpristine: lut_cpristine[l],
                        pins: lut_cpins[l],
                    }
                }
                CombNode::Bram(bi) => NodeDesc {
                    target: bi,
                    out_wire: u32::MAX,
                    table_off: 0,
                    arity: 0,
                    is_bram: 1,
                    cpristine: 0,
                    pins: [0; 4],
                },
            })
            .collect();

        let mut engine = BatchDevice {
            arch,
            pristine,
            ffs,
            ff_of_cb,
            lut_of_cb,
            ff_overshoot_ns,
            bram_overshoot_ns,
            ff_columns,
            pristine_tables,
            pristine_invert,
            pristine_drive,
            ff_init,
            lut_tables: vec![[0u64; 16]; n_luts],
            lut_arity,
            lut_cfull,
            lut_cpristine,
            lut_coff,
            compact_tables: vec![0u64; coff as usize],
            lut_table_diff: vec![0; n_luts],
            invert_ff_in: vec![0; n_ffs],
            invert_diff: vec![0; n_ffs],
            lsr_drive: vec![0; n_ffs],
            config_diff_count: [0; LANES],
            cycle: 0,
            wire_values: vec![0; n_wires],
            lut_values: vec![0; n_luts],
            ff_state: vec![0; n_ffs],
            ff_prev_d: vec![0; n_ffs],
            brams,
            ledgers: vec![TransferLedger::new(); LANES],
            sparse: sparse_default(),
            all_dirty: true,
            lanes_uniform: false,
            node_descs,
            ff_changed: Vec::new(),
            frontier_dense: false,
            resample_in: 0,
            node_of_lut,
            node_of_bram,
            consumer_start,
            consumers,
            dirty_words: vec![0u64; n_nodes.div_ceil(64)],
            seq_div_ff: 0,
            seq_div_shadow: 0,
            ff_touched_since_edge: false,
        };
        engine.reset();
        Some(engine)
    }

    /// The architecture of the underlying device.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// Cycles executed since the last [`reset`](Self::reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Broadcast-splats every LUT's pristine truth table into both the
    /// full (readback) and compact (evaluation) lane representations and
    /// clears the table-diff masks.
    fn rebuild_pristine_tables(&mut self) {
        for li in 0..self.pristine_tables.len() {
            let table = self.pristine_tables[li];
            for (k, w) in self.lut_tables[li].iter_mut().enumerate() {
                *w = splat((table >> k) & 1 == 1);
            }
            let ct = self.lut_cpristine[li];
            let off = self.lut_coff[li] as usize;
            for k in 0..(1usize << self.lut_arity[li]) {
                self.compact_tables[off + k] = splat((ct >> k) & 1 == 1);
            }
            self.lut_table_diff[li] = 0;
        }
    }

    /// Restores every lane to the device's initial state: flip-flops to
    /// their init values, configuration (LUT tables, inverters, set/reset
    /// muxes, memory contents) to pristine, and clears all lane ledgers.
    pub fn reset(&mut self) {
        self.rebuild_pristine_tables();
        for i in 0..self.ffs.len() {
            self.invert_ff_in[i] = splat(self.pristine_invert[i]);
            self.invert_diff[i] = 0;
            self.lsr_drive[i] = splat(self.pristine_drive[i]);
            let init = splat(self.ff_init[i]);
            self.ff_state[i] = init;
            self.ff_prev_d[i] = init;
        }
        self.config_diff_count = [0; LANES];
        for w in self.wire_values.iter_mut() {
            *w = 0;
        }
        for v in self.lut_values.iter_mut() {
            *v = 0;
        }
        for b in self.brams.iter_mut() {
            b.reset();
        }
        for l in self.ledgers.iter_mut() {
            l.clear();
        }
        self.cycle = 0;
        // Zeroed wires are not a settled fixpoint, so the next settle
        // must be a full sweep; after it the sparse invariant holds.
        self.all_dirty = true;
        self.lanes_uniform = true;
        self.clear_dirty_queues();
        self.ff_changed.clear();
        self.seq_div_ff = 0;
        self.seq_div_shadow = 0;
        self.ff_touched_since_edge = false;
    }

    /// Enables or disables the sparse divergence-frontier settle. Both
    /// modes are bit-identical (the full sweep is the reference
    /// semantics); the switch exists so campaigns can honour the
    /// `FADES_NO_SPARSE` kill switch without re-reading the environment
    /// per engine.
    pub fn set_sparse(&mut self, on: bool) {
        if on && !self.sparse {
            // Dirty marks were not maintained while the scheduler was
            // off; resync with one full sweep.
            self.all_dirty = true;
        }
        self.sparse = on;
    }

    /// Splat-loads every lane from one scalar golden-run snapshot:
    /// configuration back to pristine (exactly as [`reset`](Self::reset)
    /// does), runtime state broadcast from the snapshot, ledgers cleared,
    /// and the cycle counter set to the snapshot's cycle.
    ///
    /// This is the warm-start primitive: a cohort whose earliest
    /// injection instant is `c` can restore the nearest golden checkpoint
    /// at or before `c` and skip re-simulating the pristine prefix, and
    /// the result is bit-identical by construction — every lane's state
    /// is exactly what replaying the prefix would have produced, because
    /// until its injection a lane *is* the golden run.
    ///
    /// Checkpoints are captured post-edge, pre-settle: the snapshot's
    /// wire and LUT values are the fixpoint of the *previous* cycle's
    /// presentation, stale against its `ff_state` and memory contents.
    /// The restore therefore forces one full sweep at the next settle
    /// (`all_dirty`), exactly like `reset`, before the sparse scheduler
    /// takes over.
    pub fn restore_broadcast(&mut self, snap: &DeviceState) {
        self.rebuild_pristine_tables();
        for i in 0..self.ffs.len() {
            self.invert_ff_in[i] = splat(self.pristine_invert[i]);
            self.invert_diff[i] = 0;
            self.lsr_drive[i] = splat(self.pristine_drive[i]);
            self.ff_state[i] = splat(snap.ff_state[i]);
            self.ff_prev_d[i] = splat(snap.ff_prev_d[i]);
        }
        self.config_diff_count = [0; LANES];
        for (w, &v) in self.wire_values.iter_mut().zip(&snap.wire_values) {
            *w = splat(v);
        }
        for (w, &v) in self.lut_values.iter_mut().zip(&snap.lut_values) {
            *w = splat(v);
        }
        for (bi, b) in self.brams.iter_mut().enumerate() {
            for (addr, &word) in snap.bram_contents[bi].iter().enumerate() {
                for bit in 0..b.width {
                    b.contents[addr * b.width + bit] = splat((word >> bit) & 1 == 1);
                }
            }
            for &idx in &b.dirty {
                b.is_dirty[idx as usize] = false;
            }
            b.dirty.clear();
            let (we, addr, din) = snap.bram_prev_write[bi];
            b.prev_we = splat(we);
            for (k, w) in b.prev_addr.iter_mut().enumerate() {
                *w = splat((addr >> k) & 1 == 1);
            }
            for (k, w) in b.prev_din.iter_mut().enumerate() {
                *w = splat((din >> k) & 1 == 1);
            }
        }
        for l in self.ledgers.iter_mut() {
            l.clear();
        }
        self.cycle = snap.cycle;
        self.all_dirty = true;
        self.lanes_uniform = true;
        self.clear_dirty_queues();
        self.ff_changed.clear();
        self.seq_div_ff = 0;
        self.seq_div_shadow = 0;
        self.ff_touched_since_edge = false;
    }

    /// Drives an input port with the same bits on every lane.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown port or wrong width.
    pub fn set_input(&mut self, name: &str, bits: &[bool]) -> Result<(), FpgaError> {
        let port = self
            .pristine
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| FpgaError::UnknownPort(name.to_string()))?;
        if port.wires.len() != bits.len() {
            return Err(FpgaError::WidthMismatch {
                name: name.to_string(),
                expected: port.wires.len(),
                actual: bits.len(),
            });
        }
        for (w, &v) in port.wires.clone().iter().zip(bits) {
            let word = splat(v);
            let wi = w.index();
            if self.wire_values[wi] != word {
                self.wire_values[wi] = word;
                self.mark_wire_consumers(wi);
            }
        }
        Ok(())
    }

    /// The wire indices of an output port, LSB first (resolve once, then
    /// read per cycle with [`port_divergence`](Self::port_divergence)).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownPort`] for an unknown port.
    pub fn output_wires(&self, name: &str) -> Result<Vec<u32>, FpgaError> {
        let port = self
            .pristine
            .outputs()
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| FpgaError::UnknownPort(name.to_string()))?;
        Ok(port.wires.iter().map(|w| w.index() as u32).collect())
    }

    /// Lanes (bit set) whose value on the given port wires differs from
    /// the expected golden value; call after [`settle`](Self::settle).
    /// Only the first 64 wires are compared, mirroring
    /// [`Device::output_u64`].
    pub fn port_divergence(&self, wires: &[u32], golden: u64) -> u64 {
        let mut d = 0u64;
        for (bit, &w) in wires.iter().enumerate().take(64) {
            d |= self.wire_values[w as usize] ^ splat((golden >> bit) & 1 == 1);
        }
        d
    }

    /// Reads an output port as an integer for one lane (test/debug aid).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownPort`] for an unknown port.
    pub fn output_u64_lane(&self, name: &str, lane: usize) -> Result<u64, FpgaError> {
        let wires = self.output_wires(name)?;
        let mut v = 0u64;
        for (bit, &w) in wires.iter().enumerate().take(64) {
            v |= ((self.wire_values[w as usize] >> lane) & 1) << bit;
        }
        Ok(v)
    }

    /// Propagates values through the combinational fabric, all lanes at
    /// once.
    ///
    /// With the sparse scheduler enabled (the default) this is a hybrid:
    /// a sparse settle re-evaluates only the fan-out cone of words that
    /// changed since the previous settle — bit-identical to the full
    /// sweep, because a node outside the changed fan-out sees identical
    /// inputs and an identical function, so its output cannot change.
    /// When the frontier turns out dense (above `1/DENSE_FRONTIER_DIV`
    /// of the design) the sparse scan bails out into the streaming full
    /// sweep, whose sequential evals are ~5× cheaper per node than the
    /// dirty-cone's random accesses; the engine then stays on full
    /// sweeps, re-probing sparsely every `DENSE_RESAMPLE_PERIOD`
    /// settles. The bail-out is sound because one full topological
    /// sweep computes the fixpoint from any intermediate wire state,
    /// after which all accumulated dirty marks and seeds are moot.
    pub fn settle(&mut self) {
        if !self.sparse {
            self.settle_full();
            self.ff_changed.clear();
        } else if self.all_dirty {
            self.settle_full();
            self.clear_dirty_queues();
            self.ff_changed.clear();
            self.all_dirty = false;
        } else if self.frontier_dense && self.resample_in != 0 {
            self.resample_in -= 1;
            self.settle_full();
            self.clear_dirty_queues();
            self.ff_changed.clear();
        } else if self.settle_sparse() {
            self.frontier_dense = false;
        } else {
            // The probe crossed the density threshold: finish with the
            // streaming sweep and stay dense for a while.
            self.settle_full();
            self.clear_dirty_queues();
            self.frontier_dense = true;
            self.resample_in = DENSE_RESAMPLE_PERIOD;
        }
    }

    /// Reference semantics: evaluates every combinational node in
    /// topological order.
    fn settle_full(&mut self) {
        for (i, ff) in self.ffs.iter().enumerate() {
            if let Some(w) = ff.out_wire {
                self.wire_values[w as usize] = self.ff_state[i];
            }
        }
        for idx in 0..self.node_descs.len() {
            let d = self.node_descs[idx];
            if d.is_bram == 0 {
                let v = self.eval_lut_lanes(&d);
                self.lut_values[d.target as usize] = v;
                if d.out_wire != u32::MAX {
                    self.wire_values[d.out_wire as usize] = v;
                }
            } else {
                let b = &self.brams[d.target as usize];
                let all_uniform = b
                    .addr_wires
                    .iter()
                    .all(|&w| uniform(self.wire_values[w as usize]));
                if all_uniform {
                    let mut addr = 0usize;
                    for (k, &w) in b.addr_wires.iter().enumerate() {
                        addr |= ((self.wire_values[w as usize] & 1) as usize) << k;
                    }
                    let base = addr * b.width;
                    for (bit, dw) in b.dout_wires.iter().enumerate() {
                        if let Some(w) = dw {
                            self.wire_values[*w as usize] = b.contents[base + bit];
                        }
                    }
                } else {
                    let mut addrs = [0usize; LANES];
                    for (k, &w) in b.addr_wires.iter().enumerate() {
                        let word = self.wire_values[w as usize];
                        for (lane, a) in addrs.iter_mut().enumerate() {
                            *a |= (((word >> lane) & 1) as usize) << k;
                        }
                    }
                    for (bit, dw) in b.dout_wires.iter().enumerate() {
                        if let Some(w) = dw {
                            let mut out = 0u64;
                            for (lane, &a) in addrs.iter().enumerate() {
                                out |= ((b.contents[a * b.width + bit] >> lane) & 1) << lane;
                            }
                            self.wire_values[*w as usize] = out;
                        }
                    }
                }
            }
        }
    }

    /// Dirty-cone settle: seeds from the flip-flops recorded on
    /// `ff_changed` (every `ff_state` writer — the clock edge, set/reset
    /// pulses, re-randomisation, lane snapping — appends the indices it
    /// changed) plus the nodes marked dirty by configuration/memory
    /// mutations since the previous settle, then scans the dirty bitmap
    /// in ascending node-position order. Topological `eval_order` makes
    /// the single scan sufficient: every consumer a dirty node marks
    /// lies strictly ahead of it, either at a higher bit of the current
    /// word (caught by the re-check before advancing) or in a later
    /// word.
    ///
    /// Returns `false` — leaving the remaining dirty bits set and the
    /// wires updated so far in a valid intermediate state — when the
    /// frontier crosses the density threshold; the caller must then run
    /// the full sweep (which reaches the same fixpoint from any
    /// intermediate state) and clear the dirty bitmap.
    fn settle_sparse(&mut self) -> bool {
        let limit = (self.node_descs.len() / DENSE_FRONTIER_DIV) as u64;
        let n_changed = self.ff_changed.len();
        for n in 0..n_changed {
            let i = self.ff_changed[n] as usize;
            if let Some(w) = self.ffs[i].out_wire {
                let v = self.ff_state[i];
                let wi = w as usize;
                if self.wire_values[wi] != v {
                    self.wire_values[wi] = v;
                    self.mark_wire_consumers(wi);
                }
            }
        }
        self.ff_changed.clear();
        let uniform_mode = self.lanes_uniform;
        let mut evaluated = 0u64;
        let mut wi = 0usize;
        while wi < self.dirty_words.len() {
            // Clear one bit at a time: an eval that marks a consumer in
            // this same word either targets a still-pending bit (the OR
            // is idempotent — no duplicate eval) or a strictly higher,
            // already-cleared one (re-seen by this inner loop).
            let base = wi << 6;
            loop {
                let w = self.dirty_words[wi];
                if w == 0 {
                    break;
                }
                if evaluated >= limit {
                    return false;
                }
                let b = w.trailing_zeros() as usize;
                self.dirty_words[wi] = w & (w - 1);
                self.eval_node(base + b, uniform_mode);
                evaluated += 1;
            }
            wi += 1;
        }
        sim::record_sparse_settle(self.node_descs.len() as u64 - evaluated, uniform_mode);
        true
    }

    /// Re-evaluates one combinational node, propagating output changes
    /// into the dirty bitmap.
    fn eval_node(&mut self, pos: usize, uniform_mode: bool) {
        let d = self.node_descs[pos];
        if d.is_bram == 0 {
            let v = if uniform_mode {
                // Golden-uniform fast path: every lane word is still a
                // broadcast and the configuration is pristine, so one
                // scalar table lookup replaces the mux tree.
                let mut idx = 0usize;
                for k in 0..d.arity as usize {
                    idx |= ((self.wire_values[d.pins[k] as usize] & 1) as usize) << k;
                }
                splat((d.cpristine >> idx) & 1 == 1)
            } else {
                self.eval_lut_lanes(&d)
            };
            self.lut_values[d.target as usize] = v;
            if d.out_wire != u32::MAX {
                let wi = d.out_wire as usize;
                if self.wire_values[wi] != v {
                    self.wire_values[wi] = v;
                    self.mark_wire_consumers(wi);
                }
            }
        } else {
            {
                let bi = d.target as usize;
                let mut changed = [0u32; 64];
                let mut n_changed = 0usize;
                {
                    let b = &self.brams[bi];
                    let all_uniform = b
                        .addr_wires
                        .iter()
                        .all(|&w| uniform(self.wire_values[w as usize]));
                    if all_uniform {
                        let mut addr = 0usize;
                        for (k, &w) in b.addr_wires.iter().enumerate() {
                            addr |= ((self.wire_values[w as usize] & 1) as usize) << k;
                        }
                        let base = addr * b.width;
                        for (bit, dw) in b.dout_wires.iter().enumerate() {
                            if let Some(w) = dw {
                                let v = b.contents[base + bit];
                                let wi = *w as usize;
                                if self.wire_values[wi] != v {
                                    self.wire_values[wi] = v;
                                    changed[n_changed] = wi as u32;
                                    n_changed += 1;
                                }
                            }
                        }
                    } else {
                        let mut addrs = [0usize; LANES];
                        for (k, &w) in b.addr_wires.iter().enumerate() {
                            let word = self.wire_values[w as usize];
                            for (lane, a) in addrs.iter_mut().enumerate() {
                                *a |= (((word >> lane) & 1) as usize) << k;
                            }
                        }
                        for (bit, dw) in b.dout_wires.iter().enumerate() {
                            if let Some(w) = dw {
                                let mut out = 0u64;
                                for (lane, &a) in addrs.iter().enumerate() {
                                    out |= ((b.contents[a * b.width + bit] >> lane) & 1) << lane;
                                }
                                let wi = *w as usize;
                                if self.wire_values[wi] != out {
                                    self.wire_values[wi] = out;
                                    changed[n_changed] = wi as u32;
                                    n_changed += 1;
                                }
                            }
                        }
                    }
                }
                for &w in &changed[..n_changed] {
                    self.mark_wire_consumers(w as usize);
                }
            }
        }
    }

    /// Evaluates one LUT over all lanes with a mux tree sized to its
    /// connected-pin count. Bit-identical to the full 4-variable tree:
    /// unconnected pins present constant-0 words, so the full tree only
    /// ever selects the table entries the compact tree holds.
    #[inline]
    fn eval_lut_lanes(&self, d: &NodeDesc) -> u64 {
        let ct = &self.compact_tables[d.table_off as usize..];
        let wv = &self.wire_values;
        match d.arity {
            0 => ct[0],
            1 => mux2(ct[0], ct[1], wv[d.pins[0] as usize]),
            2 => {
                let a = wv[d.pins[0] as usize];
                let b = wv[d.pins[1] as usize];
                mux2(mux2(ct[0], ct[1], a), mux2(ct[2], ct[3], a), b)
            }
            3 => {
                let a = wv[d.pins[0] as usize];
                let b = wv[d.pins[1] as usize];
                let c = wv[d.pins[2] as usize];
                let n0 = mux2(mux2(ct[0], ct[1], a), mux2(ct[2], ct[3], a), b);
                let n1 = mux2(mux2(ct[4], ct[5], a), mux2(ct[6], ct[7], a), b);
                mux2(n0, n1, c)
            }
            _ => {
                let p = [
                    wv[d.pins[0] as usize],
                    wv[d.pins[1] as usize],
                    wv[d.pins[2] as usize],
                    wv[d.pins[3] as usize],
                ];
                eval_lane_table(ct, p)
            }
        }
    }

    /// Marks every consumer of a wire dirty (enqueues it on its level's
    /// worklist). No-op while the sparse scheduler is off.
    #[inline]
    fn mark_wire_consumers(&mut self, w: usize) {
        if !self.sparse {
            return;
        }
        let start = self.consumer_start[w] as usize;
        let end = self.consumer_start[w + 1] as usize;
        for k in start..end {
            self.mark_node(self.consumers[k]);
        }
    }

    /// Marks one `eval_order` position dirty. `u32::MAX` (no node) is
    /// ignored, as is everything while the sparse scheduler is off.
    #[inline]
    fn mark_node(&mut self, pos: u32) {
        if !self.sparse || pos == u32::MAX {
            return;
        }
        let p = pos as usize;
        self.dirty_words[p >> 6] |= 1u64 << (p & 63);
    }

    /// Writes one flip-flop's state word, recording it on the sparse
    /// seed list when the value actually changed.
    #[inline]
    fn write_ff_state(&mut self, fi: usize, new: u64) {
        if self.ff_state[fi] != new {
            self.ff_state[fi] = new;
            if self.sparse {
                self.ff_changed.push(fi as u32);
            }
        }
    }

    /// Clears the dirty bitmap (after a full sweep made the marks moot).
    fn clear_dirty_queues(&mut self) {
        self.dirty_words.fill(0);
    }

    /// Applies the clock edge on every lane: flip-flop captures (with the
    /// same deterministic setup-violation model as the scalar device) and
    /// lane-masked memory writes.
    pub fn clock_edge(&mut self) {
        // Fold the flip-flop and capture-shadow components of the
        // retirement divergence mask while the words are already in hand,
        // so `seq_divergence` does not rescan them per cycle.
        let mut div_ff = 0u64;
        let mut div_shadow = 0u64;
        for i in 0..self.ffs.len() {
            let raw = match self.ffs[i].data {
                FfData::LutInternal(li) => self.lut_values[li as usize],
                FfData::Wire(w) => self.wire_values[w as usize],
            };
            let d = raw ^ self.invert_ff_in[i];
            let overshoot = self.ff_overshoot_ns.get(i).copied().unwrap_or(0.0);
            // Timing is pristine and lane-invariant (lanes cannot touch
            // routing), so the miss decision is one whole-word select.
            let captured = if capture_misses(&self.arch, self.cycle, overshoot, i as u64) {
                self.ff_prev_d[i]
            } else {
                d
            };
            if captured != self.ff_state[i] && self.sparse {
                self.ff_changed.push(i as u32);
            }
            self.ff_state[i] = captured;
            self.ff_prev_d[i] = d;
            div_ff |= captured ^ splat_lane0(captured);
            div_shadow |= d ^ splat_lane0(d);
        }
        for bi in 0..self.brams.len() {
            let overshoot = self.bram_overshoot_ns.get(bi).copied().unwrap_or(0.0);
            let miss = capture_misses(&self.arch, self.cycle, overshoot, 0x8000_0000 | bi as u64);
            let mut wrote = false;
            let b = &mut self.brams[bi];
            let Some(we) = b.we else { continue };
            let we_now = self.wire_values[we as usize];
            let mut addr_now = [0u64; 32];
            let naddr = b.addr_wires.len();
            for (k, &w) in b.addr_wires.iter().enumerate() {
                addr_now[k] = self.wire_values[w as usize];
            }
            let mut din_now = [0u64; 64];
            let ndin = b.din_wires.len();
            for (k, &w) in b.din_wires.iter().enumerate() {
                din_now[k] = self.wire_values[w as usize];
            }
            {
                // Copy the effective write operands to the stack so the
                // content writes below don't alias `prev_*`.
                let we_eff;
                let mut addr_buf = [0u64; 32];
                let mut din_buf = [0u64; 64];
                if miss {
                    we_eff = b.prev_we;
                    addr_buf[..naddr].copy_from_slice(&b.prev_addr);
                    din_buf[..ndin].copy_from_slice(&b.prev_din);
                } else {
                    we_eff = we_now;
                    addr_buf = addr_now;
                    din_buf = din_now;
                }
                let addr_eff = &addr_buf[..naddr];
                let din_eff = &din_buf[..ndin];
                if we_eff == u64::MAX && addr_eff.iter().all(|&w| uniform(w)) {
                    // Whole-word fast path: every lane writes the same
                    // address, so each bit cell takes its din word.
                    let mut addr = 0usize;
                    for (k, &w) in addr_eff.iter().enumerate() {
                        addr |= ((w & 1) as usize) << k;
                    }
                    let base = addr * b.width;
                    for bit in 0..b.width {
                        let w = din_eff.get(bit).copied().unwrap_or(0);
                        let idx = base + bit;
                        if b.contents[idx] != w {
                            b.contents[idx] = w;
                            wrote = true;
                            if !uniform(w) {
                                b.mark_dirty(idx);
                            }
                        }
                    }
                } else if we_eff != 0 {
                    let mut lanes = we_eff;
                    while lanes != 0 {
                        let lane = lanes.trailing_zeros() as usize;
                        lanes &= lanes - 1;
                        let m = 1u64 << lane;
                        let mut addr = 0usize;
                        for (k, &w) in addr_eff.iter().enumerate() {
                            addr |= (((w >> lane) & 1) as usize) << k;
                        }
                        let base = addr * b.width;
                        for bit in 0..b.width {
                            let v = din_eff.get(bit).copied().unwrap_or(0) & m;
                            let idx = base + bit;
                            let new = (b.contents[idx] & !m) | v;
                            if new != b.contents[idx] {
                                b.contents[idx] = new;
                                wrote = true;
                                if !uniform(new) {
                                    b.mark_dirty(idx);
                                }
                            }
                        }
                    }
                }
            }
            b.prev_we = we_now;
            b.prev_addr.copy_from_slice(&addr_now[..naddr]);
            b.prev_din.copy_from_slice(&din_now[..ndin]);
            div_shadow |= we_now ^ splat_lane0(we_now);
            for &w in &addr_now[..naddr] {
                div_shadow |= w ^ splat_lane0(w);
            }
            for &w in &din_now[..ndin] {
                div_shadow |= w ^ splat_lane0(w);
            }
            if wrote {
                // A content change can move the read ports' next output;
                // re-evaluate this memory node at the next settle.
                self.mark_node(self.node_of_bram[bi]);
            }
        }
        self.seq_div_ff = div_ff;
        self.seq_div_shadow = div_shadow;
        self.ff_touched_since_edge = false;
        self.cycle += 1;
    }

    /// Runs one full cycle on every lane: settle, then clock edge.
    pub fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// Lanes (bit set) whose sequential state — flip-flops, previous-D
    /// shadows, pending memory captures, memory contents — differs from
    /// lane 0. A lane with a clear bit here *and* in
    /// [`config_divergence`](Self::config_divergence) evolves identically
    /// to the golden lane forever (the batch analogue of the scalar
    /// early-stop hash check, but by true equality).
    ///
    /// Takes `&mut self` to lazily sweep reconverged memory words off the
    /// dirty list.
    ///
    /// The flip-flop and capture-shadow components are incremental: they
    /// were folded while [`clock_edge`](Self::clock_edge) rewrote the
    /// words, so the per-cycle cost here is the (divergence-proportional)
    /// memory dirty-list sweep plus two cached words. A set/reset pulse
    /// that mutates `ff_state` between edges flips
    /// `ff_touched_since_edge`, and the flip-flop component is then
    /// recomputed directly (the shadow words are only ever written at the
    /// edge, so their fold cannot go stale).
    pub fn seq_divergence(&mut self) -> u64 {
        let ff_part = if self.ff_touched_since_edge {
            let mut d = 0u64;
            for &w in &self.ff_state {
                d |= w ^ splat_lane0(w);
            }
            d
        } else {
            self.seq_div_ff
        };
        let mut d = ff_part | self.seq_div_shadow;
        for b in self.brams.iter_mut() {
            let mut k = 0;
            while k < b.dirty.len() {
                let idx = b.dirty[k] as usize;
                let w = b.contents[idx];
                let x = w ^ splat_lane0(w);
                if x == 0 {
                    b.is_dirty[idx] = false;
                    b.dirty.swap_remove(k);
                } else {
                    d |= x;
                    k += 1;
                }
            }
        }
        debug_assert_eq!(
            d,
            self.seq_divergence_scan(),
            "incremental divergence mask diverged from the full scan"
        );
        d
    }

    /// Ground-truth divergence mask: rescans every flip-flop, shadow and
    /// memory word. Only used to validate the incremental mask in debug
    /// builds.
    fn seq_divergence_scan(&self) -> u64 {
        let mut d = 0u64;
        for i in 0..self.ffs.len() {
            d |= self.ff_state[i] ^ splat_lane0(self.ff_state[i]);
            d |= self.ff_prev_d[i] ^ splat_lane0(self.ff_prev_d[i]);
        }
        for b in &self.brams {
            d |= b.prev_we ^ splat_lane0(b.prev_we);
            for &w in &b.prev_addr {
                d |= w ^ splat_lane0(w);
            }
            for &w in &b.prev_din {
                d |= w ^ splat_lane0(w);
            }
            for &w in &b.contents {
                d |= w ^ splat_lane0(w);
            }
        }
        d
    }

    /// Lanes (bit set) whose behaviour-affecting configuration differs
    /// from pristine (LUT tables and FF-input inverters; `lsr_drive` is
    /// deliberately excluded, matching
    /// [`Device::config_behaviourally_pristine`]).
    pub fn config_divergence(&self) -> u64 {
        let mut d = 0u64;
        for (lane, &c) in self.config_diff_count.iter().enumerate() {
            if c != 0 {
                d |= 1 << lane;
            }
        }
        d
    }

    /// One lane's sequential-state snapshot in exactly the layout of
    /// [`Device::state_snapshot`] (packed flip-flop bits, then memory
    /// words), for Latent-fault classification.
    pub fn state_snapshot_lane(&self, lane: usize) -> Vec<u64> {
        let mut snap = Vec::new();
        let mut acc = 0u64;
        let mut nbits = 0;
        for w in &self.ff_state {
            acc |= ((w >> lane) & 1) << nbits;
            nbits += 1;
            if nbits == 64 {
                snap.push(acc);
                acc = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            snap.push(acc);
        }
        for b in &self.brams {
            for addr in 0..b.depth {
                let mut word = 0u64;
                for bit in 0..b.width {
                    word |= ((b.contents[addr * b.width + bit] >> lane) & 1) << bit;
                }
                snap.push(word);
            }
        }
        snap
    }

    /// One lane's configuration-traffic ledger.
    pub fn ledger(&self, lane: usize) -> &TransferLedger {
        &self.ledgers[lane]
    }

    /// Clears one lane's ledger (between experiments).
    pub fn clear_ledger(&mut self, lane: usize) {
        self.ledgers[lane].clear();
    }

    /// Rewrites one lane's sequential state — flip-flops, capture
    /// shadows, memory contents and write-port shadows — to the golden
    /// lane's bits.
    ///
    /// This is the decided-lane shortcut: once an experiment's outcome
    /// is locked (observed-port divergence ⇒ Failure), its fault is
    /// inert (all reconfiguration traffic already issued) and its
    /// configuration is pristine, the lane's further evolution cannot
    /// influence anything observable — outcome, ledger and modelled
    /// emulation time are fixed. Snapping the lane onto the golden
    /// trajectory therefore keeps results bit-identical while letting
    /// the ordinary reconvergence retirement fire immediately, which
    /// collapses the divergence frontier the sparse settle walks (a
    /// hard-diverged machine would otherwise keep half the netlist
    /// non-uniform until the end of the pass).
    ///
    /// Only sequential state is touched. Combinational words re-settle
    /// through the usual dirty-cone machinery: every wire whose lane
    /// bit differs from golden lies in the fan-out of a snapped word,
    /// because the configuration is pristine and primary inputs are
    /// lane-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is 0 (the golden lane) or out of range.
    pub fn snap_lane_to_golden(&mut self, lane: usize) {
        assert!((1..LANES).contains(&lane), "lane {lane} out of range");
        let m = 1u64 << lane;
        let keep = !m;
        let snap = |w: u64| (w & keep) | ((w & 1) << lane);
        for i in 0..self.ff_state.len() {
            self.write_ff_state(i, snap(self.ff_state[i]));
        }
        for w in self.ff_prev_d.iter_mut() {
            *w = snap(*w);
        }
        for bi in 0..self.brams.len() {
            let mut touched = false;
            {
                let b = &mut self.brams[bi];
                b.prev_we = snap(b.prev_we);
                for w in b.prev_addr.iter_mut() {
                    *w = snap(*w);
                }
                for w in b.prev_din.iter_mut() {
                    *w = snap(*w);
                }
                // Every content word diverging in this lane is on the
                // dirty list (the list's invariant), so the sweep below
                // reaches all of them.
                for k in 0..b.dirty.len() {
                    let idx = b.dirty[k] as usize;
                    let w = b.contents[idx];
                    let s = snap(w);
                    if s != w {
                        b.contents[idx] = s;
                        touched = true;
                    }
                }
            }
            if touched {
                // Changed contents can move the read ports' next output.
                self.mark_node(self.node_of_bram[bi]);
            }
        }
        // The cached retirement folds are per-lane ORs, so clearing the
        // snapped lane's bit keeps them exact (its true divergence is
        // now zero; other lanes' bits are untouched).
        self.seq_div_ff &= keep;
        self.seq_div_shadow &= keep;
    }

    /// Prepares a retired lane for a fresh experiment: restores its
    /// set/reset mux selections to pristine and clears its ledger.
    ///
    /// Everything else is already golden by the retirement contract (the
    /// caller verified the lane's sequential state equals lane 0 and its
    /// behaviour-affecting configuration is pristine; `lsr_drive` is the
    /// one configuration cell retirement ignores).
    pub fn refill_lane(&mut self, lane: usize) {
        let keep = !(1u64 << lane);
        for (i, w) in self.lsr_drive.iter_mut().enumerate() {
            *w = (*w & keep) | (splat(self.pristine_drive[i]) & !keep);
        }
        self.ledgers[lane].clear();
    }

    /// Direct (cost-free) view of one flip-flop's state on one lane, for
    /// assertions (the batch analogue of [`Device::peek_ff`]).
    pub fn peek_ff_lane(&self, cb: CbCoord, lane: usize) -> Option<bool> {
        let flat = cb.flat_index(self.arch.rows);
        let idx = *self.ff_of_cb.get(flat)?;
        if idx == u32::MAX {
            None
        } else {
            Some((self.ff_state[idx as usize] >> lane) & 1 == 1)
        }
    }

    /// A reconfiguration facade for one lane; `lane` must be in `1..64`
    /// (lane 0 is the golden lane and must never be reconfigured).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is 0 or ≥ 64.
    pub fn lane(&mut self, lane: usize) -> LaneDevice<'_> {
        assert!((1..LANES).contains(&lane), "lane {lane} out of range");
        // Handing out a lane facade is the one gateway to per-lane
        // mutation, so it conservatively ends the golden-uniform
        // fast-path window (staying on the general path is always
        // bit-identical).
        self.lanes_uniform = false;
        LaneDevice { dev: self, lane }
    }

    fn set_lane_table(&mut self, li: usize, lane: usize, table: u16) {
        let m = 1u64 << lane;
        for (k, w) in self.lut_tables[li].iter_mut().enumerate() {
            if (table >> k) & 1 == 1 {
                *w |= m;
            } else {
                *w &= !m;
            }
        }
        let cfull = self.lut_cfull[li];
        let off = self.lut_coff[li] as usize;
        for (j, &cf) in cfull.iter().enumerate().take(1usize << self.lut_arity[li]) {
            let w = &mut self.compact_tables[off + j];
            if (table >> cf) & 1 == 1 {
                *w |= m;
            } else {
                *w &= !m;
            }
        }
        // A rewritten table can change the node's output with unchanged
        // inputs; re-evaluate it at the next settle.
        self.mark_node(self.node_of_lut[li]);
        let was = self.lut_table_diff[li] & m != 0;
        let now = table != self.pristine_tables[li];
        if was != now {
            if now {
                self.lut_table_diff[li] |= m;
                self.config_diff_count[lane] += 1;
            } else {
                self.lut_table_diff[li] &= !m;
                self.config_diff_count[lane] -= 1;
            }
        }
    }

    fn set_lane_invert(&mut self, fi: usize, lane: usize, invert: bool) {
        let m = 1u64 << lane;
        if invert {
            self.invert_ff_in[fi] |= m;
        } else {
            self.invert_ff_in[fi] &= !m;
        }
        let was = self.invert_diff[fi] & m != 0;
        let now = invert != self.pristine_invert[fi];
        if was != now {
            if now {
                self.invert_diff[fi] |= m;
                self.config_diff_count[lane] += 1;
            } else {
                self.invert_diff[fi] &= !m;
                self.config_diff_count[lane] -= 1;
            }
        }
    }
}

/// One lane of a [`BatchDevice`], presented through [`ConfigAccess`] so
/// injection strategies can reconfigure and read back exactly as they
/// would a scalar [`Device`] — same validation, same frame accounting,
/// charged to this lane's own ledger.
#[derive(Debug)]
pub struct LaneDevice<'a> {
    dev: &'a mut BatchDevice,
    lane: usize,
}

impl LaneDevice<'_> {
    fn mask(&self) -> u64 {
        1u64 << self.lane
    }

    fn flat(&self, cb: CbCoord) -> Result<usize, FpgaError> {
        let arch = &self.dev.arch;
        if cb.col >= arch.cols || cb.row >= arch.rows {
            return Err(FpgaError::CoordOutOfRange(cb));
        }
        Ok(cb.flat_index(arch.rows))
    }

    fn ff_node(&self, cb: CbCoord) -> Result<usize, FpgaError> {
        let idx = self.dev.ff_of_cb[self.flat(cb)?];
        if idx == u32::MAX {
            return Err(FpgaError::ResourceUnused(cb));
        }
        Ok(idx as usize)
    }

    fn record(&mut self, op: TransferOp) {
        self.dev.ledgers[self.lane].record(op);
    }

    fn charge_readback(&mut self, set: &FrameSet) {
        let bytes = set.bytes(&self.dev.arch);
        self.record(TransferOp {
            kind: TransferKind::Readback,
            frames: set.len() as u32,
            bytes,
        });
    }

    /// Mirror of `Device::apply_inner`, acting on one lane's bit of every
    /// touched cell and charging this lane's ledger with the identical
    /// frame traffic.
    fn apply_inner(&mut self, mutation: &Mutation, full_download: bool) -> Result<(), FpgaError> {
        let arch = self.dev.arch;
        let frames = mutation.frames(&arch, &self.dev.pristine);
        let writes = match mutation {
            Mutation::PulseLsr { .. } => 2,
            _ => 1,
        } * frames.len() as u32;
        let m = self.mask();
        match mutation {
            Mutation::SetLutTable { cb, table } => {
                let flat = self.flat(*cb)?;
                let li = self.dev.lut_of_cb[flat];
                if li == u32::MAX {
                    return Err(FpgaError::ResourceUnused(*cb));
                }
                self.dev.set_lane_table(li as usize, self.lane, *table);
            }
            Mutation::SetInvertFfIn { cb, invert } => {
                let fi = self.ff_node(*cb)?;
                self.dev.set_lane_invert(fi, self.lane, *invert);
            }
            Mutation::SetLsrDrive { cb, drive } => {
                let fi = self.ff_node(*cb)?;
                if drive.value() {
                    self.dev.lsr_drive[fi] |= m;
                } else {
                    self.dev.lsr_drive[fi] &= !m;
                }
            }
            Mutation::PulseLsr { cb } => {
                let fi = self.ff_node(*cb)?;
                let new = (self.dev.ff_state[fi] & !m) | (self.dev.lsr_drive[fi] & m);
                self.dev.write_ff_state(fi, new);
                self.dev.ff_touched_since_edge = true;
            }
            Mutation::PulseGsr => {
                for fi in 0..self.dev.ffs.len() {
                    let new = (self.dev.ff_state[fi] & !m) | (self.dev.lsr_drive[fi] & m);
                    self.dev.write_ff_state(fi, new);
                }
                self.dev.ff_touched_since_edge = true;
                self.record(TransferOp {
                    kind: TransferKind::GlobalPulse,
                    frames: 0,
                    bytes: 0,
                });
                return Ok(());
            }
            Mutation::SetBramBit {
                bram,
                addr,
                bit,
                value,
            } => {
                let b = self
                    .dev
                    .brams
                    .get_mut(bram.index())
                    .ok_or(FpgaError::BadBram(*bram))?;
                if *addr >= b.depth || *bit as usize >= b.width {
                    return Err(FpgaError::BadBramLocation {
                        bram: *bram,
                        addr: *addr,
                        bit: *bit,
                    });
                }
                let idx = addr * b.width + *bit as usize;
                let old = b.contents[idx];
                let new = if *value { old | m } else { old & !m };
                if new != old {
                    b.contents[idx] = new;
                    if !uniform(new) {
                        b.mark_dirty(idx);
                    }
                    let node = self.dev.node_of_bram[bram.index()];
                    self.dev.mark_node(node);
                }
            }
            Mutation::SetWireFanout { .. } | Mutation::SetWireDetour { .. } => {
                return Err(FpgaError::LaneUnsupported("routing mutation"));
            }
            Mutation::ReRandomiseFf { cb, drive } => {
                let fi = self.ff_node(*cb)?;
                if drive.value() {
                    self.dev.lsr_drive[fi] |= m;
                } else {
                    self.dev.lsr_drive[fi] &= !m;
                }
                let new = (self.dev.ff_state[fi] & !m) | (self.dev.lsr_drive[fi] & m);
                self.dev.write_ff_state(fi, new);
                self.dev.ff_touched_since_edge = true;
            }
        }
        if full_download {
            self.record(TransferOp {
                kind: TransferKind::FullDownload,
                frames: arch.total_frames(),
                bytes: arch.full_config_bytes(),
            });
        } else {
            self.record(TransferOp {
                kind: TransferKind::Write,
                frames: writes,
                bytes: writes as u64 * arch.frame_bytes as u64,
            });
        }
        // Timing-affecting mutations (routing) were rejected above, so no
        // timing re-analysis can be needed here.
        Ok(())
    }
}

impl ConfigAccess for LaneDevice<'_> {
    fn readback_ff(&mut self, cb: CbCoord) -> Result<bool, FpgaError> {
        let fi = self.ff_node(cb)?;
        let arch = self.dev.arch;
        let mut set = FrameSet::new();
        set.add_cb_field(&arch, cb, CbField::FfCapture);
        self.charge_readback(&set);
        Ok(self.dev.ff_state[fi] & self.mask() != 0)
    }

    fn readback_all_ffs(&mut self) -> Vec<(CbCoord, bool)> {
        let arch = self.dev.arch;
        let mut set = FrameSet::new();
        set.add_ff_capture_columns(self.dev.ff_columns.iter().copied());
        self.charge_readback(&set);
        let m = self.mask();
        self.dev
            .ffs
            .iter()
            .enumerate()
            .map(|(i, ff)| {
                (
                    CbCoord::from_flat_index(ff.cb_flat as usize, arch.rows),
                    self.dev.ff_state[i] & m != 0,
                )
            })
            .collect()
    }

    fn readback_bram_word(&mut self, bram: BramId, addr: usize) -> Result<u64, FpgaError> {
        let arch = self.dev.arch;
        let lane = self.lane;
        let b = self
            .dev
            .brams
            .get(bram.index())
            .ok_or(FpgaError::BadBram(bram))?;
        if addr >= b.depth {
            return Err(FpgaError::BadBramLocation { bram, addr, bit: 0 });
        }
        let width = b.width;
        let mut word = 0u64;
        for bit in 0..width {
            word |= ((b.contents[addr * width + bit] >> lane) & 1) << bit;
        }
        let mut set = FrameSet::new();
        set.add_bram_word(&arch, bram, addr, width as u32);
        self.charge_readback(&set);
        Ok(word)
    }

    fn readback_lut_table(&mut self, cb: CbCoord) -> Result<u16, FpgaError> {
        let flat = self.flat(cb)?;
        let li = self.dev.lut_of_cb[flat];
        if li == u32::MAX {
            return Err(FpgaError::ResourceUnused(cb));
        }
        let mut table = 0u16;
        for (k, w) in self.dev.lut_tables[li as usize].iter().enumerate() {
            table |= (((w >> self.lane) & 1) as u16) << k;
        }
        let arch = self.dev.arch;
        let mut set = FrameSet::new();
        set.add_cb_field(&arch, cb, CbField::LutTable);
        self.charge_readback(&set);
        Ok(table)
    }

    fn apply(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        self.apply_inner(mutation, false)
    }

    fn apply_via_full_download(&mut self, mutation: &Mutation) -> Result<(), FpgaError> {
        self.apply_inner(mutation, true)
    }

    fn bulk_set_lsr_drives(&mut self, drives: &[(CbCoord, SetReset)]) -> Result<(), FpgaError> {
        let arch = self.dev.arch;
        let m = self.mask();
        let mut set = FrameSet::new();
        for (cb, drive) in drives {
            let fi = self.ff_node(*cb)?;
            if drive.value() {
                self.dev.lsr_drive[fi] |= m;
            } else {
                self.dev.lsr_drive[fi] &= !m;
            }
            set.add_cb_field(&arch, *cb, CbField::LsrDrive);
        }
        let bytes = set.bytes(&arch);
        self.record(TransferOp {
            kind: TransferKind::Write,
            frames: set.len() as u32,
            bytes,
        });
        Ok(())
    }

    fn hold_lsr(&mut self, cb: CbCoord) -> Result<(), FpgaError> {
        let fi = self.ff_node(cb)?;
        let m = self.mask();
        let new = (self.dev.ff_state[fi] & !m) | (self.dev.lsr_drive[fi] & m);
        self.dev.write_ff_state(fi, new);
        self.dev.ff_touched_since_edge = true;
        Ok(())
    }
}

/// One 64-lane 2:1 mux: per lane, `hi` where the select bit is set,
/// else `lo`.
#[inline(always)]
fn mux2(lo: u64, hi: u64, s: u64) -> u64 {
    (lo & !s) | (hi & s)
}

/// Evaluates a lane-word truth table (16 lane words, one per entry) on
/// four lane words.
#[inline]
fn eval_lane_table(t: &[u64], p: [u64; 4]) -> u64 {
    let [a, b, c, d] = p;
    let mut m = [0u64; 8];
    for (j, slot) in m.iter_mut().enumerate() {
        *slot = (t[2 * j] & !a) | (t[2 * j + 1] & a);
    }
    mux_tree(m, b, c, d)
}

#[inline(always)]
fn mux_tree(m: [u64; 8], b: u64, c: u64, d: u64) -> u64 {
    let n0 = (m[0] & !b) | (m[1] & b);
    let n1 = (m[2] & !b) | (m[3] & b);
    let n2 = (m[4] & !b) | (m[5] & b);
    let n3 = (m[6] & !b) | (m[7] & b);
    let p0 = (n0 & !c) | (n1 & c);
    let p1 = (n2 & !c) | (n3 & c);
    (p0 & !d) | (p1 & d)
}

/// Deterministic capture-miss draw — bit-identical to
/// `Device::capture_misses` (same hash, same probability mapping), which
/// is what keeps batched and scalar runs cycle-exact on designs with
/// marginal timing.
fn capture_misses(arch: &ArchParams, cycle: u64, overshoot: f64, element: u64) -> bool {
    if overshoot <= 0.0 {
        return false;
    }
    let p = (overshoot / arch.arrival_spread_ns).min(1.0);
    if p >= 1.0 {
        return true;
    }
    let mut h =
        cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ element.wrapping_mul(0xD1B5_4A32_D192_ED03);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::Bitstream;
    use crate::cb::FfDSrc;
    use crate::routing::WireSink;

    /// Toggle FF: LUT inverts the FF's own output, FF registers the LUT.
    fn toggle_device() -> Device {
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(2, 3);
        let _lut_out = bs.add_lut(cb, 0x5555, [None, None, None, None]).unwrap();
        let ff_out = bs.add_ff(cb, false, FfDSrc::LutOut).unwrap();
        bs.cb_mut(cb).unwrap().lut_pins[0] = Some(ff_out);
        bs.wire_mut(ff_out)
            .unwrap()
            .sinks
            .push(WireSink::LutPin { cb, pin: 0 });
        bs.add_output("q", &[ff_out]).unwrap();
        Device::configure(bs).unwrap()
    }

    #[test]
    fn all_lanes_track_the_scalar_device() {
        let mut dev = toggle_device();
        let mut batch = BatchDevice::new(&dev).unwrap();
        dev.reset();
        for _ in 0..8 {
            dev.settle();
            batch.settle();
            let expected = dev.output_u64("q").unwrap();
            for lane in 0..LANES {
                assert_eq!(batch.output_u64_lane("q", lane).unwrap(), expected);
            }
            assert_eq!(batch.seq_divergence(), 0);
            dev.clock_edge();
            batch.clock_edge();
        }
    }

    #[test]
    fn lane_pulse_diverges_and_reconverges() {
        let dev = toggle_device();
        let cb = CbCoord::new(2, 3);
        let mut batch = BatchDevice::new(&dev).unwrap();
        batch.step();
        batch.step();
        // Flip lane 5's FF via LSR drive + pulse; other lanes untouched.
        let current = batch.peek_ff_lane(cb, 5).unwrap();
        {
            let mut lane = batch.lane(5);
            lane.apply(&Mutation::SetLsrDrive {
                cb,
                drive: SetReset::driving(!current),
            })
            .unwrap();
            lane.apply(&Mutation::PulseLsr { cb }).unwrap();
        }
        assert_eq!(batch.peek_ff_lane(cb, 5), Some(!current));
        assert_eq!(batch.peek_ff_lane(cb, 4), Some(current));
        assert_ne!(batch.seq_divergence() & (1 << 5), 0);
        // The lane's config is behaviourally pristine (only lsr_drive
        // changed), and the toggle circuit never reconverges a flipped
        // bit, so divergence persists.
        assert_eq!(batch.config_divergence(), 0);
        batch.step();
        assert_ne!(batch.seq_divergence() & (1 << 5), 0);
        // Ledger accounting matches the scalar choreography: one drive
        // frame write plus a double-written pulse frame.
        assert_eq!(batch.ledger(5).total_frames(), 3);
        assert_eq!(batch.ledger(4).total_frames(), 0);
    }

    #[test]
    fn lane_lut_rewrite_tracks_config_divergence() {
        let dev = toggle_device();
        let cb = CbCoord::new(2, 3);
        let mut batch = BatchDevice::new(&dev).unwrap();
        let original = {
            let mut lane = batch.lane(9);
            let t = lane.readback_lut_table(cb).unwrap();
            lane.apply(&Mutation::SetLutTable { cb, table: !t })
                .unwrap();
            t
        };
        assert_eq!(batch.config_divergence(), 1 << 9);
        // Lane 9's LUT now passes the FF value through unchanged, so its
        // FF stops toggling while the others continue. (After an even
        // number of steps both are back at zero — the frozen lane
        // transiently reconverges — so observe after an odd step count.)
        batch.step();
        assert_ne!(batch.seq_divergence() & (1 << 9), 0);
        batch.step();
        assert_eq!(batch.seq_divergence() & (1 << 9), 0);
        {
            let mut lane = batch.lane(9);
            lane.apply(&Mutation::SetLutTable {
                cb,
                table: original,
            })
            .unwrap();
        }
        assert_eq!(batch.config_divergence(), 0);
    }

    #[test]
    fn routing_mutations_are_rejected_per_lane() {
        let dev = toggle_device();
        let mut batch = BatchDevice::new(&dev).unwrap();
        let err = batch.lane(1).apply(&Mutation::SetWireFanout {
            wire: crate::coords::WireId::from_index(0),
            extra: 3,
        });
        assert_eq!(err, Err(FpgaError::LaneUnsupported("routing mutation")));
    }
}
