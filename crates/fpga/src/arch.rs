//! Architecture parameters of the generic FPGA.

/// Geometry, configuration-frame layout and timing of a device family
/// member.
///
/// The defaults in [`ArchParams::virtex1000_like`] model the Virtex 1000
/// used by the paper's prototype: 24 576 configurable blocks, column-major
/// configuration frames, and per-element delays in the ranges the paper
/// quotes (a Virtex LUT contributes 0.29–0.8 ns, an extra fan-out load
/// 0.001–0.018 ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchParams {
    /// Configurable-block rows.
    pub rows: u16,
    /// Configurable-block columns.
    pub cols: u16,
    /// Configuration frames per CB column (Virtex: 48).
    pub frames_per_col: u16,
    /// Bytes per configuration frame.
    pub frame_bytes: u32,
    /// Number of embedded memory blocks available.
    pub bram_blocks: u16,
    /// Capacity of one memory block in bits.
    pub bram_bits: u32,
    /// Configuration frames per memory block.
    pub frames_per_bram: u16,
    /// System clock period in nanoseconds (workload execution speed).
    pub clock_period_ns: f64,
    /// Propagation delay through a LUT in nanoseconds.
    pub lut_delay_ns: f64,
    /// Base delay of a routed wire in nanoseconds.
    pub wire_base_ns: f64,
    /// Delay added per routing segment in nanoseconds.
    pub per_segment_ns: f64,
    /// Delay added per pass-transistor load (fan-out) in nanoseconds.
    pub per_fanout_ns: f64,
    /// Asynchronous read delay of a memory block in nanoseconds.
    pub bram_read_ns: f64,
    /// Flip-flop setup time in nanoseconds.
    pub ff_setup_ns: f64,
    /// Input-dependent spread of combinational arrival times in
    /// nanoseconds: a path whose *worst-case* arrival exceeds the usable
    /// period by `o` nanoseconds actually misses the capture edge on a
    /// given cycle with probability `min(1, o / arrival_spread_ns)`,
    /// because the exercised path depends on the cycle's data.
    pub arrival_spread_ns: f64,
}

impl ArchParams {
    /// Parameters modelled on the Xilinx Virtex 1000 of the paper's
    /// prototype (64×96 CLBs with four logic elements each → a 128×192 grid
    /// of configurable blocks; 24 576 LUTs and FFs).
    pub fn virtex1000_like() -> Self {
        ArchParams {
            rows: 128,
            cols: 192,
            frames_per_col: 48,
            frame_bytes: 288,
            bram_blocks: 32,
            bram_bits: 4096,
            frames_per_bram: 64,
            clock_period_ns: 80.0,
            lut_delay_ns: 0.5,
            wire_base_ns: 0.35,
            per_segment_ns: 0.05,
            per_fanout_ns: 0.010,
            bram_read_ns: 1.6,
            ff_setup_ns: 0.2,
            arrival_spread_ns: 14.0,
        }
    }

    /// A small device for unit tests and examples (16×16 CBs).
    pub fn small() -> Self {
        ArchParams {
            rows: 16,
            cols: 16,
            frames_per_col: 8,
            frame_bytes: 36,
            bram_blocks: 4,
            bram_bits: 4096,
            frames_per_bram: 8,
            ..Self::virtex1000_like()
        }
    }

    /// Total number of configurable blocks.
    pub fn cb_count(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Total number of configuration frames (CB columns plus memory
    /// blocks); a full-device configuration download transfers all of them.
    pub fn total_frames(&self) -> u32 {
        self.cols as u32 * self.frames_per_col as u32
            + self.bram_blocks as u32 * self.frames_per_bram as u32
    }

    /// Size of a full configuration file in bytes.
    pub fn full_config_bytes(&self) -> u64 {
        self.total_frames() as u64 * self.frame_bytes as u64
    }

    /// Timing slack available for combinational paths, in nanoseconds.
    pub fn usable_period_ns(&self) -> f64 {
        self.clock_period_ns - self.ff_setup_ns
    }
}

impl Default for ArchParams {
    fn default() -> Self {
        Self::virtex1000_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex1000_geometry_matches_paper() {
        let a = ArchParams::virtex1000_like();
        // The paper: 24576 FFs and 24576 LUTs available on the Virtex 1000.
        assert_eq!(a.cb_count(), 24_576);
    }

    #[test]
    fn full_config_is_megabytes() {
        let a = ArchParams::virtex1000_like();
        assert!(a.full_config_bytes() > 1_000_000);
    }
}
