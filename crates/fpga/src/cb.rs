//! Configurable-block configuration.

use crate::coords::WireId;

/// Value driven into a flip-flop when its set/reset line fires.
///
/// This models the `CLRMux` / `PRMux` pair of the generic CB: selecting
/// `Reset` routes the set/reset pulse to the clear input (FF becomes 0),
/// selecting `Set` routes it to the preset input (FF becomes 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetReset {
    /// Clear the flip-flop to 0.
    #[default]
    Reset,
    /// Preset the flip-flop to 1.
    Set,
}

impl SetReset {
    /// The value the flip-flop takes when the line fires.
    pub fn value(self) -> bool {
        matches!(self, SetReset::Set)
    }

    /// The selection that drives the given value.
    pub fn driving(value: bool) -> Self {
        if value {
            SetReset::Set
        } else {
            SetReset::Reset
        }
    }
}

/// Source of a flip-flop's data input (the `LUTorFFMux` of the generic CB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FfDSrc {
    /// The FF registers the output of the block's own LUT.
    #[default]
    LutOut,
    /// The FF registers a routed wire directly (LUT bypassed).
    Direct(WireId),
}

/// Configuration of one configurable block, as stored in the configuration
/// memory.
///
/// Matches the generic CB of the paper's Figure 2: a 4-input LUT, a D-type
/// flip-flop, and the multiplexers that define their interconnection and
/// set/reset behaviour. Every field corresponds to configuration-memory
/// bits and may be changed at run time through [`crate::Mutation`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbConfig {
    /// True if the LUT implements logic.
    pub lut_used: bool,
    /// LUT truth table (LSB-first, 16 entries).
    pub lut_table: u16,
    /// Wires feeding the LUT's input pins.
    pub lut_pins: [Option<WireId>; 4],
    /// True if the flip-flop stores state.
    pub ff_used: bool,
    /// Power-on value of the flip-flop.
    pub ff_init: bool,
    /// Data source of the flip-flop.
    pub ff_d_src: FfDSrc,
    /// `InvertFFinMux`: invert the FF data input. Pulse faults on the CB
    /// input path are emulated by toggling this bit (paper §4.2, Fig. 6).
    pub invert_ff_in: bool,
    /// `InvertLSRMux`: inverting this bit produces a pulse on the local
    /// set/reset line, which is how asynchronous bit-flips are injected
    /// into a single FF (paper §4.1).
    pub invert_lsr: bool,
    /// `CLRMux`/`PRMux` selection: value driven by LSR *and* GSR pulses.
    pub lsr_drive: SetReset,
}

impl Default for CbConfig {
    fn default() -> Self {
        CbConfig {
            lut_used: false,
            lut_table: 0,
            lut_pins: [None; 4],
            ff_used: false,
            ff_init: false,
            ff_d_src: FfDSrc::LutOut,
            invert_ff_in: false,
            invert_lsr: false,
            lsr_drive: SetReset::Reset,
        }
    }
}

impl CbConfig {
    /// True if neither the LUT nor the FF is in use.
    pub fn is_unused(&self) -> bool {
        !self.lut_used && !self.ff_used
    }

    /// Evaluates the LUT for the given pin values.
    pub fn eval_lut(&self, pins: [bool; 4]) -> bool {
        let mut idx = 0usize;
        for (bit, v) in pins.iter().enumerate() {
            if *v {
                idx |= 1 << bit;
            }
        }
        (self.lut_table >> idx) & 1 == 1
    }
}
