//! Runtime-state checkpoints and state hashing.
//!
//! A fault-injection campaign replays the same fault-free prefix of the
//! workload thousands of times. The controller can instead snapshot the
//! device's runtime state during the golden run ([`Device::save_state`])
//! and transplant it onto a worker's device just before the injection
//! cycle ([`Device::restore_state`]). Both operations are host-side and
//! cost no configuration traffic — the emulated FPGA still "executes"
//! the full run, so modelled emulation time is unchanged.
//!
//! [`Device::state_hash`] complements the checkpoints: a cheap digest of
//! everything that determines the device's future evolution (sequential
//! state plus the behaviour-affecting part of the configuration). If a
//! faulted device's hash equals the golden run's hash at the same cycle,
//! every subsequent cycle is identical, so the experiment can stop early.
//!
//! [`Device::save_state`]: crate::Device::save_state
//! [`Device::restore_state`]: crate::Device::restore_state
//! [`Device::state_hash`]: crate::Device::state_hash

use crate::bitstream::Bitstream;

/// A point-in-time snapshot of a [`Device`](crate::Device)'s runtime
/// state: cycle counter, wire and LUT values, flip-flop state (including
/// the previous-D shadow used for setup-violation modelling), pending
/// BRAM write-port captures, and all block-RAM contents.
///
/// Snapshots capture *state*, not *configuration*: restoring one onto a
/// device only makes sense when the device's configuration memory equals
/// the configuration it was taken under (in practice: right after
/// [`reset`](crate::Device::reset), before any fault is injected).
#[derive(Debug, Clone)]
pub struct DeviceState {
    pub(crate) cycle: u64,
    pub(crate) wire_values: Vec<bool>,
    pub(crate) lut_values: Vec<bool>,
    pub(crate) ff_state: Vec<bool>,
    pub(crate) ff_prev_d: Vec<bool>,
    pub(crate) bram_prev_write: Vec<(bool, usize, u64)>,
    pub(crate) bram_contents: Vec<Vec<u64>>,
    pub(crate) bram_hash: u64,
}

impl DeviceState {
    /// The cycle counter at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// Finalising mix (splitmix64), used to turn accumulated words into
/// well-distributed digests.
#[inline]
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of one (kind, index, value) configuration cell, XOR-combinable:
/// the device maintains its configuration digests incrementally by
/// XOR-ing out the old cell hash and XOR-ing in the new one.
#[inline]
pub(crate) fn mix(tag: u64, index: u64, value: u64) -> u64 {
    splitmix(
        tag.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ index.rotate_left(17)
            ^ value.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    )
}

pub(crate) const TAG_LUT_TABLE: u64 = 1;
pub(crate) const TAG_INVERT_FF_IN: u64 = 2;
pub(crate) const TAG_WIRE_FANOUT: u64 = 3;
pub(crate) const TAG_WIRE_DETOUR: u64 = 4;
pub(crate) const TAG_BRAM_WORD: u64 = 5;

/// Digest of the behaviour-affecting configuration cells: LUT truth
/// tables, `InvertFFinMux` selections, and wire fan-out/detour fault
/// state.
///
/// Deliberately excluded: `lsr_drive` and `ff_init` (they only matter
/// while an LSR/GSR pulse or a reset is in flight, not for free-running
/// evolution — bit-flip strategies leave `lsr_drive` reprogrammed after
/// removal and must still converge), `invert_lsr` (pulse framing only),
/// and BRAM contents (tracked separately as *state*, see
/// [`bram_hash`]).
pub(crate) fn behaviour_hash(bits: &Bitstream) -> u64 {
    let mut h = 0u64;
    for (i, cb) in bits.cbs().iter().enumerate() {
        h ^= mix(TAG_LUT_TABLE, i as u64, cb.lut_table as u64);
        h ^= mix(TAG_INVERT_FF_IN, i as u64, cb.invert_ff_in as u64);
    }
    for (i, w) in bits.wires().iter().enumerate() {
        h ^= mix(TAG_WIRE_FANOUT, i as u64, w.extra_fanout as u64);
        h ^= mix(TAG_WIRE_DETOUR, i as u64, w.detour_luts as u64);
    }
    h
}

/// Digest of all block-RAM contents, XOR-combinable per word so the
/// device can update it in O(1) on each write.
pub(crate) fn bram_hash(bits: &Bitstream) -> u64 {
    let mut h = 0u64;
    for (b, cfg) in bits.brams().iter().enumerate() {
        for (addr, &word) in cfg.contents.iter().enumerate() {
            h ^= mix(TAG_BRAM_WORD, ((b as u64) << 32) | addr as u64, word);
        }
    }
    h
}
