//! Coordinates of FPGA resources.

use std::fmt;

/// Position of a configurable block on the device grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CbCoord {
    /// Column (0-based, left to right).
    pub col: u16,
    /// Row (0-based, top to bottom).
    pub row: u16,
}

impl CbCoord {
    /// Creates a coordinate.
    pub fn new(col: u16, row: u16) -> Self {
        CbCoord { col, row }
    }

    /// Flat index into a column-major CB array with `rows` rows per column.
    pub fn flat_index(self, rows: u16) -> usize {
        self.col as usize * rows as usize + self.row as usize
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    pub fn from_flat_index(index: usize, rows: u16) -> Self {
        CbCoord {
            col: (index / rows as usize) as u16,
            row: (index % rows as usize) as u16,
        }
    }

    /// Manhattan distance to another CB, in grid units.
    pub fn manhattan(self, other: CbCoord) -> u32 {
        self.col.abs_diff(other.col) as u32 + self.row.abs_diff(other.row) as u32
    }
}

impl fmt::Display for CbCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CB({},{})", self.col, self.row)
    }
}

/// Identifier of a routed wire (one per logical net after implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireId(pub(crate) u32);

impl WireId {
    /// Raw dense index (see [`crate::Bitstream::wires`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `WireId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        WireId(index as u32)
    }
}

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of an embedded memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BramId(pub(crate) u16);

impl BramId {
    /// Raw dense index (see [`crate::Bitstream::brams`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `BramId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        BramId(index as u16)
    }
}

impl fmt::Display for BramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BRAM{}", self.0)
    }
}
