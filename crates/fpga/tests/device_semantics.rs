//! Device-level semantics of the reconfiguration mechanisms.

use fades_fpga::{
    ArchParams, Bitstream, CbCoord, Device, FfDSrc, Mutation, SetReset, TransferKind,
};

/// A 3-bit shift register fed by an input port, observed on `q`.
fn shift_register() -> (Bitstream, [CbCoord; 3]) {
    let mut bs = Bitstream::new(ArchParams::small());
    let din = bs.add_input("din", 1);
    let cbs = [CbCoord::new(0, 0), CbCoord::new(1, 5), CbCoord::new(4, 2)];
    let q0 = bs.add_ff(cbs[0], false, FfDSrc::Direct(din[0])).unwrap();
    let q1 = bs.add_ff(cbs[1], false, FfDSrc::Direct(q0)).unwrap();
    let q2 = bs.add_ff(cbs[2], false, FfDSrc::Direct(q1)).unwrap();
    bs.add_output("q", &[q0, q1, q2]).unwrap();
    (bs, cbs)
}

#[test]
fn gsr_pulse_applies_every_configured_drive() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.run(3);
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap(), 0b111);
    // Configure drives 1,0,1 and pulse GSR: all FFs take their drive.
    dev.bulk_set_lsr_drives(&[
        (cbs[0], SetReset::Set),
        (cbs[1], SetReset::Reset),
        (cbs[2], SetReset::Set),
    ])
    .unwrap();
    dev.apply(&Mutation::PulseGsr).unwrap();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap(), 0b101);
    assert_eq!(dev.ledger().count_of(TransferKind::GlobalPulse), 1);
}

#[test]
fn bulk_drive_write_counts_one_operation() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.bulk_set_lsr_drives(&[
        (cbs[0], SetReset::Set),
        (cbs[1], SetReset::Set),
        (cbs[2], SetReset::Set),
    ])
    .unwrap();
    assert_eq!(dev.ledger().op_count(), 1, "one bulk write");
    assert!(dev.ledger().total_frames() >= 3, "one frame per column");
}

#[test]
fn invert_ffin_mux_inverts_capture() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: true,
    })
    .unwrap();
    dev.step();
    dev.settle();
    // din=1 but the first FF captured the inverted value.
    assert_eq!(dev.output_u64("q").unwrap() & 1, 0);
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: false,
    })
    .unwrap();
    dev.step();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap() & 1, 1);
}

#[test]
fn hold_lsr_pins_the_ff_against_data() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.apply(&Mutation::SetLsrDrive {
        cb: cbs[0],
        drive: SetReset::Reset,
    })
    .unwrap();
    dev.apply(&Mutation::PulseLsr { cb: cbs[0] }).unwrap();
    for _ in 0..3 {
        dev.step();
        dev.hold_lsr(cbs[0]).unwrap();
        dev.settle();
        assert_eq!(dev.output_u64("q").unwrap() & 1, 0, "held at reset");
    }
    // Released: the data path takes over again.
    dev.step();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap() & 1, 1);
}

#[test]
fn readbacks_are_charged_and_accurate() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.run(2);
    dev.clear_ledger();
    assert!(dev.readback_ff(cbs[0]).unwrap());
    assert!(dev.readback_ff(cbs[1]).unwrap());
    assert!(!dev.readback_ff(cbs[2]).unwrap());
    assert_eq!(dev.ledger().count_of(TransferKind::Readback), 3);
    let all = dev.readback_all_ffs();
    assert_eq!(all.len(), 3);
    // Whole-device capture: one op, one frame per used column.
    assert_eq!(dev.ledger().count_of(TransferKind::Readback), 4);
}

#[test]
fn rerandomise_ff_is_one_frame_write() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.apply(&Mutation::ReRandomiseFf {
        cb: cbs[1],
        drive: SetReset::Set,
    })
    .unwrap();
    assert_eq!(dev.ledger().op_count(), 1);
    assert_eq!(dev.ledger().total_frames(), 1);
    assert_eq!(dev.peek_ff(cbs[1]), Some(true));
}

#[test]
fn full_download_charge_matches_architecture() {
    let (bs, _) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.charge_full_download();
    assert_eq!(dev.ledger().total_bytes(), dev.arch().full_config_bytes());
}
