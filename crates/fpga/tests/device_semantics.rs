//! Device-level semantics of the reconfiguration mechanisms.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_fpga::{
    ArchParams, Bitstream, CbCoord, Device, FfDSrc, Mutation, SetReset, TransferKind,
};

/// A 3-bit shift register fed by an input port, observed on `q`.
fn shift_register() -> (Bitstream, [CbCoord; 3]) {
    let mut bs = Bitstream::new(ArchParams::small());
    let din = bs.add_input("din", 1);
    let cbs = [CbCoord::new(0, 0), CbCoord::new(1, 5), CbCoord::new(4, 2)];
    let q0 = bs.add_ff(cbs[0], false, FfDSrc::Direct(din[0])).unwrap();
    let q1 = bs.add_ff(cbs[1], false, FfDSrc::Direct(q0)).unwrap();
    let q2 = bs.add_ff(cbs[2], false, FfDSrc::Direct(q1)).unwrap();
    bs.add_output("q", &[q0, q1, q2]).unwrap();
    (bs, cbs)
}

#[test]
fn gsr_pulse_applies_every_configured_drive() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.run(3);
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap(), 0b111);
    // Configure drives 1,0,1 and pulse GSR: all FFs take their drive.
    dev.bulk_set_lsr_drives(&[
        (cbs[0], SetReset::Set),
        (cbs[1], SetReset::Reset),
        (cbs[2], SetReset::Set),
    ])
    .unwrap();
    dev.apply(&Mutation::PulseGsr).unwrap();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap(), 0b101);
    assert_eq!(dev.ledger().count_of(TransferKind::GlobalPulse), 1);
}

#[test]
fn bulk_drive_write_counts_one_operation() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.bulk_set_lsr_drives(&[
        (cbs[0], SetReset::Set),
        (cbs[1], SetReset::Set),
        (cbs[2], SetReset::Set),
    ])
    .unwrap();
    assert_eq!(dev.ledger().op_count(), 1, "one bulk write");
    assert!(dev.ledger().total_frames() >= 3, "one frame per column");
}

#[test]
fn invert_ffin_mux_inverts_capture() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: true,
    })
    .unwrap();
    dev.step();
    dev.settle();
    // din=1 but the first FF captured the inverted value.
    assert_eq!(dev.output_u64("q").unwrap() & 1, 0);
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: false,
    })
    .unwrap();
    dev.step();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap() & 1, 1);
}

#[test]
fn hold_lsr_pins_the_ff_against_data() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.apply(&Mutation::SetLsrDrive {
        cb: cbs[0],
        drive: SetReset::Reset,
    })
    .unwrap();
    dev.apply(&Mutation::PulseLsr { cb: cbs[0] }).unwrap();
    for _ in 0..3 {
        dev.step();
        dev.hold_lsr(cbs[0]).unwrap();
        dev.settle();
        assert_eq!(dev.output_u64("q").unwrap() & 1, 0, "held at reset");
    }
    // Released: the data path takes over again.
    dev.step();
    dev.settle();
    assert_eq!(dev.output_u64("q").unwrap() & 1, 1);
}

#[test]
fn readbacks_are_charged_and_accurate() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.run(2);
    dev.clear_ledger();
    assert!(dev.readback_ff(cbs[0]).unwrap());
    assert!(dev.readback_ff(cbs[1]).unwrap());
    assert!(!dev.readback_ff(cbs[2]).unwrap());
    assert_eq!(dev.ledger().count_of(TransferKind::Readback), 3);
    let all = dev.readback_all_ffs();
    assert_eq!(all.len(), 3);
    // Whole-device capture: one op, one frame per used column.
    assert_eq!(dev.ledger().count_of(TransferKind::Readback), 4);
}

#[test]
fn rerandomise_ff_is_one_frame_write() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.apply(&Mutation::ReRandomiseFf {
        cb: cbs[1],
        drive: SetReset::Set,
    })
    .unwrap();
    assert_eq!(dev.ledger().op_count(), 1);
    assert_eq!(dev.ledger().total_frames(), 1);
    assert_eq!(dev.peek_ff(cbs[1]), Some(true));
}

#[test]
fn full_download_charge_matches_architecture() {
    let (bs, _) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.clear_ledger();
    dev.charge_full_download();
    assert_eq!(dev.ledger().total_bytes(), dev.arch().full_config_bytes());
}

/// A writable RAM whose write port is driven from input ports, so clock
/// edges mutate memory contents.
fn ram_device() -> Device {
    let mut bs = Bitstream::new(ArchParams::small());
    let addr = bs.add_input("addr", 2);
    let din = bs.add_input("din", 4);
    let we = bs.add_input("we", 1);
    let dout = bs
        .add_bram("m", &addr, &din, Some(we[0]), 4, &[1, 2, 3, 4])
        .unwrap();
    bs.add_output("dout", &dout).unwrap();
    Device::configure(bs).unwrap()
}

#[test]
fn save_restore_roundtrips_state_and_hash() {
    let (bs, _) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    dev.set_input("din", &[true]).unwrap();
    dev.run(2);
    let snap = dev.save_state();
    assert_eq!(snap.cycle(), 2);
    let hash_at_snap = dev.state_hash();
    // Run ahead, recording the hash trajectory and outputs.
    let mut hashes = Vec::new();
    let mut outs = Vec::new();
    for _ in 0..4 {
        dev.settle();
        outs.push(dev.output_u64("q").unwrap());
        dev.clock_edge();
        hashes.push(dev.state_hash());
    }
    // Restore and replay: identical trajectory.
    dev.restore_state(&snap);
    assert_eq!(dev.cycle(), 2);
    assert_eq!(dev.state_hash(), hash_at_snap);
    for i in 0..4 {
        dev.settle();
        assert_eq!(dev.output_u64("q").unwrap(), outs[i]);
        dev.clock_edge();
        assert_eq!(dev.state_hash(), hashes[i]);
    }
}

#[test]
fn state_hash_tracks_bram_writes_and_mutations() {
    let mut dev = ram_device();
    dev.set_input("we", &[true]).unwrap();
    dev.set_input("addr", &[true, false]).unwrap();
    dev.set_input("din", &[true, true, false, false]).unwrap();
    let mut idle = ram_device();
    idle.set_input("we", &[false]).unwrap();
    idle.set_input("addr", &[true, false]).unwrap();
    idle.set_input("din", &[true, true, false, false]).unwrap();
    dev.step();
    idle.step();
    let after_write = dev.state_hash();
    assert_ne!(
        after_write,
        idle.state_hash(),
        "a memory write changes the hash relative to an idle device at the same cycle"
    );

    // A bit mutation and its exact inverse cancel out in the digest.
    let flip = Mutation::SetBramBit {
        bram: fades_fpga::BramId::from_index(0),
        addr: 3,
        bit: 0,
        value: true,
    };
    let unflip = Mutation::SetBramBit {
        bram: fades_fpga::BramId::from_index(0),
        addr: 3,
        bit: 0,
        value: false,
    };
    dev.apply(&flip).unwrap();
    assert_ne!(dev.state_hash(), after_write);
    dev.apply(&unflip).unwrap();
    assert_eq!(dev.state_hash(), after_write);
}

#[test]
fn behavioural_config_hash_ignores_lsr_drive() {
    let (bs, cbs) = shift_register();
    let mut dev = Device::configure(bs).unwrap();
    assert!(dev.config_behaviourally_pristine());
    let h = dev.state_hash();
    // Reprogramming the set/reset mux (what a removed bit-flip fault
    // leaves behind) affects neither digest.
    dev.apply(&Mutation::SetLsrDrive {
        cb: cbs[0],
        drive: SetReset::Set,
    })
    .unwrap();
    assert!(dev.config_behaviourally_pristine());
    assert_eq!(dev.state_hash(), h);
    // A LUT-input inverter is behavioural: both digests move, and revert.
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: true,
    })
    .unwrap();
    assert!(!dev.config_behaviourally_pristine());
    assert_ne!(dev.state_hash(), h);
    dev.apply(&Mutation::SetInvertFfIn {
        cb: cbs[0],
        invert: false,
    })
    .unwrap();
    assert!(dev.config_behaviourally_pristine());
    assert_eq!(dev.state_hash(), h);
}

#[test]
fn restore_after_reset_matches_original_run() {
    // The fast-forward usage pattern: snapshot mid-run, reset (new
    // experiment), restore, and continue — memory contents written before
    // the snapshot must reappear even though reset restored the pristine
    // image.
    let mut dev = ram_device();
    dev.set_input("we", &[true]).unwrap();
    dev.set_input("addr", &[false, true]).unwrap();
    dev.set_input("din", &[false, true, true, true]).unwrap();
    dev.step();
    let snap = dev.save_state();
    dev.settle();
    let expected = dev.output_u64("dout").unwrap();
    assert_eq!(expected, 0b1110, "write landed at addr 2");
    let expected_hash = dev.state_hash();

    dev.reset();
    dev.settle();
    assert_eq!(dev.output_u64("dout").unwrap(), 1, "pristine contents back");
    dev.restore_state(&snap);
    dev.settle();
    assert_eq!(dev.output_u64("dout").unwrap(), expected);
    assert_eq!(dev.state_hash(), expected_hash);
}
