//! Property-based tests for the FPGA substrate.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_fpga::{
    ArchParams, Bitstream, CbConfig, CbCoord, Device, Mutation, WireConfig, WireDriver,
};
use proptest::prelude::*;

proptest! {
    /// A CB's LUT evaluation is exactly the configured truth table.
    #[test]
    fn cb_lut_eval_matches_table(table in any::<u16>(), pins in any::<[bool; 4]>()) {
        let cfg = CbConfig {
            lut_used: true,
            lut_table: table,
            ..CbConfig::default()
        };
        let mut idx = 0usize;
        for (i, &p) in pins.iter().enumerate() {
            if p { idx |= 1 << i; }
        }
        prop_assert_eq!(cfg.eval_lut(pins), (table >> idx) & 1 == 1);
    }

    /// Wire delay grows monotonically with injected fan-out and detours,
    /// and detours dominate fan-out per unit (paper §4.3).
    #[test]
    fn wire_delay_is_monotone(
        segments in 0u32..64,
        pts in 0u32..64,
        fanout in 0u32..64,
        detour in 0u32..16,
    ) {
        let arch = ArchParams::virtex1000_like();
        let mut w = WireConfig::new(WireDriver::CbLut(CbCoord::new(0, 0)));
        w.segments = segments;
        w.pass_transistors = pts;
        let base = w.delay_ns(&arch);
        w.extra_fanout = fanout;
        let with_fanout = w.delay_ns(&arch);
        w.detour_luts = detour;
        let with_both = w.delay_ns(&arch);
        prop_assert!(with_fanout >= base);
        prop_assert!(with_both >= with_fanout);
        if detour > 0 {
            // One detour LUT adds more than one fan-out load.
            prop_assert!(with_both - with_fanout > detour as f64 * arch.per_fanout_ns);
        }
    }

    /// Coordinate flattening round-trips for every grid position.
    #[test]
    fn coords_roundtrip(col in 0u16..192, row in 0u16..128) {
        let arch = ArchParams::virtex1000_like();
        let cb = CbCoord::new(col, row);
        let flat = cb.flat_index(arch.rows);
        prop_assert_eq!(CbCoord::from_flat_index(flat, arch.rows), cb);
    }

    /// Writing a LUT table through a mutation is exactly reflected in both
    /// the configuration memory and the readback path, and the ledger
    /// grows by one write plus one readback.
    #[test]
    fn lut_mutation_roundtrips(initial in any::<u16>(), new in any::<u16>()) {
        let mut bs = Bitstream::new(ArchParams::small());
        let a = bs.add_input("a", 1);
        let cb = CbCoord::new(3, 3);
        let out = bs
            .add_lut(cb, initial, [Some(a[0]), None, None, None])
            .unwrap();
        bs.add_output("y", &[out]).unwrap();
        let mut dev = Device::configure(bs).unwrap();
        dev.clear_ledger();
        dev.apply(&Mutation::SetLutTable { cb, table: new }).unwrap();
        prop_assert_eq!(dev.readback_lut_table(cb).unwrap(), new);
        prop_assert_eq!(dev.ledger().op_count(), 2);
    }

    /// Memory bit mutations flip exactly the addressed bit.
    #[test]
    fn bram_bit_mutation_is_precise(word in any::<u8>(), bit in 0u32..8) {
        let mut bs = Bitstream::new(ArchParams::small());
        let addr = bs.add_input("addr", 4);
        let dout = bs
            .add_bram("m", &addr, &[], None, 8, &[word as u64])
            .unwrap();
        bs.add_output("dout", &dout).unwrap();
        let mut dev = Device::configure(bs).unwrap();
        let bram = fades_fpga::BramId::from_index(0);
        let value = (word >> bit) & 1 == 0;
        dev.apply(&Mutation::SetBramBit { bram, addr: 0, bit, value }).unwrap();
        dev.set_input("addr", &[false; 4]).unwrap();
        dev.settle();
        prop_assert_eq!(dev.output_u64("dout").unwrap(), (word ^ (1 << bit)) as u64);
    }
}

#[test]
fn reset_restores_pristine_configuration_after_any_mutation() {
    let mut bs = Bitstream::new(ArchParams::small());
    let a = bs.add_input("a", 1);
    let cb = CbCoord::new(1, 1);
    let out = bs
        .add_lut(cb, 0x5555, [Some(a[0]), None, None, None])
        .unwrap();
    bs.add_output("y", &[out]).unwrap();
    let mut dev = Device::configure(bs).unwrap();
    dev.apply(&Mutation::SetLutTable { cb, table: 0x0000 })
        .unwrap();
    dev.reset();
    assert_eq!(dev.bitstream().cb(cb).unwrap().lut_table, 0x5555);
}
