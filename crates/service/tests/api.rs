//! The HTTP/JSON API end to end against a mock backend: submit over
//! POST, observe status, fetch merged results, cancel, shut down.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fades_core::Outcome;
use fades_dispatch::{CancelToken, Journal, JournalHeader, JournalRecord};
use fades_service::{api, CampaignBackend, JobSpec, Service, ServiceConfig, ShardRun};
use fades_telemetry::json::parse;
use fades_telemetry::{http_get, http_post};

struct InstantBackend;

impl CampaignBackend for InstantBackend {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        (spec.load == "mock")
            .then_some(())
            .ok_or_else(|| format!("unknown fault load `{}`", spec.load))
    }

    fn run_shard(
        &self,
        spec: &JobSpec,
        shard: u32,
        journal_path: &Path,
        _cancel: &CancelToken,
    ) -> Result<ShardRun, String> {
        let header = JournalHeader {
            campaign: "mock".into(),
            load: spec.load.clone(),
            n_total: spec.faults,
            seed: spec.seed,
            shard,
            of: spec.shards,
            run_cycles: 1,
        };
        let mut journal = Journal::create(journal_path, &header).map_err(|e| e.to_string())?;
        let mine: Vec<u64> = (0..spec.faults)
            .filter(|i| i % spec.shards as u64 == shard as u64)
            .collect();
        for index in &mine {
            journal
                .append(&JournalRecord::Completed {
                    index: *index,
                    outcome: Outcome::Latent,
                    modelled_seconds: (*index as f64) * 0.25,
                    attempts: 1,
                })
                .map_err(|e| e.to_string())?;
        }
        journal
            .append(&JournalRecord::ShardComplete {
                completed: mine.len() as u64,
                quarantined: 0,
            })
            .map_err(|e| e.to_string())?;
        Ok(ShardRun { cancelled: false })
    }
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fades-api-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn http_submit_status_results_cancel_shutdown() {
    let dir = scratch("full");
    let service = Service::start(
        &ServiceConfig {
            queue_dir: dir.clone(),
            workers: 2,
            max_jobs: 2,
        },
        Box::new(InstantBackend),
    )
    .unwrap();
    let server = api::start_http("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.addr().to_string();

    // Bad submissions are 400s.
    let (code, _) = http_post(&addr, "/campaigns", "not json").unwrap();
    assert_eq!(code, 400);
    let (code, body) = http_post(&addr, "/campaigns", r#"{"load":"no-such"}"#).unwrap();
    assert_eq!(code, 400, "{body}");

    // A good submission returns the allocated job document.
    let (code, body) = http_post(
        &addr,
        "/campaigns",
        r#"{"load":"mock","faults":12,"seed":3,"shards":3,"label":"smoke"}"#,
    )
    .unwrap();
    assert_eq!(code, 200, "{body}");
    let job = parse(body.trim()).unwrap();
    let id = job.get("id").and_then(|v| v.as_str()).unwrap().to_string();
    assert_eq!(job.get("label").and_then(|v| v.as_str()), Some("smoke"));

    wait_until("job completed over HTTP", || {
        let (code, body) = http_get(&addr, &format!("/campaigns/{id}")).unwrap();
        assert_eq!(code, 200, "{body}");
        let v = parse(body.trim()).unwrap();
        v.get("job")
            .and_then(|j| j.get("state"))
            .and_then(|s| s.as_str())
            == Some("completed")
    });

    // Detail embeds campaign_status progress once journals exist.
    let (_, body) = http_get(&addr, &format!("/campaigns/{id}")).unwrap();
    let detail = parse(body.trim()).unwrap();
    let progress = detail.get("progress").expect("progress embedded");
    assert_eq!(
        progress
            .get("expected")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(12),
        "{body}"
    );

    // Results: complete merge with exact stats bits.
    let (code, body) = http_get(&addr, &format!("/campaigns/{id}/results")).unwrap();
    assert_eq!(code, 200, "{body}");
    let results = parse(body.trim()).unwrap();
    assert_eq!(results.get("complete").and_then(|v| v.as_str()), None); // bool, not str
    assert_eq!(
        results
            .get("completed")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(12)
    );
    let stats = results.get("stats").unwrap();
    assert_eq!(
        stats
            .get("latents")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(12)
    );
    let expected: f64 = (0..12u64).map(|i| i as f64 * 0.25).sum();
    assert_eq!(
        stats.get("emulation_seconds_bits").and_then(|v| v.as_str()),
        Some(format!("{:016x}", expected.to_bits()).as_str()),
        "merged bits must equal in-order fold"
    );

    // Listing shows the job; unknown ids are 404.
    let (code, body) = http_get(&addr, "/campaigns").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains(&id));
    let (code, _) = http_get(&addr, "/campaigns/job-999999").unwrap();
    assert_eq!(code, 404);

    // Cancelling a terminal job is a 409.
    let (code, _) = http_post(&addr, &format!("/campaigns/{id}/cancel"), "").unwrap();
    assert_eq!(code, 409);

    // /metrics carries the service gauges.
    let (code, body) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("fades_service_queue_depth"), "{body}");
    assert!(body.contains("fades_service_jobs_running"));
    assert!(body.contains("fades_service_jobs_completed"));

    // Shutdown: wakes the waiter, further submits are 503.
    let (code, _) = http_post(&addr, "/shutdown", "").unwrap();
    assert_eq!(code, 200);
    service.wait_for_shutdown();
    let (code, _) = http_post(&addr, "/campaigns", r#"{"load":"mock"}"#).unwrap();
    assert_eq!(code, 503);

    service.join();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
