//! Scheduler, queue and durability behaviour of the campaign service,
//! exercised through a mock backend that writes *real* dispatch
//! journals (so restart recovery sees exactly what production sees).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fades_core::Outcome;
use fades_dispatch::{CancelToken, Journal, JournalHeader, JournalRecord};
use fades_service::{
    CampaignBackend, JobSpec, JobState, Service, ServiceConfig, ShardRun, SubmitError,
};

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fades-service-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, workers: usize, max_jobs: usize) -> ServiceConfig {
    ServiceConfig {
        queue_dir: dir.to_path_buf(),
        workers,
        max_jobs,
    }
}

/// Blocks until `pred` holds (200 ms granularity is far below the 30 s
/// ceiling; failures panic with `what`).
fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A shared open/closed latch the mock backend parks on.
#[derive(Clone, Default)]
struct Gate(Arc<(Mutex<bool>, Condvar)>);

impl Gate {
    fn open(&self) {
        let (lock, cv) = &*self.0;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    fn close(&self) {
        let (lock, _) = &*self.0;
        *lock.lock().unwrap() = false;
    }

    /// Waits until the gate opens or `cancel` fires; true = cancelled.
    fn wait_or_cancelled(&self, cancel: &CancelToken) -> bool {
        let (lock, cv) = &*self.0;
        let mut open = lock.lock().unwrap();
        loop {
            if cancel.is_cancelled() {
                return true;
            }
            if *open {
                return false;
            }
            let (guard, _) = cv.wait_timeout(open, Duration::from_millis(10)).unwrap();
            open = guard;
        }
    }
}

/// Mock backend: journals every experiment of its stride immediately
/// (Silent outcomes, deterministic modelled seconds), optionally
/// parking on a gate first. Only the load name `"mock"` validates.
struct MockBackend {
    gate: Option<Gate>,
    /// Shard runs currently inside `run_shard`.
    running: Arc<AtomicUsize>,
    /// High-water mark of `running`.
    peak: Arc<AtomicUsize>,
    /// Job ids in the order shards started.
    order: Arc<Mutex<Vec<String>>>,
}

impl MockBackend {
    fn new(gate: Option<Gate>) -> MockBackend {
        MockBackend {
            gate,
            running: Arc::new(AtomicUsize::new(0)),
            peak: Arc::new(AtomicUsize::new(0)),
            order: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl CampaignBackend for MockBackend {
    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        if spec.load == "mock" {
            Ok(())
        } else {
            Err(format!("unknown fault load `{}`", spec.load))
        }
    }

    fn run_shard(
        &self,
        spec: &JobSpec,
        shard: u32,
        journal: &Path,
        cancel: &CancelToken,
    ) -> Result<ShardRun, String> {
        let n = self.running.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(n, Ordering::SeqCst);
        self.order.lock().unwrap().push(spec.id.clone());
        let run = self.run_inner(spec, shard, journal, cancel);
        self.running.fetch_sub(1, Ordering::SeqCst);
        run
    }
}

impl MockBackend {
    fn run_inner(
        &self,
        spec: &JobSpec,
        shard: u32,
        journal_path: &Path,
        cancel: &CancelToken,
    ) -> Result<ShardRun, String> {
        let header = JournalHeader {
            campaign: "mock".into(),
            load: spec.load.clone(),
            n_total: spec.faults,
            seed: spec.seed,
            shard,
            of: spec.shards,
            run_cycles: 1,
        };
        let (mut journal, done) = if journal_path.exists() {
            let replay = Journal::load(journal_path).map_err(|e| e.to_string())?;
            let done = replay.settled_indices();
            (
                Journal::append_to(journal_path).map_err(|e| e.to_string())?,
                done,
            )
        } else {
            (
                Journal::create(journal_path, &header).map_err(|e| e.to_string())?,
                Default::default(),
            )
        };
        if let Some(gate) = &self.gate {
            if gate.wait_or_cancelled(cancel) {
                return Ok(ShardRun { cancelled: true });
            }
        }
        let mine: Vec<u64> = (0..spec.faults)
            .filter(|i| i % spec.shards as u64 == shard as u64)
            .collect();
        let mut completed = 0;
        for index in &mine {
            if !done.contains(index) {
                journal
                    .append(&JournalRecord::Completed {
                        index: *index,
                        outcome: Outcome::Silent,
                        modelled_seconds: (*index as f64) * 0.125,
                        attempts: 1,
                    })
                    .map_err(|e| e.to_string())?;
            }
            completed += 1;
        }
        journal
            .append(&JournalRecord::ShardComplete {
                completed,
                quarantined: 0,
            })
            .map_err(|e| e.to_string())?;
        Ok(ShardRun { cancelled: false })
    }
}

fn submit_mock(service: &Service, faults: u64, shards: u32) -> JobSpec {
    service
        .submit(None, "mock", faults, 7, shards)
        .expect("submit accepted")
}

fn state_of(service: &Service, id: &str) -> JobState {
    service.job(id).expect("job exists").state
}

#[test]
fn jobs_run_fifo_to_completion_and_results_merge() {
    let dir = scratch("fifo");
    let backend = MockBackend::new(None);
    let order = Arc::clone(&backend.order);
    let service = Service::start(&config(&dir, 2, 1), Box::new(backend)).unwrap();

    let ids: Vec<String> = (0..3).map(|_| submit_mock(&service, 8, 2).id).collect();
    wait_until("all jobs completed", || {
        ids.iter()
            .all(|id| state_of(&service, id) == JobState::Completed)
    });

    // With a single job slot, shards start strictly in submission order.
    let started = order.lock().unwrap().clone();
    let mut expected = Vec::new();
    for id in &ids {
        expected.extend([id.clone(), id.clone()]);
    }
    assert_eq!(started, expected, "FIFO admission, one job at a time");

    // Journals merge to a complete campaign for each job.
    for id in &ids {
        let job = service.job(id).unwrap();
        let journals = service.journals(&job.spec);
        assert_eq!(journals.len(), 2);
        let report = fades_dispatch::merge(&journals).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.completed, 8);
    }

    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrency_cap_bounds_running_jobs() {
    let dir = scratch("cap");
    let gate = Gate::default();
    let backend = MockBackend::new(Some(gate.clone()));
    let running = Arc::clone(&backend.running);
    let peak = Arc::clone(&backend.peak);
    let service = Service::start(&config(&dir, 4, 2), Box::new(backend)).unwrap();

    let ids: Vec<String> = (0..4).map(|_| submit_mock(&service, 4, 1).id).collect();
    // Two single-shard jobs admitted, two parked in the queue.
    wait_until("two jobs running", || running.load(Ordering::SeqCst) == 2);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        peak.load(Ordering::SeqCst),
        2,
        "cap of 2 jobs must never be exceeded (4 workers available)"
    );
    assert!(ids
        .iter()
        .any(|id| state_of(&service, id) == JobState::Queued));

    gate.open();
    wait_until("all jobs completed", || {
        ids.iter()
            .all(|id| state_of(&service, id) == JobState::Completed)
    });
    assert_eq!(peak.load(Ordering::SeqCst), 2);

    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_submits_get_distinct_queued_ids() {
    let dir = scratch("parallel-submit");
    let gate = Gate::default();
    let service = Service::start(
        &config(&dir, 2, 1),
        Box::new(MockBackend::new(Some(gate.clone()))),
    )
    .unwrap();

    let mut handles = Vec::new();
    for _ in 0..8 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || submit_mock(&service, 2, 1).id));
    }
    let mut ids: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(
        ids.len(),
        8,
        "concurrent submits must allocate distinct ids"
    );
    for id in &ids {
        assert!(dir.join(id).join("spec.json").exists(), "{id} persisted");
    }

    gate.open();
    wait_until("all jobs completed", || {
        ids.iter()
            .all(|id| state_of(&service, id) == JobState::Completed)
    });
    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_loads_are_rejected_before_queueing() {
    let dir = scratch("invalid");
    let service = Service::start(&config(&dir, 1, 1), Box::new(MockBackend::new(None))).unwrap();
    match service.submit(None, "no-such-load", 4, 1, 1) {
        Err(SubmitError::Invalid(msg)) => assert!(msg.contains("no-such-load"), "{msg}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert!(service.list().is_empty(), "rejected jobs are not queued");
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "rejected jobs leave nothing on disk"
    );
    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_works_for_queued_and_running_jobs() {
    let dir = scratch("cancel");
    let gate = Gate::default();
    let service = Service::start(
        &config(&dir, 2, 1),
        Box::new(MockBackend::new(Some(gate.clone()))),
    )
    .unwrap();

    let first = submit_mock(&service, 4, 1).id;
    let second = submit_mock(&service, 4, 1).id;
    wait_until("first job running", || {
        state_of(&service, &first) == JobState::Running
    });

    // Cancelling a queued job is immediate and leaves a marker.
    service.cancel(&second).unwrap();
    assert_eq!(state_of(&service, &second), JobState::Cancelled);
    assert!(dir.join(&second).join("cancelled").exists());

    // Cancelling the running job fires its token; the parked backend
    // observes it and retires.
    service.cancel(&first).unwrap();
    wait_until("first job cancelled", || {
        state_of(&service, &first) == JobState::Cancelled
    });
    assert!(dir.join(&first).join("cancelled").exists());

    // Cancelling a terminal job is an error.
    assert!(service.cancel(&first).is_err());

    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_requeues_incomplete_jobs_and_skips_done_work() {
    let dir = scratch("restart");

    // First life: job 1 completes, job 2 is parked mid-run when the
    // service shuts down gracefully (no cancel marker!).
    let gate = Gate::default();
    let (done_id, parked_id) = {
        let backend = MockBackend::new(Some(gate.clone()));
        let service = Service::start(&config(&dir, 1, 1), Box::new(backend)).unwrap();
        let done = submit_mock(&service, 6, 1).id;
        gate.open();
        wait_until("first job completed", || {
            state_of(&service, &done) == JobState::Completed
        });

        // Park job 2 mid-run, then shut down gracefully: the backend
        // observes the cancel token and retires; no marker is written.
        gate.close();
        let parked = submit_mock(&service, 6, 2).id;
        wait_until("second job running", || {
            state_of(&service, &parked) == JobState::Running
        });
        service.request_shutdown();
        service.join();
        (done, parked)
    };

    // Second life: the incomplete job is re-queued and finishes; the
    // completed one is not re-run.
    let backend = MockBackend::new(None);
    let order = Arc::clone(&backend.order);
    let service = Service::start(&config(&dir, 2, 2), Box::new(backend)).unwrap();
    assert_eq!(state_of(&service, &done_id), JobState::Completed);
    wait_until("parked job completed after restart", || {
        state_of(&service, &parked_id) == JobState::Completed
    });
    let ran = order.lock().unwrap().clone();
    assert!(
        ran.iter().all(|id| *id == parked_id),
        "only the incomplete job is re-run after restart: {ran:?}"
    );
    let job = service.job(&parked_id).unwrap();
    let report = fades_dispatch::merge(&service.journals(&job.spec)).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.completed, 6);

    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_stops_admission_and_leaves_no_markers() {
    let dir = scratch("shutdown");
    let gate = Gate::default();
    let service = Service::start(
        &config(&dir, 1, 1),
        Box::new(MockBackend::new(Some(gate.clone()))),
    )
    .unwrap();
    let running = submit_mock(&service, 4, 1).id;
    let queued = submit_mock(&service, 4, 1).id;
    wait_until("job running", || {
        state_of(&service, &running) == JobState::Running
    });

    service.request_shutdown();
    match service.submit(None, "mock", 4, 1, 1) {
        Err(SubmitError::NotAccepting) => {}
        other => panic!("expected NotAccepting, got {other:?}"),
    }
    service.join();

    // Neither job got a cancelled/error marker: both must be re-queued
    // (and resumable) by the next start.
    for id in [&running, &queued] {
        assert!(!dir.join(id).join("cancelled").exists(), "{id}");
        assert!(!dir.join(id).join("error").exists(), "{id}");
    }

    let service = Service::start(&config(&dir, 2, 2), Box::new(MockBackend::new(None))).unwrap();
    wait_until("both jobs complete after restart", || {
        [&running, &queued]
            .iter()
            .all(|id| state_of(&service, id) == JobState::Completed)
    });
    service.join();
    let _ = std::fs::remove_dir_all(&dir);
}
