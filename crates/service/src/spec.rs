//! Job specifications and job states.
//!
//! A [`JobSpec`] is everything needed to reconstruct a campaign
//! deterministically: the named fault load, the fault count, the seed
//! and the shard fan-out. It is persisted as `spec.json` in the job's
//! queue directory the moment the job is accepted, *before* any work
//! starts, so a restarted service can rebuild the exact campaign from
//! disk alone.

use fades_telemetry::json::{self, JsonObject};

/// One accepted campaign job. The `id` doubles as the job's directory
/// name under the queue root (`job-000001/`), so specs are
/// self-locating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Job identifier, `job-{seq:06}`; also the queue directory name.
    pub id: String,
    /// Human label for listings (defaults to the load name).
    pub label: String,
    /// Named fault load (validated by the backend at submit time).
    pub load: String,
    /// Monolithic fault count of the campaign.
    pub faults: u64,
    /// Campaign seed (the plan is a pure function of load+faults+seed).
    pub seed: u64,
    /// Shard fan-out: the plan is split into this many journal-backed
    /// shards, each a separately schedulable unit of work.
    pub shards: u32,
    /// Submission wall-clock, Unix milliseconds.
    pub submitted_at_ms: u64,
}

impl JobSpec {
    /// The job's sequence number, parsed back out of its id.
    /// Ids the service itself allocated always parse; `0` otherwise.
    pub fn seq(&self) -> u64 {
        self.id
            .strip_prefix("job-")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }

    /// Serializes the spec as one JSON object (the `spec.json` format).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("id", &self.id)
            .str("label", &self.label)
            .str("load", &self.load)
            .u64("faults", self.faults)
            .u64("seed", self.seed)
            .u64("shards", self.shards as u64)
            .u64("submitted_at_ms", self.submitted_at_ms)
            .finish()
    }

    /// Parses a `spec.json` document.
    ///
    /// # Errors
    ///
    /// A description of the first missing/mistyped field.
    pub fn from_json(text: &str) -> Result<JobSpec, String> {
        let v = json::parse(text.trim())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("spec missing string field `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(fades_telemetry::json::JsonValue::as_u64)
                .ok_or_else(|| format!("spec missing numeric field `{key}`"))
        };
        let shards = u64_field("shards")?;
        if shards == 0 || shards > u32::MAX as u64 {
            return Err(format!("spec has impossible shard count {shards}"));
        }
        Ok(JobSpec {
            id: str_field("id")?,
            label: str_field("label")?,
            load: str_field("load")?,
            faults: u64_field("faults")?,
            seed: u64_field("seed")?,
            shards: shards as u32,
            submitted_at_ms: u64_field("submitted_at_ms")?,
        })
    }
}

/// Lifecycle of a job. Terminal states (`Completed`, `Cancelled`,
/// `Failed`) are derivable from the job directory alone, which is what
/// makes restart recovery possible without a separate state database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting for a scheduler slot (also the state an
    /// interrupted job returns to after a restart).
    Queued,
    /// At least one shard is being executed by the worker pool.
    Running,
    /// Every shard journal carries its `shard_complete` marker.
    Completed,
    /// Cancelled by a client; the `cancelled` marker file exists.
    Cancelled,
    /// A shard failed with an infrastructure error; the `error` marker
    /// file holds the message.
    Failed,
}

impl JobState {
    /// Stable lowercase name (API JSON and listings).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the state can never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            id: "job-000042".into(),
            label: "smoke".into(),
            load: "bitflip-ffs".into(),
            faults: 300,
            seed: 20_060_625,
            shards: 4,
            submitted_at_ms: 1_723_180_800_000,
        };
        let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.seq(), 42);
    }

    #[test]
    fn spec_rejects_missing_fields_and_zero_shards() {
        assert!(JobSpec::from_json("{}").is_err());
        let err = JobSpec::from_json(
            r#"{"id":"job-000001","label":"x","load":"y","faults":1,"seed":2,"shards":0,"submitted_at_ms":3}"#,
        )
        .unwrap_err();
        assert!(err.contains("shard"), "{err}");
    }
}
