//! The scheduler and worker pool.
//!
//! One `Service` owns the in-memory view of the durable queue: a FIFO
//! of accepted jobs, a concurrency cap on how many jobs run at once,
//! and a pool of worker threads that execute individual *shards* (the
//! schedulable unit — one journal-backed `run_shard` call). Admission
//! happens inside the worker loop under the state lock: whenever a
//! worker looks for work and fewer than `max_jobs` jobs are running,
//! the oldest queued job is admitted and its shard tasks appended to
//! the task queue. Jobs are admitted strictly in sequence order;
//! shards of at most `max_jobs` jobs interleave across the pool.
//!
//! Invariants the restart-recovery story rests on:
//!
//! * a job exists on disk (spec.json) before it is ever visible to a
//!   worker — there is no in-memory-only accepted work;
//! * workers never delete journal data — every state transition adds
//!   a journal line or a marker file, atomically;
//! * graceful shutdown fires the cancel tokens of running jobs but
//!   writes **no** markers: in-flight chunks retire and journal, and
//!   the next [`Service::start`] re-queues those jobs, resuming from
//!   the journals.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use fades_dispatch::CancelToken;
use fades_telemetry::{register_gauge, Gauge};

use crate::spec::{JobSpec, JobState};
use crate::store::{now_ms, JobStore, ScannedJob};

/// Depth of the not-yet-admitted job queue.
static QUEUE_DEPTH: Gauge = Gauge::new();
/// Jobs currently admitted to the worker pool.
static JOBS_RUNNING: Gauge = Gauge::new();
/// Jobs that reached `completed` since this process started (terminal
/// states found during the startup rescan count too).
static JOBS_COMPLETED: Gauge = Gauge::new();

/// What a backend's shard run reported back.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRun {
    /// The run stopped early on its cancel token (journal is a valid
    /// partial journal).
    pub cancelled: bool,
}

/// Executes one shard of one job. Implemented by `fades-experiments`
/// over the real SoC campaign; tests use lightweight mocks.
///
/// Implementations must be resumable: `run_shard` against an existing
/// journal must skip journaled work (which `fades_dispatch::run_shard`
/// does natively) and must honor `cancel` promptly.
pub trait CampaignBackend: Send + Sync + 'static {
    /// Rejects specs the backend cannot execute (unknown load, zero
    /// faults, absurd geometry) *before* they are queued.
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason.
    fn validate(&self, spec: &JobSpec) -> Result<(), String>;

    /// Runs (or resumes) shard `shard` of the job into `journal`.
    ///
    /// # Errors
    ///
    /// Infrastructure errors only; per-experiment faults must be
    /// quarantined inside the journal instead.
    fn run_shard(
        &self,
        spec: &JobSpec,
        shard: u32,
        journal: &Path,
        cancel: &CancelToken,
    ) -> Result<ShardRun, String>;
}

/// Service tunables.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queue root directory (created if absent).
    pub queue_dir: PathBuf,
    /// Worker threads executing shard tasks.
    pub workers: usize,
    /// Maximum jobs admitted concurrently (FIFO admission).
    pub max_jobs: usize,
}

/// A job as reported by [`Service::list`] / [`Service::job`].
#[derive(Debug, Clone)]
pub struct JobView {
    /// The persisted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Failure message for `Failed` jobs.
    pub error: Option<String>,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    /// Shard tasks not yet finished (only meaningful while Running).
    shards_left: u32,
    /// A client requested cancellation.
    user_cancelled: bool,
    /// Some shard stopped early on its cancel token.
    interrupted: bool,
    error: Option<String>,
}

struct State {
    jobs: BTreeMap<u64, JobEntry>,
    /// Sequence numbers of accepted, not-yet-admitted jobs, FIFO.
    queue: VecDeque<u64>,
    /// Shard tasks of admitted jobs, `(seq, shard)`.
    tasks: VecDeque<(u64, u32)>,
    running_jobs: usize,
    accepting: bool,
    /// Workers exit once set (after abandoning queued tasks — those
    /// jobs resume from their journals on the next start).
    stopping: bool,
    /// A client asked the process to shut down (`POST /shutdown`).
    shutdown_requested: bool,
    completed_total: u64,
}

struct Inner {
    store: JobStore,
    backend: Box<dyn CampaignBackend>,
    max_jobs: usize,
    state: Mutex<State>,
    /// Workers wait here for tasks; external waiters for job
    /// transitions and shutdown requests.
    signal: Condvar,
}

/// The running job server (scheduler + worker pool). HTTP is layered
/// on top by [`api::start_http`](crate::api::start_http).
pub struct Service {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The service is shutting down and admits no new work.
    NotAccepting,
    /// The backend rejected the spec.
    Invalid(String),
    /// Persisting the spec failed.
    Io(io::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NotAccepting => write!(f, "service is shutting down"),
            SubmitError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            SubmitError::Io(e) => write!(f, "could not persist job: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl Service {
    /// Opens the queue directory, rescans it (re-queueing every
    /// incomplete job for resume), registers the service gauges and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Queue directory I/O failures.
    pub fn start(
        config: &ServiceConfig,
        backend: Box<dyn CampaignBackend>,
    ) -> io::Result<Arc<Service>> {
        register_gauge("fades_service_queue_depth", &QUEUE_DEPTH);
        register_gauge("fades_service_jobs_running", &JOBS_RUNNING);
        register_gauge("fades_service_jobs_completed", &JOBS_COMPLETED);

        let store = JobStore::open(&config.queue_dir)?;
        let mut state = State {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            tasks: VecDeque::new(),
            running_jobs: 0,
            accepting: true,
            stopping: false,
            shutdown_requested: false,
            completed_total: 0,
        };
        for ScannedJob {
            spec,
            state: js,
            error,
        } in store.scan()?
        {
            let seq = spec.seq();
            if js == JobState::Queued {
                state.queue.push_back(seq);
            }
            if js == JobState::Completed {
                state.completed_total += 1;
            }
            state.jobs.insert(
                seq,
                JobEntry {
                    spec,
                    state: js,
                    cancel: CancelToken::new(),
                    shards_left: 0,
                    user_cancelled: false,
                    interrupted: false,
                    error,
                },
            );
        }
        update_gauges(&state);

        let inner = Arc::new(Inner {
            store,
            backend,
            max_jobs: config.max_jobs.max(1),
            state: Mutex::new(state),
            signal: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fades-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Arc::new(Service {
            inner,
            workers: Mutex::new(workers),
        }))
    }

    /// Accepts a new job: validates it against the backend, persists
    /// `spec.json`, and enqueues it. Returns the complete spec (with
    /// the allocated id).
    ///
    /// # Errors
    ///
    /// [`SubmitError`] — shutdown in progress, backend rejection, or
    /// persistence failure. Nothing is enqueued on error.
    pub fn submit(
        &self,
        label: Option<&str>,
        load: &str,
        faults: u64,
        seed: u64,
        shards: u32,
    ) -> Result<JobSpec, SubmitError> {
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !st.accepting {
            return Err(SubmitError::NotAccepting);
        }
        // Allocate under the lock so concurrent submits get distinct
        // seqs; take the max of disk and memory so ids never collide
        // with a directory an operator dropped in by hand.
        let seq = self
            .inner
            .store
            .next_seq()
            .map_err(SubmitError::Io)?
            .max(st.jobs.keys().next_back().map_or(0, |s| s + 1))
            .max(1);
        let spec = JobSpec {
            id: JobStore::id_for_seq(seq),
            label: label.unwrap_or(load).to_string(),
            load: load.to_string(),
            faults,
            seed,
            shards: shards.max(1),
            submitted_at_ms: now_ms(),
        };
        self.inner
            .backend
            .validate(&spec)
            .map_err(SubmitError::Invalid)?;
        self.inner.store.persist(&spec).map_err(SubmitError::Io)?;
        st.jobs.insert(
            seq,
            JobEntry {
                spec: spec.clone(),
                state: JobState::Queued,
                cancel: CancelToken::new(),
                shards_left: 0,
                user_cancelled: false,
                interrupted: false,
                error: None,
            },
        );
        st.queue.push_back(seq);
        update_gauges(&st);
        self.inner.signal.notify_all();
        Ok(spec)
    }

    /// Every known job, in submission order.
    pub fn list(&self) -> Vec<JobView> {
        let st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.jobs.values().map(view).collect()
    }

    /// One job by id.
    pub fn job(&self, id: &str) -> Option<JobView> {
        let st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.jobs.values().find(|e| e.spec.id == id).map(view)
    }

    /// Cancels a job: dequeues it if still queued (marker written,
    /// terminal immediately), or fires its cancel token if running
    /// (terminal once its in-flight chunks retire).
    ///
    /// # Errors
    ///
    /// `None`-like message for unknown ids; a message for jobs already
    /// terminal.
    pub fn cancel(&self, id: &str) -> Result<JobState, String> {
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = st
            .jobs
            .iter()
            .find(|(_, e)| e.spec.id == id)
            .map(|(seq, _)| *seq)
            .ok_or_else(|| format!("no such job `{id}`"))?;
        let entry = st
            .jobs
            .get_mut(&seq)
            .unwrap_or_else(|| unreachable!("job entry exists"));
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.user_cancelled = true;
                self.inner
                    .store
                    .mark_cancelled(id)
                    .map_err(|e| e.to_string())?;
                st.queue.retain(|s| *s != seq);
                // Tasks of an admitted-then-re-queued job cannot exist
                // while state is Queued, but sweep defensively.
                st.tasks.retain(|(s, _)| *s != seq);
                update_gauges(&st);
                self.inner.signal.notify_all();
                Ok(JobState::Cancelled)
            }
            JobState::Running => {
                entry.user_cancelled = true;
                entry.cancel.cancel();
                // Un-run shard tasks would each still pay campaign
                // setup just to notice the token; drop them now. The
                // shards_left accounting still counts them down via
                // the drop below.
                let dropped = {
                    let before = st.tasks.len();
                    st.tasks.retain(|(s, _)| *s != seq);
                    (before - st.tasks.len()) as u32
                };
                let entry = st
                    .jobs
                    .get_mut(&seq)
                    .unwrap_or_else(|| unreachable!("job entry exists"));
                entry.shards_left -= dropped;
                entry.interrupted |= dropped > 0;
                if entry.shards_left == 0 {
                    finalize_job(&self.inner, &mut st, seq);
                }
                self.inner.signal.notify_all();
                Ok(JobState::Running)
            }
            terminal => Err(format!("job `{id}` is already {}", terminal.as_str())),
        }
    }

    /// The job's shard journals that exist on disk (for status /
    /// results endpoints).
    pub fn journals(&self, spec: &JobSpec) -> Vec<PathBuf> {
        self.inner.store.existing_journals(spec)
    }

    /// Stops admitting work (submits fail, queued jobs stay queued) and
    /// fires the cancel token of every running job *without* writing
    /// cancel markers: in-flight chunks retire and journal, and the
    /// next start resumes those jobs. Wakes [`wait_for_shutdown`].
    ///
    /// [`wait_for_shutdown`]: Service::wait_for_shutdown
    pub fn request_shutdown(&self) {
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.accepting = false;
        st.stopping = true;
        st.shutdown_requested = true;
        st.tasks.clear();
        for entry in st.jobs.values_mut() {
            if entry.state == JobState::Running {
                entry.cancel.cancel();
            }
        }
        self.inner.signal.notify_all();
    }

    /// Blocks until [`request_shutdown`](Service::request_shutdown) is
    /// called (typically via `POST /shutdown`).
    pub fn wait_for_shutdown(&self) {
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !st.shutdown_requested {
            st = self
                .inner
                .signal
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops the worker pool and joins every worker. In-flight shard
    /// chunks retire first (cooperative cancellation), so this returns
    /// only once all journals are quiescent.
    pub fn join(&self) {
        {
            let mut st = self
                .inner
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.accepting = false;
            st.stopping = true;
            for entry in st.jobs.values_mut() {
                if entry.state == JobState::Running {
                    entry.cancel.cancel();
                }
            }
            self.inner.signal.notify_all();
        }
        let workers = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for w in workers {
            let _ = w.join();
        }
    }
}

fn view(entry: &JobEntry) -> JobView {
    JobView {
        spec: entry.spec.clone(),
        state: entry.state,
        error: entry.error.clone(),
    }
}

fn update_gauges(st: &State) {
    QUEUE_DEPTH.set(st.queue.len() as u64);
    JOBS_RUNNING.set(st.running_jobs as u64);
    JOBS_COMPLETED.set(st.completed_total);
}

/// Admits queued jobs FIFO while slots are free, materializing their
/// shard tasks. Caller holds the state lock.
fn admit(st: &mut State, max_jobs: usize) {
    while !st.stopping && st.running_jobs < max_jobs {
        let Some(seq) = st.queue.pop_front() else {
            break;
        };
        let entry = st
            .jobs
            .get_mut(&seq)
            .unwrap_or_else(|| unreachable!("queued job exists"));
        entry.state = JobState::Running;
        entry.shards_left = entry.spec.shards;
        entry.interrupted = false;
        st.running_jobs += 1;
        for shard in 0..entry.spec.shards {
            st.tasks.push_back((seq, shard));
        }
        update_gauges(st);
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (seq, shard, spec, cancel) = {
            let mut st = inner
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                admit(&mut st, inner.max_jobs);
                if let Some((seq, shard)) = st.tasks.pop_front() {
                    let entry = &st.jobs[&seq];
                    break (seq, shard, entry.spec.clone(), entry.cancel.clone());
                }
                if st.stopping {
                    return;
                }
                st = inner
                    .signal
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };

        let journal = inner.store.journal_path(&spec.id, shard);
        let result = inner.backend.run_shard(&spec, shard, &journal, &cancel);

        let mut st = inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = st
            .jobs
            .get_mut(&seq)
            .unwrap_or_else(|| unreachable!("running job exists"));
        entry.shards_left -= 1;
        match result {
            Ok(run) => entry.interrupted |= run.cancelled,
            Err(msg) => {
                if entry.error.is_none() {
                    entry.error = Some(msg);
                }
            }
        }
        if entry.shards_left == 0 {
            finalize_job(inner, &mut st, seq);
        }
        inner.signal.notify_all();
    }
}

/// Settles a job whose last shard task finished (or was dropped).
/// Caller holds the state lock.
fn finalize_job(inner: &Inner, st: &mut State, seq: u64) {
    let entry = st
        .jobs
        .get_mut(&seq)
        .unwrap_or_else(|| unreachable!("job exists"));
    let id = entry.spec.id.clone();
    if let Some(msg) = entry.error.clone() {
        entry.state = JobState::Failed;
        if let Err(e) = inner.store.mark_failed(&id, &msg) {
            eprintln!("warning: could not write error marker for {id}: {e}");
        }
    } else if entry.interrupted && entry.user_cancelled {
        entry.state = JobState::Cancelled;
        if let Err(e) = inner.store.mark_cancelled(&id) {
            eprintln!("warning: could not write cancel marker for {id}: {e}");
        }
    } else if entry.interrupted {
        // Shutdown interruption: no marker, back to the (in-memory)
        // queue state; the next process start re-queues it from disk.
        entry.state = JobState::Queued;
    } else {
        entry.state = JobState::Completed;
        st.completed_total += 1;
    }
    st.running_jobs -= 1;
    update_gauges(st);
}
