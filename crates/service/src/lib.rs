//! A durable multi-campaign job server over sharded dispatch.
//!
//! The paper drives FADES one campaign at a time from a host PC; the
//! production-scale version of that workflow is a *service*: clients
//! submit campaigns over HTTP, a scheduler runs them with bounded
//! concurrency, and every accepted job survives process death. This
//! crate is that service, std-only like the rest of the workspace, and
//! deliberately thin over machinery that already exists:
//!
//! * **Durability** is the [`JobStore`]: one directory per job holding
//!   `spec.json` (atomic write) plus the per-shard dispatch journals.
//!   The directory *is* the database — [`JobStore::scan`] rebuilds all
//!   state from disk, so a restart re-queues every incomplete job and
//!   `fades_dispatch::run_shard` resumes it from its journals, skipping
//!   settled experiments.
//! * **Scheduling** is the [`Service`]: FIFO admission with a
//!   configurable cap on concurrently running jobs, a worker pool whose
//!   unit of work is one *shard* (so one big job fans out across
//!   workers, and several small jobs interleave), and cooperative
//!   cancellation via [`fades_dispatch::CancelToken`].
//! * **Transport** is [`api::start_http`]: the hardened mini HTTP
//!   listener from `fades-telemetry`, serving the campaign routes next
//!   to the classic `/metrics` and `/status` endpoints. Queue depth,
//!   running jobs and completed jobs are registered as gauges, so one
//!   Prometheus scrape covers the whole service.
//!
//! The execution engine itself stays behind the [`CampaignBackend`]
//! trait: `fades-experiments` implements it over the real SoC campaign
//! (keeping the netlist/PNR dependency out of this crate), and tests
//! implement lightweight mocks.
//!
//! Merged results are bit-identical to a monolithic
//! [`Campaign::run`](fades_core::Campaign::run) — including
//! `emulation_seconds` — because shard journals record exact f64 bit
//! patterns and merges fold them in global plan order. Kills, restarts,
//! cancellation and shard fan-out change *when* work happens, never the
//! answer.

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

pub mod api;
mod service;
mod spec;
mod store;

pub use service::{CampaignBackend, JobView, Service, ServiceConfig, ShardRun, SubmitError};
pub use spec::{JobSpec, JobState};
pub use store::{now_ms, JobStore, ScannedJob};
