//! The HTTP/JSON API over a running [`Service`].
//!
//! ```text
//! POST /campaigns                  submit  {"load":..,"faults":..,"seed":..,"shards":..,"label":..}
//! GET  /campaigns                  list every job
//! GET  /campaigns/<id>             one job + live progress/ETA (campaign_status)
//! POST /campaigns/<id>/cancel      cancel queued or running job
//! GET  /campaigns/<id>/results     merged CampaignStats (exact f64 bits included)
//! POST /shutdown                   graceful shutdown (stop admitting, retire in-flight work)
//! GET  /metrics, /status, /        the classic observability endpoints
//! ```
//!
//! All routes run on the hardened [`HttpServer`] from `fades-telemetry`
//! — the same bounded-read listener `/metrics` uses.

use std::sync::Arc;

use fades_telemetry::json::{self, JsonObject};
use fades_telemetry::{metrics_router, HttpRequest, HttpResponse, HttpServer};

use fades_dispatch::{campaign_status, merge, MergeReport};

use crate::service::{JobView, Service, SubmitError};

/// Starts the API server for `service` on `addr` (port 0 picks a free
/// port; read it back from [`HttpServer::addr`]).
///
/// # Errors
///
/// Bind/configuration errors.
pub fn start_http(addr: &str, service: Arc<Service>) -> std::io::Result<HttpServer> {
    HttpServer::start(
        addr,
        "fades-service-api",
        Arc::new(move |req: &HttpRequest| route(&service, req)),
    )
}

fn route(service: &Service, req: &HttpRequest) -> HttpResponse {
    let path = req.path.trim_end_matches('/');
    match (req.method.as_str(), path) {
        ("POST", "/campaigns") => submit(service, &req.body),
        ("GET", "/campaigns") => list(service),
        ("POST", "/shutdown") => {
            service.request_shutdown();
            HttpResponse::json("{\"shutdown\":\"requested\"}\n".into())
        }
        ("GET", "/metrics" | "/status" | "") => metrics_router(req),
        _ => {
            if let Some(rest) = path.strip_prefix("/campaigns/") {
                return campaign_route(service, req, rest);
            }
            HttpResponse::error(404, "not found")
        }
    }
}

fn campaign_route(service: &Service, req: &HttpRequest, rest: &str) -> HttpResponse {
    let (id, action) = match rest.split_once('/') {
        Some((id, action)) => (id, Some(action)),
        None => (rest, None),
    };
    let Some(job) = service.job(id) else {
        return HttpResponse::error(404, &format!("no such job `{id}`"));
    };
    match (req.method.as_str(), action) {
        ("GET", None) => job_detail(service, &job),
        ("POST", Some("cancel")) => match service.cancel(id) {
            Ok(_) => HttpResponse::json(format!("{}\n", job_json(&service.job(id).unwrap_or(job)))),
            Err(msg) => HttpResponse::error(409, &msg),
        },
        ("GET", Some("results")) => results(service, &job),
        _ => HttpResponse::error(404, "not found"),
    }
}

fn submit(service: &Service, body: &str) -> HttpResponse {
    let v = match json::parse(body.trim()) {
        Ok(v) => v,
        Err(e) => return HttpResponse::error(400, &format!("bad JSON: {e}")),
    };
    let Some(load) = v.get("load").and_then(|x| x.as_str()) else {
        return HttpResponse::error(400, "missing required field `load`");
    };
    let faults = v
        .get("faults")
        .and_then(fades_telemetry::json::JsonValue::as_u64)
        .unwrap_or(100);
    let seed = v
        .get("seed")
        .and_then(fades_telemetry::json::JsonValue::as_u64)
        .unwrap_or(1);
    let shards = v
        .get("shards")
        .and_then(fades_telemetry::json::JsonValue::as_u64)
        .unwrap_or(1)
        .clamp(1, 4096) as u32;
    let label = v.get("label").and_then(|x| x.as_str());
    match service.submit(label, load, faults, seed, shards) {
        Ok(spec) => HttpResponse::json(format!(
            "{}\n",
            service
                .job(&spec.id)
                .map_or_else(|| spec.to_json(), |j| job_json(&j))
        )),
        Err(SubmitError::NotAccepting) => HttpResponse::error(503, "service is shutting down"),
        Err(SubmitError::Invalid(msg)) => HttpResponse::error(400, &msg),
        Err(SubmitError::Io(e)) => HttpResponse::error(500, &e.to_string()),
    }
}

fn list(service: &Service) -> HttpResponse {
    let jobs: Vec<String> = service.list().iter().map(job_json).collect();
    HttpResponse::json(format!(
        "{}\n",
        JsonObject::new().raw("jobs", &json::array(&jobs)).finish()
    ))
}

/// One job's core JSON document (shared by list/detail/submit/cancel).
fn job_json(job: &JobView) -> String {
    let mut obj = JsonObject::new()
        .str("id", &job.spec.id)
        .str("label", &job.spec.label)
        .str("load", &job.spec.load)
        .u64("faults", job.spec.faults)
        .u64("seed", job.spec.seed)
        .u64("shards", job.spec.shards as u64)
        .u64("submitted_at_ms", job.spec.submitted_at_ms)
        .str("state", job.state.as_str());
    if let Some(err) = &job.error {
        obj = obj.str("error", err);
    }
    obj.finish()
}

fn job_detail(service: &Service, job: &JobView) -> HttpResponse {
    let journals = service.journals(&job.spec);
    let mut obj = JsonObject::new().raw("job", &job_json(job));
    // Live progress/ETA from the journals, when any shard has started.
    // A torn tail (the job is being written right now) is tolerated by
    // the status reader; any other error is reported inline rather than
    // failing the whole detail document.
    if !journals.is_empty() {
        match campaign_status(&journals) {
            Ok(report) => obj = obj.raw("progress", &report.to_json()),
            Err(e) => obj = obj.str("progress_error", &e.to_string()),
        }
    }
    HttpResponse::json(format!("{}\n", obj.finish()))
}

fn results(service: &Service, job: &JobView) -> HttpResponse {
    let journals = service.journals(&job.spec);
    if journals.is_empty() {
        return HttpResponse::error(409, &format!("job `{}` has not started", job.spec.id));
    }
    match merge(&journals) {
        Ok(report) => HttpResponse::json(format!("{}\n", merge_json(job, &report))),
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

/// Serializes a merge report. `emulation_seconds` is additionally
/// carried as its exact bit pattern (`%016x`) so clients can check
/// bit-identity against a monolithic run without f64 round-tripping
/// through decimal.
fn merge_json(job: &JobView, report: &MergeReport) -> String {
    let quarantined: Vec<String> = report
        .quarantined
        .iter()
        .map(|(index, error)| {
            JsonObject::new()
                .u64("index", *index)
                .str("error", error)
                .finish()
        })
        .collect();
    let stats = JsonObject::new()
        .u64("failures", report.stats.outcomes.failures as u64)
        .u64("latents", report.stats.outcomes.latents as u64)
        .u64("silents", report.stats.outcomes.silents as u64)
        .u64("n", report.stats.n as u64)
        .f64("emulation_seconds", report.stats.emulation_seconds)
        .str(
            "emulation_seconds_bits",
            &format!("{:016x}", report.stats.emulation_seconds.to_bits()),
        )
        .finish();
    JsonObject::new()
        .str("id", &job.spec.id)
        .str("state", job.state.as_str())
        .raw(
            "complete",
            if report.is_complete() {
                "true"
            } else {
                "false"
            },
        )
        .u64("completed", report.completed)
        .u64("missing", report.missing.len() as u64)
        .u64("duplicates", report.duplicates)
        .raw("quarantined", &json::array(&quarantined))
        .raw("stats", &stats)
        .finish()
}
