//! The durable on-disk job queue.
//!
//! Layout, one directory per job under the queue root:
//!
//! ```text
//! queue/
//!   job-000001/
//!     spec.json        # the JobSpec, written atomically at submit
//!     shard-000.jsonl  # one dispatch journal per shard
//!     shard-001.jsonl
//!     cancelled        # marker: a client cancelled the job
//!     error            # marker: a shard hit an infrastructure error
//! job-000002/
//!   ...
//! ```
//!
//! Every fact the scheduler needs is derivable from this layout, so the
//! store *is* the database: a restarted service calls [`JobStore::scan`]
//! and knows exactly which jobs are done, which were cancelled, and
//! which must be re-queued and resumed from their journals. All
//! non-append writes go through `telemetry::atomic_write` (temp file +
//! rename), so a torn `spec.json` or marker can never exist.

use std::io;
use std::path::{Path, PathBuf};

use fades_dispatch::Journal;
use fades_telemetry::atomic_write;

use crate::spec::{JobSpec, JobState};

/// Handle on the queue root directory.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
}

/// One job as reconstructed from disk by [`JobStore::scan`].
#[derive(Debug)]
pub struct ScannedJob {
    /// The persisted spec.
    pub spec: JobSpec,
    /// State derived from markers and journals (`Queued` for anything
    /// incomplete — including jobs that were mid-run when the previous
    /// process died).
    pub state: JobState,
    /// The `error` marker's message, when present.
    pub error: Option<String>,
}

impl JobStore {
    /// Opens (creating if needed) the queue root.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(root: &Path) -> io::Result<JobStore> {
        std::fs::create_dir_all(root)?;
        Ok(JobStore {
            root: root.to_path_buf(),
        })
    }

    /// The queue root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The job id for a sequence number (`job-000007`).
    pub fn id_for_seq(seq: u64) -> String {
        format!("job-{seq:06}")
    }

    /// The job's directory.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// The journal path of one shard of a job.
    pub fn journal_path(&self, id: &str, shard: u32) -> PathBuf {
        self.job_dir(id).join(format!("shard-{shard:03}.jsonl"))
    }

    /// The shard journals of `spec` that exist on disk right now (in
    /// shard order). Empty before any shard has started.
    pub fn existing_journals(&self, spec: &JobSpec) -> Vec<PathBuf> {
        (0..spec.shards)
            .map(|s| self.journal_path(&spec.id, s))
            .filter(|p| p.exists())
            .collect()
    }

    /// Creates the job directory and atomically persists `spec.json`.
    ///
    /// # Errors
    ///
    /// I/O failures; an already-existing job directory is an error (ids
    /// are allocated once).
    pub fn persist(&self, spec: &JobSpec) -> io::Result<()> {
        let dir = self.job_dir(&spec.id);
        if dir.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("job directory {} already exists", dir.display()),
            ));
        }
        std::fs::create_dir_all(&dir)?;
        atomic_write(&dir.join("spec.json"), &format!("{}\n", spec.to_json()))
    }

    /// Writes the `cancelled` marker (idempotent).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn mark_cancelled(&self, id: &str) -> io::Result<()> {
        atomic_write(&self.job_dir(id).join("cancelled"), "cancelled\n")
    }

    /// Writes the `error` marker with the failure message (first writer
    /// wins; later calls overwrite, which is fine — any one failure
    /// explains the state).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn mark_failed(&self, id: &str, message: &str) -> io::Result<()> {
        atomic_write(&self.job_dir(id).join("error"), &format!("{message}\n"))
    }

    /// Derives one job's state from its directory contents.
    fn derive_state(&self, spec: &JobSpec) -> (JobState, Option<String>) {
        let dir = self.job_dir(&spec.id);
        if dir.join("cancelled").exists() {
            return (JobState::Cancelled, None);
        }
        if let Ok(msg) = std::fs::read_to_string(dir.join("error")) {
            return (JobState::Failed, Some(msg.trim().to_string()));
        }
        let all_complete = (0..spec.shards).all(|s| {
            let path = self.journal_path(&spec.id, s);
            path.exists() && Journal::load(&path).is_ok_and(|replay| replay.shard_complete)
        });
        if all_complete {
            (JobState::Completed, None)
        } else {
            (JobState::Queued, None)
        }
    }

    /// Rebuilds every job from disk, sorted by sequence number.
    /// Unparseable job directories are skipped with a warning on stderr
    /// rather than wedging the whole service on one corrupt entry.
    ///
    /// # Errors
    ///
    /// I/O failures reading the queue root itself.
    pub fn scan(&self) -> io::Result<Vec<ScannedJob>> {
        let mut jobs = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let dir = entry?.path();
            let spec_path = dir.join("spec.json");
            if !dir.is_dir() || !spec_path.exists() {
                continue;
            }
            let spec = match std::fs::read_to_string(&spec_path)
                .map_err(|e| e.to_string())
                .and_then(|text| JobSpec::from_json(&text))
            {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("warning: skipping {}: {e}", spec_path.display());
                    continue;
                }
            };
            let (state, error) = self.derive_state(&spec);
            jobs.push(ScannedJob { spec, state, error });
        }
        jobs.sort_by_key(|j| j.spec.seq());
        Ok(jobs)
    }

    /// The next free sequence number (max on disk + 1; 1 when empty).
    ///
    /// # Errors
    ///
    /// I/O failures reading the queue root.
    pub fn next_seq(&self) -> io::Result<u64> {
        let mut max = 0;
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            if let Some(seq) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                max = max.max(seq);
            }
        }
        Ok(max + 1)
    }
}

/// Current Unix time in milliseconds (0 if the clock is before epoch).
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fades-store-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seq: u64) -> JobSpec {
        JobSpec {
            id: JobStore::id_for_seq(seq),
            label: "t".into(),
            load: "pulse-luts".into(),
            faults: 8,
            seed: 1,
            shards: 2,
            submitted_at_ms: 0,
        }
    }

    #[test]
    fn persist_scan_round_trip_and_state_derivation() {
        let root = scratch("roundtrip");
        let store = JobStore::open(&root).unwrap();
        assert_eq!(store.next_seq().unwrap(), 1);

        store.persist(&spec(1)).unwrap();
        store.persist(&spec(2)).unwrap();
        store.persist(&spec(3)).unwrap();
        assert_eq!(store.next_seq().unwrap(), 4);
        store.mark_cancelled("job-000002").unwrap();
        store.mark_failed("job-000003", "device exploded").unwrap();

        let jobs = store.scan().unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].spec.id, "job-000001");
        assert_eq!(jobs[0].state, JobState::Queued);
        assert_eq!(jobs[1].state, JobState::Cancelled);
        assert_eq!(jobs[2].state, JobState::Failed);
        assert_eq!(jobs[2].error.as_deref(), Some("device exploded"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_persist_is_rejected() {
        let root = scratch("dup");
        let store = JobStore::open(&root).unwrap();
        store.persist(&spec(1)).unwrap();
        assert!(store.persist(&spec(1)).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
