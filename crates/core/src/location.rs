//! The fault-location process: from abstract fault loads to concrete
//! physical injection targets.
//!
//! Model elements (registers, signals, memories) can be renamed, merged or
//! moved by synthesis, so the paper's fault-location process resolves them
//! to FPGA resources through the implementation's resource map. This
//! module enumerates the injectable resource pool for a [`TargetClass`]
//! and samples concrete [`ResolvedFault`]s from it.

use fades_fpga::{Bitstream, BramId, CbCoord, WireId};
use fades_netlist::{Netlist, UnitTag};
use fades_pnr::ResourceMap;
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::CoreError;
use crate::models::{FaultModel, PermanentFault};

/// Which model elements a campaign injects into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetClass {
    /// Every flip-flop of the design.
    AllFfs,
    /// Flip-flops of one functional unit.
    FfsOfUnit(UnitTag),
    /// Flip-flops of named registers (name prefixes, e.g. `"acc"`).
    FfsNamed(Vec<String>),
    /// A pre-screened list of flip-flop sites (the paper first screens for
    /// the registers "eligible for being targeted by transient faults").
    FfSites(Vec<CbCoord>),
    /// Bits of a named memory within an address range (inclusive). The
    /// paper injects into the RAM words its workload actually uses.
    MemoryBits {
        /// Memory name (e.g. `"iram"`).
        name: String,
        /// First word address.
        lo: usize,
        /// Last word address (inclusive).
        hi: usize,
    },
    /// Every LUT of the design.
    AllLuts,
    /// LUTs of one functional unit (the paper's ALU / MEM / FSM split).
    LutsOfUnit(UnitTag),
    /// CB input paths (the `InvertFFinMux` pulse targets).
    CbInputs,
    /// Wires driven by flip-flops (delay faults in sequential logic).
    SequentialWires,
    /// Wires driven by LUTs (delay faults in combinational logic).
    CombinationalWires,
    /// Wires driven by cells of one functional unit.
    WiresOfUnit(UnitTag),
}

impl std::fmt::Display for TargetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetClass::AllFfs => f.write_str("all FFs"),
            TargetClass::FfsOfUnit(u) => write!(f, "FFs of {u}"),
            TargetClass::FfsNamed(names) => write!(f, "registers {names:?}"),
            TargetClass::FfSites(s) => write!(f, "{} screened FF sites", s.len()),
            TargetClass::MemoryBits { name, lo, hi } => {
                write!(f, "memory `{name}`[{lo}..={hi}]")
            }
            TargetClass::AllLuts => f.write_str("all LUTs"),
            TargetClass::LutsOfUnit(u) => write!(f, "LUTs of {u}"),
            TargetClass::CbInputs => f.write_str("CB inputs"),
            TargetClass::SequentialWires => f.write_str("sequential wires"),
            TargetClass::CombinationalWires => f.write_str("combinational wires"),
            TargetClass::WiresOfUnit(u) => write!(f, "wires of {u}"),
        }
    }
}

/// Fault duration, in the paper's three experimental ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationRange {
    /// Less than one clock cycle (the fault is visible to exactly one
    /// capture edge; the emulation resolution is one cycle, as the paper
    /// discusses in §7.3).
    SubCycle,
    /// Uniform over `lo..=hi` clock cycles.
    Cycles(u64, u64),
    /// From injection to the end of the run (permanent faults).
    Permanent,
}

impl DurationRange {
    /// The paper's "1 to 10 cycles" range.
    pub const SHORT: DurationRange = DurationRange::Cycles(1, 10);
    /// The paper's "11 to 20 cycles" range.
    pub const MEDIUM: DurationRange = DurationRange::Cycles(11, 20);

    /// Samples a duration in cycles (`None` = permanent).
    pub fn sample(self, rng: &mut StdRng) -> Option<u64> {
        match self {
            DurationRange::SubCycle => Some(1),
            DurationRange::Cycles(lo, hi) => Some(rng.gen_range(lo..=hi)),
            DurationRange::Permanent => None,
        }
    }

    /// Display label used in experiment tables.
    pub fn label(self) -> String {
        match self {
            DurationRange::SubCycle => "<1".to_string(),
            DurationRange::Cycles(lo, hi) => format!("{lo}-{hi}"),
            DurationRange::Permanent => "permanent".to_string(),
        }
    }
}

/// A complete fault-load description: what to inject, where, for how long.
#[derive(Debug, Clone)]
pub struct FaultLoad {
    /// The fault model.
    pub model: FaultModel,
    /// The targeted model elements.
    pub target: TargetClass,
    /// Fault duration range.
    pub duration: DurationRange,
    /// Bit-flips only: use the slow whole-device GSR mechanism instead of
    /// the per-FF LSR mechanism (paper §4.1; ablation).
    pub use_gsr: bool,
    /// Indeterminations only: re-randomise the value every cycle of the
    /// fault duration (paper §6.2's expensive variant).
    pub oscillating: bool,
    /// Delays only: ship each reconfiguration as a full configuration
    /// download, reproducing the paper's driver limitation (§6.2). Set to
    /// `false` to measure the partial-reconfiguration cost instead
    /// (ablation).
    pub delay_full_download: bool,
}

impl FaultLoad {
    /// Bit-flip fault load (LSR mechanism).
    pub fn bit_flips(target: TargetClass, duration: DurationRange) -> Self {
        FaultLoad {
            model: FaultModel::BitFlip,
            target,
            duration,
            use_gsr: false,
            oscillating: false,
            delay_full_download: true,
        }
    }

    /// Pulse fault load.
    pub fn pulses(target: TargetClass, duration: DurationRange) -> Self {
        FaultLoad {
            model: FaultModel::Pulse,
            target,
            duration,
            use_gsr: false,
            oscillating: false,
            delay_full_download: true,
        }
    }

    /// Delay fault load.
    pub fn delays(target: TargetClass, duration: DurationRange) -> Self {
        FaultLoad {
            model: FaultModel::Delay,
            target,
            duration,
            use_gsr: false,
            oscillating: false,
            delay_full_download: true,
        }
    }

    /// Indetermination fault load.
    pub fn indeterminations(
        target: TargetClass,
        duration: DurationRange,
        oscillating: bool,
    ) -> Self {
        FaultLoad {
            model: FaultModel::Indetermination,
            target,
            duration,
            use_gsr: false,
            oscillating,
            delay_full_download: true,
        }
    }

    /// Multiple-bit-flip fault load: `n` simultaneous flips (paper §7.2).
    pub fn multiple_bit_flips(target: TargetClass, n: u8) -> Self {
        FaultLoad {
            model: FaultModel::MultipleBitFlip(n.max(1)),
            target,
            duration: DurationRange::SubCycle,
            use_gsr: false,
            oscillating: false,
            delay_full_download: true,
        }
    }

    /// Permanent fault load (always [`DurationRange::Permanent`]).
    pub fn permanent(kind: PermanentFault, target: TargetClass) -> Self {
        FaultLoad {
            model: FaultModel::Permanent(kind),
            target,
            duration: DurationRange::Permanent,
            use_gsr: false,
            oscillating: false,
            delay_full_download: true,
        }
    }
}

/// An injectable physical resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetSite {
    /// A used flip-flop.
    Ff(CbCoord),
    /// A used LUT.
    Lut(CbCoord),
    /// A routed wire.
    Wire(WireId),
    /// One stored bit of a memory block.
    MemBit {
        /// Block.
        bram: BramId,
        /// Word address.
        addr: usize,
        /// Bit within the word.
        bit: u32,
    },
}

/// The line of a LUT a pulse fault hits (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LutLine {
    /// The output line: every truth-table entry inverts.
    Output,
    /// An input line: the table is re-addressed with that pin inverted.
    Input(u8),
    /// An internal line of the extracted circuit: the output inverts for a
    /// subset of input patterns (sampled mask).
    Internal(u16),
}

/// The delay-injection mechanism (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMech {
    /// Turn on `n` unused pass transistors (small delays, Fig. 8).
    Fanout(u32),
    /// Reroute through `n` spare LUTs (large delays, Fig. 7).
    Reroute(u32),
}

/// A concrete fault ready for injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedFault {
    /// Bit-flip of a flip-flop.
    FfBitFlip {
        /// Target block.
        cb: CbCoord,
        /// Use the whole-device GSR mechanism.
        via_gsr: bool,
    },
    /// Bit-flip of a memory bit.
    MemBitFlip {
        /// Block.
        bram: BramId,
        /// Word address.
        addr: usize,
        /// Bit within the word.
        bit: u32,
    },
    /// Simultaneous bit-flip of several flip-flops.
    MultiFfBitFlip {
        /// Target blocks (distinct).
        cbs: Vec<CbCoord>,
    },
    /// Pulse in a LUT.
    LutPulse {
        /// Target block.
        cb: CbCoord,
        /// Affected line.
        line: LutLine,
    },
    /// Pulse on a CB input path.
    CbInputPulse {
        /// Target block.
        cb: CbCoord,
    },
    /// Delay on a routed wire.
    WireDelay {
        /// Target wire.
        wire: WireId,
        /// Mechanism.
        mech: DelayMech,
        /// Ship full configuration files (paper's driver limitation).
        full_download: bool,
    },
    /// Indetermination in a flip-flop.
    FfIndet {
        /// Target block.
        cb: CbCoord,
        /// Re-randomise every cycle.
        oscillating: bool,
    },
    /// Indetermination in a LUT.
    LutIndet {
        /// Target block.
        cb: CbCoord,
        /// Re-randomise every cycle.
        oscillating: bool,
    },
    /// A permanent fault in a LUT or FF.
    Permanent {
        /// Model.
        kind: PermanentFault,
        /// Target block.
        cb: CbCoord,
        /// Input pins involved (open-line uses `[pin, _]`, bridging both).
        pins: [u8; 2],
        /// Stuck level / flipped entry parameter.
        param: u16,
        /// True when the target is the block's FF rather than its LUT.
        on_ff: bool,
    },
}

/// Enumerates the injectable resource pool for a target class.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTargetSet`] if nothing matches (e.g. a unit
/// with no logic), and propagates lookup errors for unknown memory names.
pub fn resolve_targets(
    netlist: &Netlist,
    map: &ResourceMap,
    bitstream: &Bitstream,
    class: &TargetClass,
) -> Result<Vec<TargetSite>, CoreError> {
    let sites: Vec<TargetSite> = match class {
        TargetClass::AllFfs => bitstream
            .used_ffs()
            .into_iter()
            .map(TargetSite::Ff)
            .collect(),
        TargetClass::FfsOfUnit(unit) => map
            .ff_sites_of_unit(netlist, *unit)
            .into_iter()
            .map(TargetSite::Ff)
            .collect(),
        TargetClass::FfsNamed(names) => {
            let mut v = Vec::new();
            for name in names {
                v.extend(
                    map.ff_sites_of_register(netlist, name)
                        .into_iter()
                        .map(TargetSite::Ff),
                );
            }
            v
        }
        TargetClass::FfSites(sites) => sites.iter().copied().map(TargetSite::Ff).collect(),
        TargetClass::MemoryBits { name, lo, hi } => {
            let cell = netlist.ram_by_name(name)?;
            let bram = map.ram_site(cell).ok_or_else(|| {
                CoreError::EmptyTargetSet(format!("memory `{name}` not implemented"))
            })?;
            let width = bitstream.bram(bram)?.width;
            let mut v = Vec::new();
            for addr in *lo..=*hi {
                for bit in 0..width {
                    v.push(TargetSite::MemBit { bram, addr, bit });
                }
            }
            v
        }
        TargetClass::AllLuts => bitstream
            .used_luts()
            .into_iter()
            .map(TargetSite::Lut)
            .collect(),
        TargetClass::LutsOfUnit(unit) => map
            .lut_sites_of_unit(netlist, *unit)
            .into_iter()
            .map(TargetSite::Lut)
            .collect(),
        TargetClass::CbInputs => bitstream
            .used_ffs()
            .into_iter()
            .map(TargetSite::Ff)
            .collect(),
        TargetClass::SequentialWires => map
            .sequential_wires(netlist)
            .into_iter()
            .map(TargetSite::Wire)
            .collect(),
        TargetClass::CombinationalWires => map
            .combinational_wires(netlist)
            .into_iter()
            .map(TargetSite::Wire)
            .collect(),
        TargetClass::WiresOfUnit(unit) => map
            .wires_of_unit(netlist, *unit)
            .into_iter()
            .map(TargetSite::Wire)
            .collect(),
    };
    if sites.is_empty() {
        return Err(CoreError::EmptyTargetSet(class.to_string()));
    }
    Ok(sites)
}

/// Samples a concrete fault from the resource pool.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientTargets`] when a multiple-bit-flip
/// load asks for more distinct flip-flop sites than the pool holds.
///
/// # Panics
///
/// Panics if `sites` is empty (callers obtain it from
/// [`resolve_targets`], which never returns an empty pool).
pub fn sample_fault(
    load: &FaultLoad,
    sites: &[TargetSite],
    bitstream: &Bitstream,
    rng: &mut StdRng,
) -> Result<ResolvedFault, CoreError> {
    let site = &sites[rng.gen_range(0..sites.len())];
    Ok(match (&load.model, site) {
        (FaultModel::BitFlip, TargetSite::Ff(cb)) => ResolvedFault::FfBitFlip {
            cb: *cb,
            via_gsr: load.use_gsr,
        },
        (FaultModel::BitFlip, TargetSite::MemBit { bram, addr, bit }) => {
            ResolvedFault::MemBitFlip {
                bram: *bram,
                addr: *addr,
                bit: *bit,
            }
        }
        (FaultModel::MultipleBitFlip(n), TargetSite::Ff(_)) => {
            let n = *n as usize;
            // Distinct FF pool (a site list may repeat coordinates).
            let mut pool: Vec<CbCoord> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for s in sites {
                if let TargetSite::Ff(cb) = s {
                    if seen.insert(*cb) {
                        pool.push(*cb);
                    }
                }
            }
            if pool.len() < n {
                return Err(CoreError::InsufficientTargets {
                    needed: n,
                    available: pool.len(),
                });
            }
            // Partial Fisher-Yates: each prefix slot takes a uniform draw
            // from the remaining pool, so the result is n distinct sites
            // with no rejection loop.
            for i in 0..n {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(n);
            ResolvedFault::MultiFfBitFlip { cbs: pool }
        }
        (FaultModel::Pulse, TargetSite::Lut(cb)) => {
            let arity = bitstream
                .cb(*cb)
                .map_or(0, |c| c.lut_pins.iter().filter(|p| p.is_some()).count());
            let line = match rng.gen_range(0..3) {
                0 => LutLine::Output,
                1 if arity > 0 => LutLine::Input(rng.gen_range(0..arity) as u8),
                _ => {
                    // Invert an internal node: a random, non-trivial subset
                    // of the truth table flips.
                    let mut mask = 0u16;
                    while mask == 0 || mask == u16::MAX {
                        mask = rng.gen();
                    }
                    LutLine::Internal(mask)
                }
            };
            ResolvedFault::LutPulse { cb: *cb, line }
        }
        (FaultModel::Pulse, TargetSite::Ff(cb)) => ResolvedFault::CbInputPulse { cb: *cb },
        (FaultModel::Delay, TargetSite::Wire(wire)) => {
            let mech = if rng.gen_bool(0.5) {
                DelayMech::Fanout(rng.gen_range(1..=64))
            } else {
                DelayMech::Reroute(rng.gen_range(1..=40))
            };
            ResolvedFault::WireDelay {
                wire: *wire,
                mech,
                full_download: load.delay_full_download,
            }
        }
        (FaultModel::Indetermination, TargetSite::Ff(cb)) => ResolvedFault::FfIndet {
            cb: *cb,
            oscillating: load.oscillating,
        },
        (FaultModel::Indetermination, TargetSite::Lut(cb)) => ResolvedFault::LutIndet {
            cb: *cb,
            oscillating: load.oscillating,
        },
        (FaultModel::Permanent(kind), TargetSite::Lut(cb)) => ResolvedFault::Permanent {
            kind: *kind,
            cb: *cb,
            pins: [rng.gen_range(0..4), rng.gen_range(0..4)],
            param: rng.gen(),
            on_ff: false,
        },
        (FaultModel::Permanent(kind), TargetSite::Ff(cb)) => ResolvedFault::Permanent {
            kind: *kind,
            cb: *cb,
            pins: [0, 0],
            param: rng.gen::<u16>() & 1,
            on_ff: true,
        },
        (model, site) => {
            unreachable!("target class produced site {site:?} incompatible with model {model}")
        }
    })
}
