//! Execution of a single fault-injection experiment (paper Fig. 1).

use fades_fpga::Device;
use fades_netlist::OutputTrace;
use rand::rngs::StdRng;

use crate::classify::{classify, Outcome};
use crate::error::CoreError;
use crate::golden::GoldenRun;
use crate::location::ResolvedFault;
use crate::strategies::InjectionStrategy;
use crate::timing::LedgerSummary;

/// When a fault is injected and for how long it stays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Injection cycle (the fault is present from this cycle's settle).
    pub inject_at: u64,
    /// Duration in cycles; `None` keeps the fault until the end of the
    /// run (permanent faults).
    pub duration: Option<u64>,
}

impl FaultSchedule {
    fn active(&self, cycle: u64) -> bool {
        cycle >= self.inject_at
            && match self.duration {
                Some(d) => cycle < self.inject_at + d,
                None => true,
            }
    }

    fn expires_after(&self, cycle: u64) -> bool {
        match self.duration {
            Some(d) => cycle + 1 == self.inject_at + d,
            None => false,
        }
    }
}

/// Result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The injected fault.
    pub fault: ResolvedFault,
    /// Its schedule.
    pub schedule: FaultSchedule,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Configuration-traffic summary (input to the time model).
    pub traffic: LedgerSummary,
    /// Short name of the injection strategy that ran the experiment.
    pub strategy: &'static str,
    /// Real wall-clock microseconds the experiment took to emulate.
    pub wall_us: u64,
}

/// Runs one fault-injection experiment: reset, execute the workload,
/// reconfigure to inject at the scheduled instant, reconfigure to remove
/// at expiry, observe, classify (paper Fig. 1).
///
/// # Errors
///
/// Returns [`CoreError::BadSchedule`] for an injection instant outside
/// the run, or propagates strategy errors.
pub fn run_experiment(
    dev: &mut Device,
    golden: &GoldenRun,
    fault: ResolvedFault,
    mut strategy: Box<dyn InjectionStrategy>,
    schedule: FaultSchedule,
    ports: &[String],
    rng: &mut StdRng,
) -> Result<ExperimentResult, CoreError> {
    let started = std::time::Instant::now();
    let strategy_name = strategy.name();
    let run_cycles = golden.cycles();
    if schedule.inject_at >= run_cycles {
        return Err(CoreError::BadSchedule {
            at: schedule.inject_at,
            run_cycles,
        });
    }
    dev.reset();
    dev.clear_ledger();
    let mut trace = OutputTrace::new(ports.to_vec());
    for cycle in 0..run_cycles {
        if cycle == schedule.inject_at {
            strategy.inject(dev, rng)?;
        } else if schedule.active(cycle) {
            strategy.tick(dev, rng)?;
        }
        dev.settle();
        let mut row = Vec::with_capacity(ports.len());
        for port in ports {
            row.push(
                dev.output_u64(port)
                    .map_err(|_| CoreError::UnknownPort(port.clone()))?,
            );
        }
        trace.push_cycle(row);
        dev.clock_edge();
        if schedule.expires_after(cycle) {
            strategy.remove(dev)?;
        }
    }
    let final_state = dev.state_snapshot();
    let outcome = classify(&trace, &final_state, golden);
    Ok(ExperimentResult {
        fault,
        schedule,
        outcome,
        traffic: LedgerSummary::from(dev.ledger()),
        strategy: strategy_name,
        wall_us: started.elapsed().as_micros() as u64,
    })
}
