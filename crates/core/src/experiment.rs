//! Execution of a single fault-injection experiment (paper Fig. 1).

use fades_fpga::Device;
use fades_netlist::OutputTrace;
use rand::rngs::StdRng;

use crate::classify::{classify, Outcome};
use crate::error::CoreError;
use crate::golden::GoldenRun;
use crate::location::ResolvedFault;
use crate::strategies::InjectionStrategy;
use crate::timing::LedgerSummary;

/// When a fault is injected and for how long it stays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Injection cycle (the fault is present from this cycle's settle).
    pub inject_at: u64,
    /// Duration in cycles; `None` keeps the fault until the end of the
    /// run (permanent faults).
    pub duration: Option<u64>,
}

impl FaultSchedule {
    pub(crate) fn active(&self, cycle: u64) -> bool {
        cycle >= self.inject_at
            && match self.duration {
                Some(d) => cycle < self.inject_at + d,
                None => true,
            }
    }

    pub(crate) fn expires_after(&self, cycle: u64) -> bool {
        match self.duration {
            Some(d) => cycle + 1 == self.inject_at + d,
            None => false,
        }
    }

    /// Whether the fault is gone by the top of `cycle`: its removal
    /// reconfiguration ran at the end of the previous cycle, so from here
    /// on the strategy makes no further `tick`/`remove` calls and the
    /// configuration is behaviourally pristine. Never true for permanent
    /// faults.
    pub(crate) fn inert_at(&self, cycle: u64) -> bool {
        match self.duration {
            Some(d) => cycle >= self.inject_at.saturating_add(d),
            None => false,
        }
    }

    /// Whether the fault is still installed when a run of `run_cycles`
    /// cycles ends (permanent faults always are).
    pub fn outlives(&self, run_cycles: u64) -> bool {
        match self.duration {
            Some(d) => self.inject_at.saturating_add(d) > run_cycles,
            None => true,
        }
    }
}

/// Result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The injected fault.
    pub fault: ResolvedFault,
    /// Its schedule.
    pub schedule: FaultSchedule,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Configuration-traffic summary (input to the time model).
    pub traffic: LedgerSummary,
    /// Short name of the injection strategy that ran the experiment.
    pub strategy: &'static str,
    /// Real wall-clock microseconds the experiment took to emulate.
    pub wall_us: u64,
    /// Golden-prefix cycles skipped by restoring a checkpoint (0 on the
    /// full-simulation path).
    pub skipped_cycles: u64,
    /// Tail cycles skipped by early-stop convergence detection (0 on the
    /// full-simulation path).
    pub early_stop_cycles: u64,
}

/// Settles the books for an experiment the static pre-classifier proved
/// Silent, without simulating a single workload cycle.
///
/// The strategy's reconfiguration choreography is replayed on the reset
/// device — `inject` at the injection instant, `tick` for every active
/// cycle, `remove` at expiry (or after the run for an outliving schedule)
/// — exactly as [`run_experiment`] would have driven it. Every strategy
/// charges the transfer ledger by frame *coordinates*, never by observed
/// values, so the resulting [`LedgerSummary`] (and with it the modelled
/// `emulation_seconds`) is bit-identical to a real execution; only host
/// wall-clock is saved. The outcome is `Silent` by construction — the
/// plan-time cone-of-influence proof is the whole point — and the
/// soundness suite forces these experiments to execute for real and
/// checks the claim against both engines.
///
/// # Errors
///
/// Returns [`CoreError::BadSchedule`] for an injection instant outside
/// the run, or propagates strategy errors — the same failure surface as
/// [`run_experiment`].
pub(crate) fn replay_static_silent(
    dev: &mut Device,
    golden: &GoldenRun,
    fault: ResolvedFault,
    mut strategy: Box<dyn InjectionStrategy>,
    schedule: FaultSchedule,
    rng: &mut StdRng,
) -> Result<ExperimentResult, CoreError> {
    let started = std::time::Instant::now();
    let strategy_name = strategy.name();
    let run_cycles = golden.cycles();
    if schedule.inject_at >= run_cycles {
        return Err(CoreError::BadSchedule {
            at: schedule.inject_at,
            run_cycles,
        });
    }
    dev.reset();
    dev.clear_ledger();
    for cycle in schedule.inject_at..run_cycles {
        if cycle == schedule.inject_at {
            strategy.inject(dev, rng)?;
        } else if schedule.active(cycle) {
            strategy.tick(dev, rng)?;
        }
        if schedule.expires_after(cycle) {
            strategy.remove(dev)?;
        }
        if schedule.inert_at(cycle + 1) {
            // From here the strategy makes no further calls in a real
            // run; the remaining cycles contribute nothing to the ledger.
            break;
        }
    }
    if schedule.outlives(run_cycles) {
        strategy.remove(dev)?;
    }
    Ok(ExperimentResult {
        fault,
        schedule,
        outcome: Outcome::Silent,
        traffic: LedgerSummary::from(dev.ledger()),
        strategy: strategy_name,
        wall_us: started.elapsed().as_micros() as u64,
        skipped_cycles: 0,
        early_stop_cycles: 0,
    })
}

/// Runs one fault-injection experiment: reset, execute the workload,
/// reconfigure to inject at the scheduled instant, reconfigure to remove
/// at expiry, observe, classify (paper Fig. 1).
///
/// With `fastpath` enabled, the host-side simulation is shortened at both
/// ends without changing what the emulated FPGA does:
///
/// * **Fast-forward** — instead of re-executing the fault-free prefix,
///   the nearest golden checkpoint at or before `inject_at` is restored
///   onto the device (the prefix trace is golden by construction).
/// * **Early stop** — once the fault is removed, if the device's state
///   hash equals the golden hash at the same cycle, every remaining cycle
///   is provably identical to the golden run, so the outcome is decided
///   immediately: `Failure` if the observed trace already diverged,
///   `Silent` otherwise (`Latent` is impossible — the states match).
///
/// Both shortcuts change host wall-clock only. The emulated device still
/// executes the full `run_cycles` workload, and the strategy makes the
/// same reconfiguration calls in the same order, so the traffic ledger —
/// and with it modelled emulation time — is bit-identical to the
/// full-simulation path, as is the classified outcome.
///
/// # Errors
///
/// Returns [`CoreError::BadSchedule`] for an injection instant outside
/// the run, or propagates strategy errors.
pub fn run_experiment(
    dev: &mut Device,
    golden: &GoldenRun,
    fault: ResolvedFault,
    mut strategy: Box<dyn InjectionStrategy>,
    schedule: FaultSchedule,
    ports: &[String],
    rng: &mut StdRng,
    fastpath: bool,
) -> Result<ExperimentResult, CoreError> {
    let started = std::time::Instant::now();
    let strategy_name = strategy.name();
    let run_cycles = golden.cycles();
    if schedule.inject_at >= run_cycles {
        return Err(CoreError::BadSchedule {
            at: schedule.inject_at,
            run_cycles,
        });
    }
    dev.reset();
    dev.clear_ledger();

    let mut start_cycle = 0u64;
    if fastpath {
        if let Some(cp) = golden.checkpoint_at_or_before(schedule.inject_at) {
            if cp.cycle() > 0 {
                dev.restore_state(cp);
                start_cycle = cp.cycle();
            }
        }
    }

    // The full path keeps the original record-everything-then-classify
    // flow as the reference implementation; the fast path tracks
    // divergence against the golden rows incrementally instead of
    // building a trace (its prefix rows are golden by construction).
    let mut trace = (!fastpath).then(|| OutputTrace::new(ports.to_vec()));
    let mut diverged = false;
    let mut row = Vec::with_capacity(ports.len());
    let mut early_outcome = None;
    let mut early_stop_cycles = 0u64;
    for cycle in start_cycle..run_cycles {
        if fastpath && schedule.inert_at(cycle) && dev.state_hash() == golden.state_hash_at(cycle) {
            early_stop_cycles = run_cycles - cycle;
            early_outcome = Some(if diverged {
                Outcome::Failure
            } else {
                Outcome::Silent
            });
            break;
        }
        if cycle == schedule.inject_at {
            strategy.inject(dev, rng)?;
        } else if schedule.active(cycle) {
            strategy.tick(dev, rng)?;
        }
        dev.settle();
        row.clear();
        for port in ports {
            row.push(
                dev.output_u64(port)
                    .map_err(|_| CoreError::UnknownPort(port.clone()))?,
            );
        }
        match &mut trace {
            Some(trace) => trace.push_cycle(row.clone()),
            None => {
                diverged |= golden.trace().row(cycle as usize) != Some(row.as_slice());
            }
        }
        dev.clock_edge();
        if schedule.expires_after(cycle) {
            strategy.remove(dev)?;
        }
    }
    // A fault whose schedule extends past the end of the run is still
    // installed here. The paper's Fig. 1 flow removes it before the next
    // experiment starts, so its removal reconfiguration belongs to *this*
    // experiment's ledger; permanent strategies document `remove` as a
    // no-op and are unaffected. (An early stop can only fire once the
    // fault is inert, so both paths reach this with the same schedule
    // state.)
    if schedule.outlives(run_cycles) {
        strategy.remove(dev)?;
    }
    let outcome = match early_outcome {
        Some(outcome) => outcome,
        None => match &trace {
            Some(trace) => classify(trace, &dev.state_snapshot(), golden),
            None => {
                if diverged {
                    Outcome::Failure
                } else if dev.state_snapshot().as_slice() != golden.final_state() {
                    Outcome::Latent
                } else {
                    Outcome::Silent
                }
            }
        },
    };
    fades_telemetry::fastpath::record_experiment(start_cycle, early_stop_cycles);
    Ok(ExperimentResult {
        fault,
        schedule,
        outcome,
        traffic: LedgerSummary::from(dev.ledger()),
        strategy: strategy_name,
        wall_us: started.elapsed().as_micros() as u64,
        skipped_cycles: start_cycle,
        early_stop_cycles,
    })
}
