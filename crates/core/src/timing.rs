//! The emulation-time model.
//!
//! On the paper's RC1000-PP/JBits prototype the dominant cost of every
//! experiment is configuration-port traffic: each readback or partial
//! reconfiguration pays a large software/driver latency plus the transfer
//! time of its frames, while the workload itself executes at FPGA speed
//! and is negligible (§7.1). This module converts a device's
//! [`TransferLedger`] into modelled wall-clock seconds.
//!
//! The constants in [`TimeModel::paper_calibrated`] are fitted once
//! against the paper's Figure 10 (see `EXPERIMENTS.md` for the
//! calibration table); no per-experiment tuning happens anywhere.

use fades_fpga::{ArchParams, TransferKind, TransferLedger};

/// Summary of a ledger, cheap to carry in per-experiment results.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerSummary {
    /// Configuration-port operations (incl. global pulses).
    pub ops: usize,
    /// Readback operations.
    pub readback_ops: usize,
    /// Partial-reconfiguration write operations.
    pub write_ops: usize,
    /// Bulk full-download operations.
    pub bulk_ops: usize,
    /// Global-pulse operations (GSR and friends).
    pub pulse_ops: usize,
    /// Bytes read back.
    pub readback_bytes: u64,
    /// Bytes written by partial reconfiguration.
    pub write_bytes: u64,
    /// Bytes moved by bulk full-configuration downloads.
    pub bulk_bytes: u64,
}

impl From<&TransferLedger> for LedgerSummary {
    fn from(ledger: &TransferLedger) -> Self {
        LedgerSummary {
            ops: ledger.op_count(),
            readback_ops: ledger.count_of(TransferKind::Readback),
            write_ops: ledger.count_of(TransferKind::Write),
            bulk_ops: ledger.count_of(TransferKind::FullDownload),
            pulse_ops: ledger.count_of(TransferKind::GlobalPulse),
            readback_bytes: ledger.bytes_of(TransferKind::Readback),
            write_bytes: ledger.bytes_of(TransferKind::Write),
            bulk_bytes: ledger.bytes_of(TransferKind::FullDownload),
        }
    }
}

/// Converts configuration traffic into modelled emulation seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Fixed software latency per configuration-port operation, in
    /// seconds (JBits call overhead, board driver round trip).
    pub op_latency_s: f64,
    /// Frame readback bandwidth in bytes/second.
    pub readback_bandwidth: f64,
    /// Partial-reconfiguration write bandwidth in bytes/second.
    pub write_bandwidth: f64,
    /// Bulk full-download bandwidth in bytes/second (sequential streaming
    /// is far faster than frame-addressed access).
    pub bulk_bandwidth: f64,
    /// FPGA clock period in seconds (workload execution).
    pub clock_period_s: f64,
}

impl TimeModel {
    /// The model fitted against the paper's Figure 10 for the given
    /// architecture.
    pub fn paper_calibrated(arch: &ArchParams) -> Self {
        TimeModel {
            op_latency_s: 0.08,
            readback_bandwidth: 28_800.0,
            write_bandwidth: 28_800.0,
            bulk_bandwidth: 10_000_000.0,
            clock_period_s: arch.clock_period_ns * 1e-9,
        }
    }

    /// Modelled seconds for one experiment: per-operation latency, frame
    /// transfer time, and workload execution.
    pub fn experiment_seconds(&self, summary: &LedgerSummary, run_cycles: u64) -> f64 {
        summary.ops as f64 * self.op_latency_s
            + summary.readback_bytes as f64 / self.readback_bandwidth
            + summary.write_bytes as f64 / self.write_bandwidth
            + summary.bulk_bytes as f64 / self.bulk_bandwidth
            + run_cycles as f64 * self.clock_period_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_execution_is_negligible_next_to_reconfiguration() {
        let arch = ArchParams::virtex1000_like();
        let tm = TimeModel::paper_calibrated(&arch);
        let one_op = LedgerSummary {
            ops: 1,
            readback_bytes: 288,
            ..Default::default()
        };
        let reconf = tm.experiment_seconds(&one_op, 0);
        let exec = tm.experiment_seconds(&LedgerSummary::default(), 1303);
        // Paper §7.1: execution takes a small fraction of injection time.
        assert!(exec < reconf / 100.0);
    }
}
