//! Error type for the fault-emulation framework.

use std::error::Error;
use std::fmt;

use fades_fpga::FpgaError;
use fades_netlist::NetlistError;

/// Errors from campaign setup and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The requested target class resolved to no injectable resources.
    EmptyTargetSet(String),
    /// An observed port does not exist on the design.
    UnknownPort(String),
    /// The injection window is empty or outside the run length.
    BadSchedule {
        /// Requested injection cycle.
        at: u64,
        /// Experiment run length.
        run_cycles: u64,
    },
    /// A shard request names an impossible geometry: zero shards, or a
    /// shard index at or beyond the count. Catching this before
    /// execution prevents both the panic (`index >= count`) and the
    /// silently empty campaign (`count == 0` would keep nothing).
    ShardGeometry {
        /// Requested shard index.
        index: u32,
        /// Requested shard count.
        count: u32,
    },
    /// A multi-site fault load asked for more distinct targets than the
    /// resolved pool holds (e.g. a 4-bit multiple bit-flip on a design
    /// with 3 flip-flops).
    InsufficientTargets {
        /// Distinct sites the fault model requires.
        needed: usize,
        /// Distinct sites the pool holds.
        available: usize,
    },
    /// A campaign worker thread panicked outside the isolating executor.
    /// Names the experiment that was in flight so the failure is
    /// actionable (re-run just that index, or quarantine it via the
    /// isolated executor) instead of aborting the process anonymously.
    ExperimentPanic {
        /// Global plan index of the experiment the worker was running
        /// (`u64::MAX` if the worker died before starting one).
        index: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The synthesis/implementation flow failed (wrapped message, since
    /// `fades-core` does not depend on `fades-pnr`).
    Implementation(String),
    /// An error raised by the FPGA model.
    Fpga(FpgaError),
    /// An error raised by the netlist layer.
    Netlist(NetlistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyTargetSet(c) => write!(f, "no injectable resources for {c}"),
            CoreError::UnknownPort(p) => write!(f, "unknown observed port `{p}`"),
            CoreError::BadSchedule { at, run_cycles } => {
                write!(
                    f,
                    "injection at cycle {at} outside run of {run_cycles} cycles"
                )
            }
            CoreError::ShardGeometry { index, count } => {
                write!(f, "invalid shard geometry: shard {index} of {count}")
            }
            CoreError::InsufficientTargets { needed, available } => {
                write!(
                    f,
                    "fault model needs {needed} distinct targets but the pool has {available}"
                )
            }
            CoreError::ExperimentPanic { index, message } => {
                write!(f, "experiment {index} panicked: {message}")
            }
            CoreError::Implementation(msg) => write!(f, "implementation failed: {msg}"),
            CoreError::Fpga(e) => write!(f, "fpga: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Fpga(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FpgaError> for CoreError {
    fn from(e: FpgaError) -> Self {
        CoreError::Fpga(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}
