//! Fault-injection campaigns: thousands of experiments, run in parallel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use fades_fpga::{CbCoord, Device};
use fades_netlist::Netlist;
use fades_pnr::Implementation;
use fades_telemetry::{ExperimentRecord, Recorder, RecorderHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::classify::{Outcome, OutcomeStats};
use crate::error::CoreError;
use crate::experiment::{run_experiment, ExperimentResult, FaultSchedule};
use crate::golden::GoldenRun;
use crate::location::{resolve_targets, sample_fault, DurationRange, FaultLoad, TargetClass};
use crate::plan::{CampaignPlan, ChaosPanic, ExperimentVerdict, PlannedExperiment};
use crate::strategies::strategy_for;
use crate::timing::TimeModel;

/// Tunables of a campaign run.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Worker threads (experiments are embarrassingly parallel; each
    /// worker clones the configured device).
    pub threads: usize,
    /// Extra cycles executed beyond the workload's nominal completion so
    /// delayed completions still count as observed differences.
    pub margin_cycles: u64,
    /// Whether experiments use the checkpointed fast-forward path
    /// (golden-prefix skip plus early-stop convergence detection). Both
    /// shortcuts change host wall-clock only — outcomes and modelled
    /// emulation time are identical to the full-simulation path.
    pub fastpath: bool,
    /// Whether the batched entry points use the bit-parallel lane engine
    /// (63 experiments plus the golden run per `u64` word). Like
    /// [`fastpath`](CampaignConfig::fastpath), a host-side shortcut only:
    /// outcomes, traffic and modelled emulation time are bit-identical to
    /// the scalar path. With this off, [`Campaign::run_batched`] falls
    /// back to the scalar executor wholesale.
    pub batch: bool,
    /// Whether batched cohort passes warm-start from the nearest golden
    /// checkpoint at or before the cohort's earliest injection instant
    /// instead of replaying the pristine prefix from cycle 0. Host
    /// wall-clock only — bit-identical results either way.
    pub warmstart: bool,
    /// Whether the lane engine's settle evaluates only the fan-out cone
    /// of changed words (the sparse divergence-frontier scheduler)
    /// instead of sweeping the whole netlist. Host wall-clock only —
    /// bit-identical results either way.
    pub sparse: bool,
    /// Whether executors honour the plan's static pre-classification:
    /// experiments the cone-of-influence analysis proved Silent replay
    /// their reconfiguration ledger without simulating a single workload
    /// cycle. Host wall-clock only — outcomes, traffic and modelled
    /// emulation time are bit-identical to executing them (the soundness
    /// suite enforces this). Plans are annotated either way; this flag
    /// only controls whether execution skips.
    pub static_preclassify: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: worker_threads(),
            margin_cycles: 64,
            fastpath: fastpath_default(),
            batch: batch_default(),
            warmstart: warmstart_default(),
            sparse: fades_fpga::sparse_default(),
            static_preclassify: static_default(),
        }
    }
}

/// Default for [`CampaignConfig::fastpath`]: enabled unless the
/// `FADES_NO_FASTPATH` escape hatch is set to a non-empty value other
/// than `0` (kept available for equivalence testing and debugging).
///
/// Read per call — not cached — so one process can construct configs on
/// both paths (the equivalence test relies on this).
pub fn fastpath_default() -> bool {
    !matches!(std::env::var("FADES_NO_FASTPATH"), Ok(v) if !v.is_empty() && v != "0")
}

/// Default for [`CampaignConfig::batch`]: enabled unless the
/// `FADES_NO_BATCH` escape hatch is set to a non-empty value other than
/// `0` (kept available for equivalence testing and debugging).
///
/// Read per call — not cached — so one process can construct configs on
/// both paths (the differential test relies on this).
pub fn batch_default() -> bool {
    !matches!(std::env::var("FADES_NO_BATCH"), Ok(v) if !v.is_empty() && v != "0")
}

/// Default for [`CampaignConfig::warmstart`]: enabled unless the
/// `FADES_NO_WARMSTART` escape hatch is set to a non-empty value other
/// than `0` (kept available for equivalence testing and debugging).
///
/// Read per call — not cached — so one process can construct configs on
/// both paths (the differential test relies on this).
pub fn warmstart_default() -> bool {
    !matches!(std::env::var("FADES_NO_WARMSTART"), Ok(v) if !v.is_empty() && v != "0")
}

/// Default for [`CampaignConfig::static_preclassify`]: enabled unless the
/// `FADES_NO_STATIC` escape hatch is set to a non-empty value other than
/// `0` (kept available for the soundness differential suite, which proves
/// skipped and executed campaigns bit-identical).
///
/// Read per call — not cached — so one process can construct configs on
/// both paths (the differential test relies on this).
pub fn static_default() -> bool {
    !matches!(std::env::var("FADES_NO_STATIC"), Ok(v) if !v.is_empty() && v != "0")
}

/// Campaign worker-thread count: `FADES_THREADS` when set to a positive
/// integer, otherwise `min(available_parallelism, 8)`.
///
/// Parsed once per process (and the "ignoring invalid" warning printed
/// at most once) — campaigns call this per run and the answer cannot
/// meaningfully change mid-process.
pub fn worker_threads() -> usize {
    static WORKER_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKER_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("FADES_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => eprintln!("warning: ignoring invalid FADES_THREADS=`{v}`"),
            }
        }
        std::thread::available_parallelism().map_or(4, |n| n.get().min(8))
    })
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Outcome counts.
    pub outcomes: OutcomeStats,
    /// Modelled total emulation time of the whole campaign in seconds
    /// (the quantity of the paper's Figure 10 / Table 2).
    pub emulation_seconds: f64,
    /// Experiments executed.
    pub n: usize,
}

impl CampaignStats {
    /// Experiments executed.
    pub fn total(&self) -> usize {
        self.n
    }

    /// Mean modelled seconds per injected fault (0 for an empty
    /// campaign — never a division by zero).
    pub fn mean_seconds_per_fault(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.emulation_seconds / self.n as f64
        }
    }

    /// Folds one experiment into the stats.
    ///
    /// This is *the* accumulation step of a campaign: the monolithic
    /// runner and `fades-dispatch`'s shard merge both fold experiments
    /// through here in ascending plan order, which is what makes merged
    /// shard stats bit-identical to a single-process run (floating-point
    /// addition is order-sensitive, so the order is part of the
    /// contract).
    pub fn accumulate(&mut self, outcome: Outcome, modelled_seconds: f64) {
        self.outcomes.record(outcome);
        self.emulation_seconds += modelled_seconds;
        self.n += 1;
    }
}

/// How the executor responds to a failing experiment.
enum ExecMode<'a> {
    /// Propagate the first error; let panics unwind the worker (they are
    /// converted to [`CoreError::ExperimentPanic`] at join time).
    FailFast,
    /// Contain panics and errors per experiment: retry `retries` times on
    /// a pristine device, then quarantine. `observer` sees every verdict
    /// as it is decided, from the deciding worker thread.
    Isolated {
        retries: u32,
        observer: Option<&'a (dyn Fn(&ExperimentVerdict) + Sync)>,
    },
}

/// Renders a panic payload for error reports (string payloads pass
/// through; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A prepared fault-injection campaign over one implemented design.
///
/// Holds the configured device, the golden run and the time model; each
/// [`run`](Campaign::run) executes a fault load against it. See the crate
/// documentation for an example.
#[derive(Debug)]
pub struct Campaign<'n> {
    netlist: &'n Netlist,
    implementation: Implementation,
    ports: Vec<String>,
    run_cycles: u64,
    golden: GoldenRun,
    device: Device,
    time_model: TimeModel,
    config: CampaignConfig,
}

impl<'n> Campaign<'n> {
    /// Prepares a campaign: configures the device, captures the golden
    /// run over `workload_cycles` plus a safety margin.
    ///
    /// # Errors
    ///
    /// Propagates device-configuration errors and unknown observed ports.
    pub fn new(
        netlist: &'n Netlist,
        implementation: Implementation,
        observed_ports: &[&str],
        workload_cycles: u64,
    ) -> Result<Self, CoreError> {
        Self::with_config(
            netlist,
            implementation,
            observed_ports,
            workload_cycles,
            CampaignConfig::default(),
        )
    }

    /// [`Campaign::new`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates device-configuration errors and unknown observed ports.
    pub fn with_config(
        netlist: &'n Netlist,
        implementation: Implementation,
        observed_ports: &[&str],
        workload_cycles: u64,
        config: CampaignConfig,
    ) -> Result<Self, CoreError> {
        let mut device = Device::configure(implementation.bitstream.clone())?;
        let ports: Vec<String> = observed_ports
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let run_cycles = workload_cycles + config.margin_cycles;
        let golden = GoldenRun::capture(&mut device, &ports, run_cycles)?;
        let time_model = TimeModel::paper_calibrated(device.arch());
        Ok(Campaign {
            netlist,
            implementation,
            ports,
            run_cycles,
            golden,
            device,
            time_model,
            config,
        })
    }

    /// The golden run this campaign classifies against.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The implementation under test.
    pub fn implementation(&self) -> &Implementation {
        &self.implementation
    }

    /// The netlist under test.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The time model used for emulation-time reporting.
    pub fn time_model(&self) -> &TimeModel {
        &self.time_model
    }

    /// Experiment run length in cycles (workload plus margin).
    pub fn run_cycles(&self) -> u64 {
        self.run_cycles
    }

    /// The campaign's tunables.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs `n_faults` experiments of the given fault load and aggregates
    /// outcome statistics and modelled emulation time.
    ///
    /// # Errors
    ///
    /// Returns an error if the target class resolves to nothing, or if an
    /// experiment fails to reconfigure.
    pub fn run(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let label = load.target.to_string();
        self.run_named(&label, load, n_faults, seed)
    }

    /// [`run`](Campaign::run) with an explicit campaign label for the
    /// telemetry sinks (run log, summary table, `BENCH_campaign.json`).
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_named(
        &self,
        label: &str,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let plan = self.plan(load, n_faults, seed)?;
        let threads = self.config.threads.max(1).min(n_faults.max(1));
        let recorder = Recorder::new(label, n_faults, threads);
        let verdicts = self.execute_mode(&plan, Some(&recorder), ExecMode::FailFast)?;
        let mut stats = CampaignStats::default();
        for v in &verdicts {
            if let ExperimentVerdict::Completed {
                result,
                modelled_seconds,
                ..
            } = v
            {
                stats.accumulate(result.outcome, *modelled_seconds);
            }
        }
        recorder.finish();
        Ok(stats)
    }

    /// [`run`](Campaign::run) through the bit-parallel lane engine: plan
    /// entries are grouped into cohorts of up to 63 and emulated
    /// simultaneously, one per `u64` lane, with lane 0 replaying the
    /// golden run. Outcomes, configuration traffic and modelled emulation
    /// seconds are bit-identical to [`run`](Campaign::run) — the engine
    /// changes host wall-clock only.
    ///
    /// Faults the lane engine cannot express (routing delays, oscillating
    /// indeterminations) automatically run on the scalar per-experiment
    /// path, as does the whole plan when [`CampaignConfig::batch`] is off
    /// or the design cannot be lane-encoded.
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_batched(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let label = load.target.to_string();
        self.run_batched_named(&label, load, n_faults, seed)
    }

    /// [`run_batched`](Campaign::run_batched) with an explicit campaign
    /// label for the telemetry sinks.
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_batched_named(
        &self,
        label: &str,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let plan = self.plan(load, n_faults, seed)?;
        let threads = self.config.threads.max(1).min(n_faults.max(1));
        let recorder = Recorder::new(label, n_faults, threads);
        let results = self.execute_batched(&plan, Some(&recorder))?;
        let mut stats = CampaignStats::default();
        for result in &results {
            stats.accumulate(
                result.outcome,
                self.time_model
                    .experiment_seconds(&result.traffic, self.golden.cycles()),
            );
        }
        recorder.finish();
        Ok(stats)
    }

    /// Like [`run_batched`](Campaign::run_batched), returning every
    /// per-experiment result (in plan order) without feeding the
    /// telemetry sinks.
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_batched_detailed(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        let plan = self.plan(load, n_faults, seed)?;
        self.execute_batched(&plan, None)
    }

    /// Executes every experiment of `plan` with lane-cohort batching,
    /// failing fast on the first experiment error. Results come back in
    /// plan order. Accepts any plan — including a
    /// [shard](CampaignPlan::shard), which is how batched execution
    /// composes with `fades-dispatch`'s sharded runs.
    ///
    /// # Errors
    ///
    /// Propagates the first experiment error.
    pub fn execute_batched(
        &self,
        plan: &CampaignPlan,
        recorder: Option<&Recorder>,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        if !self.config.batch {
            return self.execute(plan, recorder);
        }
        let Some(mut engine) = fades_fpga::BatchDevice::new(&self.device) else {
            // The design is not lane-encodable (pristine memory contents
            // carry bits beyond their declared width, or a word is wider
            // than 64 bits): run everything scalar.
            return self.execute(plan, recorder);
        };
        engine.set_sparse(self.config.sparse);
        if plan.is_empty() {
            return Ok(Vec::new());
        }

        // Statically-Silent experiments go to the scalar side when the
        // skip is enabled, so `execute_mode` stays the single place that
        // replays them (a lane would simulate them for nothing).
        let on_lane = |e: &PlannedExperiment| {
            crate::batch::lane_expressible(&e.fault)
                && !(self.config.static_preclassify
                    && e.annotation == crate::plan::PlanAnnotation::StaticSilent)
        };
        let lane_entries: Vec<&PlannedExperiment> =
            plan.experiments.iter().filter(|e| on_lane(e)).collect();
        let scalar_plan = CampaignPlan {
            target: plan.target.clone(),
            sub_cycle: plan.sub_cycle,
            seed: plan.seed,
            n_total: plan.n_total,
            experiments: plan
                .experiments
                .iter()
                .filter(|e| !on_lane(e))
                .cloned()
                .collect(),
        };
        let scalar_results = if scalar_plan.is_empty() {
            Vec::new()
        } else {
            self.execute(&scalar_plan, recorder)?
        };

        let lane_results = crate::batch::run_lane_cohorts(
            &mut engine,
            &self.golden,
            &self.ports,
            plan.sub_cycle,
            &lane_entries,
            self.config.warmstart,
            self.config.threads,
        )?;
        if let Some(recorder) = recorder {
            let handle = recorder.handle();
            for (index, result) in &lane_results {
                handle.record(ExperimentRecord {
                    index: *index,
                    target: plan.target.clone(),
                    strategy: result.strategy.to_string(),
                    outcome: result.outcome.as_str(),
                    modelled_s: self
                        .time_model
                        .experiment_seconds(&result.traffic, self.golden.cycles()),
                    ops: result.traffic.ops as u64,
                    readback_ops: result.traffic.readback_ops as u64,
                    write_ops: result.traffic.write_ops as u64,
                    bulk_ops: result.traffic.bulk_ops as u64,
                    pulse_ops: result.traffic.pulse_ops as u64,
                    readback_bytes: result.traffic.readback_bytes,
                    write_bytes: result.traffic.write_bytes,
                    bulk_bytes: result.traffic.bulk_bytes,
                    skipped_cycles: result.skipped_cycles,
                    early_stop_cycles: result.early_stop_cycles,
                    wall_us: result.wall_us,
                    attempts: 1,
                });
            }
        }

        // Stitch the two result streams back into plan order (float
        // accumulation order is part of the bit-identical contract).
        let mut by_index: std::collections::HashMap<u64, ExperimentResult> =
            lane_results.into_iter().collect();
        for (e, r) in scalar_plan.experiments.iter().zip(scalar_results) {
            by_index.insert(e.index, r);
        }
        Ok(plan
            .experiments
            .iter()
            .map(|e| {
                by_index
                    .remove(&e.index)
                    .unwrap_or_else(|| unreachable!("every plan entry was executed"))
            })
            .collect())
    }

    /// Like [`run`](Campaign::run), returning every per-experiment result.
    /// Does not feed the telemetry sinks (screening passes call this in a
    /// tight loop and would drown the run log).
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_detailed(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        let plan = self.plan(load, n_faults, seed)?;
        self.execute(&plan, None)
    }

    /// Samples the campaign's complete fault list deterministically up
    /// front: `n_faults` experiments of `load`, each with its resolved
    /// fault, schedule and derived per-experiment seed.
    ///
    /// The plan is a pure function of `(campaign, load, n_faults, seed)`
    /// — independent of thread count and of which subset later executes —
    /// so [shards](CampaignPlan::shard) built in different processes
    /// partition exactly the fault set a monolithic run would inject.
    ///
    /// # Errors
    ///
    /// Returns an error if the target class resolves to nothing or the
    /// fault model cannot be sampled from the resolved pool.
    pub fn plan(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignPlan, CoreError> {
        let sites = resolve_targets(
            self.netlist,
            &self.implementation.map,
            &self.implementation.bitstream,
            &load.target,
        )?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut experiments = Vec::with_capacity(n_faults);
        let workload_cycles = self.run_cycles - self.config.margin_cycles;
        for i in 0..n_faults {
            let fault = sample_fault(load, &sites, &self.implementation.bitstream, &mut rng)?;
            let inject_at = rng.gen_range(0..workload_cycles.max(1));
            let duration = load.duration.sample(&mut rng);
            experiments.push(PlannedExperiment {
                index: i as u64,
                fault,
                schedule: FaultSchedule {
                    inject_at,
                    duration,
                },
                seed: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
                annotation: crate::plan::PlanAnnotation::None,
            });
        }
        // Annotate unconditionally — the plan must stay a pure function
        // of its inputs, independent of whether execution later honours
        // the annotations (`CampaignConfig::static_preclassify`), so
        // shards built in processes with different settings still agree.
        self.annotate_static(&mut experiments);
        Ok(CampaignPlan {
            target: load.target.to_string(),
            sub_cycle: load.duration == DurationRange::SubCycle,
            seed,
            n_total: n_faults,
            experiments,
        })
    }

    /// Marks the experiments whose outcome the cone-of-influence analysis
    /// decides at plan time. The rules are deliberately conservative —
    /// each one rests on a healing argument the soundness suite checks
    /// dynamically:
    ///
    /// * **FF bit-flips** (single, multi, via GSR) on registers whose
    ///   output cone is combinationally dead: the flipped value feeds
    ///   nothing, and the register recaptures its pristine data input at
    ///   the very next clock edge (a dead Q rules out self-loops, so every
    ///   data input in the design stays pristine). No schedule condition
    ///   needed — injection always precedes that cycle's edge.
    /// * **LUT pulses / indeterminations** on provably dead LUTs: only
    ///   configuration memory is touched, the corrupted output reaches no
    ///   capture point, and configuration is not part of the final-state
    ///   snapshot.
    /// * **CB input pulses / FF indeterminations** on dead registers,
    ///   additionally requiring a bounded schedule with at least one clean
    ///   clock edge after removal (`inject_at + d < run_cycles`) and no
    ///   pristine setup-time violation on the register (a violated FF
    ///   captures one cycle stale and would heal one edge later).
    /// * **Memory flips, wire delays, permanent faults**: never — a
    ///   flipped memory bit persists into the final state, and the others
    ///   have no static healing argument.
    fn annotate_static(&self, experiments: &mut [PlannedExperiment]) {
        use crate::location::ResolvedFault as Rf;
        use crate::plan::PlanAnnotation;
        let eligible = |f: &Rf| {
            matches!(
                f,
                Rf::FfBitFlip { .. }
                    | Rf::MultiFfBitFlip { .. }
                    | Rf::LutPulse { .. }
                    | Rf::LutIndet { .. }
                    | Rf::CbInputPulse { .. }
                    | Rf::FfIndet { .. }
            )
        };
        if !experiments.iter().any(|e| eligible(&e.fault)) {
            return;
        }
        let cone =
            fades_analysis::ConeIndex::combinational(&self.implementation.bitstream, &self.ports);
        let run_cycles = self.run_cycles;
        for e in experiments {
            let healed_with_clean_edge = |cb: &CbCoord| {
                cone.ff_dead(*cb)
                    && !self.device.ff_timing_violated(*cb)
                    && matches!(e.schedule.duration,
                        Some(d) if d >= 1 && e.schedule.inject_at + d < run_cycles)
            };
            let silent = match &e.fault {
                Rf::FfBitFlip { cb, .. } => cone.ff_dead(*cb),
                Rf::MultiFfBitFlip { cbs } => {
                    !cbs.is_empty() && cbs.iter().all(|cb| cone.ff_dead(*cb))
                }
                Rf::LutPulse { cb, .. } | Rf::LutIndet { cb, .. } => cone.lut_dead(*cb),
                Rf::CbInputPulse { cb } | Rf::FfIndet { cb, .. } => healed_with_clean_edge(cb),
                Rf::MemBitFlip { .. } | Rf::WireDelay { .. } | Rf::Permanent { .. } => false,
            };
            if silent {
                e.annotation = PlanAnnotation::StaticSilent;
            }
        }
    }

    /// Executes every experiment of `plan`, failing fast: the first
    /// experiment error aborts the run, and a panicking experiment
    /// surfaces as [`CoreError::ExperimentPanic`] naming the global index
    /// that was in flight (instead of tearing down the process).
    ///
    /// Results come back in plan order regardless of thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first experiment error, or reports a worker panic.
    pub fn execute(
        &self,
        plan: &CampaignPlan,
        recorder: Option<&Recorder>,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        let verdicts = self.execute_mode(plan, recorder, ExecMode::FailFast)?;
        Ok(verdicts
            .into_iter()
            .map(|v| match v {
                ExperimentVerdict::Completed { result, .. } => result,
                ExperimentVerdict::Quarantined { .. } => {
                    unreachable!("fail-fast execution never quarantines")
                }
            })
            .collect())
    }

    /// Executes `plan` with per-experiment fault containment: each
    /// experiment runs under `catch_unwind`, a panicking or erroring
    /// attempt is retried `retries` more times on a freshly re-cloned
    /// pristine device, and an experiment that exhausts its attempts is
    /// [quarantined](ExperimentVerdict::Quarantined) — the campaign
    /// finishes without it instead of aborting.
    ///
    /// `observer` is invoked once per finished experiment, from the
    /// worker thread that ran it (this is how `fades-dispatch` journals
    /// progress crash-tolerantly — the journal line is written before the
    /// next experiment starts). Verdicts come back in plan order.
    ///
    /// Retries are deterministic replays: every attempt re-seeds the
    /// experiment RNG from the plan, so a retry that succeeds produces
    /// the same result the first attempt would have.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (an unknown observed port resolving
    /// mid-run, never per-experiment faults) can surface here; experiment
    /// panics and errors are quarantined, not propagated.
    pub fn execute_isolated(
        &self,
        plan: &CampaignPlan,
        retries: u32,
        recorder: Option<&Recorder>,
        observer: Option<&(dyn Fn(&ExperimentVerdict) + Sync)>,
    ) -> Result<Vec<ExperimentVerdict>, CoreError> {
        self.execute_mode(plan, recorder, ExecMode::Isolated { retries, observer })
    }

    /// The lane engine under the isolation contract: lane-expressible
    /// experiments run 63 per `u64` word, everything else (and every
    /// fallback) goes through [`execute_isolated`](Self::execute_isolated)
    /// — same retry/quarantine semantics, same verdict shapes, outcomes
    /// and modelled seconds bit-identical to the scalar isolated path.
    ///
    /// `observer` is invoked at lane *retirement* — the moment a lane's
    /// outcome is decided, not when the whole cohort finishes — so a
    /// journaling observer forfeits at most the in-flight word on a kill.
    ///
    /// A panicking or erroring cohort is contained, not propagated: the
    /// experiments that were aboard the word and not yet retired are
    /// replayed on the scalar isolated path, where the existing
    /// per-experiment retry (`retries` attempts on a pristine device) and
    /// quarantine machinery isolates the actual offender. One poisoned
    /// fault therefore costs one scalar cohort replay, never the shard.
    /// Experiments never loaded into the poisoned word stay on the
    /// batched path (the engine is rebuilt from the pristine device).
    ///
    /// Falls back to [`execute_isolated`](Self::execute_isolated)
    /// wholesale when [`CampaignConfig::batch`] is off or the design is
    /// not lane-encodable. Verdicts come back in plan order.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (unknown observed port, invalid plan
    /// schedule) surface here; per-experiment faults are quarantined.
    pub fn execute_batched_isolated(
        &self,
        plan: &CampaignPlan,
        retries: u32,
        recorder: Option<&Recorder>,
        observer: Option<&(dyn Fn(&ExperimentVerdict) + Sync)>,
    ) -> Result<Vec<ExperimentVerdict>, CoreError> {
        if !self.config.batch {
            return self.execute_isolated(plan, retries, recorder, observer);
        }
        let Some(mut engine) = fades_fpga::BatchDevice::new(&self.device) else {
            return self.execute_isolated(plan, retries, recorder, observer);
        };
        engine.set_sparse(self.config.sparse);
        if plan.is_empty() {
            return Ok(Vec::new());
        }

        // As in `execute_batched`: statically-Silent experiments take the
        // scalar isolated path, where `execute_mode` replays their ledger.
        let on_lane = |e: &PlannedExperiment| {
            crate::batch::lane_expressible(&e.fault)
                && !(self.config.static_preclassify
                    && e.annotation == crate::plan::PlanAnnotation::StaticSilent)
        };
        let lane_entries: Vec<&PlannedExperiment> =
            plan.experiments.iter().filter(|e| on_lane(e)).collect();
        let scalar_plan = CampaignPlan {
            target: plan.target.clone(),
            sub_cycle: plan.sub_cycle,
            seed: plan.seed,
            n_total: plan.n_total,
            experiments: plan
                .experiments
                .iter()
                .filter(|e| !on_lane(e))
                .cloned()
                .collect(),
        };
        let mut verdicts: Vec<ExperimentVerdict> = if scalar_plan.is_empty() {
            Vec::new()
        } else {
            self.execute_isolated(&scalar_plan, retries, recorder, observer)?
        };

        let port_wires =
            crate::batch::lane_prologue(&engine, &self.golden, &self.ports, &lane_entries)?;
        let chaos = ChaosPanic::from_env();
        let handle: Option<RecorderHandle> = recorder.map(Recorder::handle);

        let mut pending: Vec<&PlannedExperiment> = lane_entries;
        pending.sort_by_key(|e| (e.schedule.inject_at, e.index));
        // Experiments evicted from the batched path by a poisoned cohort,
        // replayed scalar-isolated after the lane loop.
        let mut fallback: Vec<PlannedExperiment> = Vec::new();

        while !pending.is_empty() {
            let mut loaded: Vec<&PlannedExperiment> = Vec::new();
            let mut retired: Vec<ExperimentVerdict> = Vec::new();
            let outcome = {
                let engine = &mut engine;
                let loaded = &mut loaded;
                let retired = &mut retired;
                let pending = &pending;
                catch_unwind(AssertUnwindSafe(|| {
                    crate::batch::run_one_cohort(
                        engine,
                        &self.golden,
                        &port_wires,
                        plan.sub_cycle,
                        pending,
                        chaos,
                        self.config.warmstart,
                        loaded,
                        &mut |index, result| {
                            let verdict = ExperimentVerdict::Completed {
                                index,
                                modelled_seconds: self
                                    .time_model
                                    .experiment_seconds(&result.traffic, self.golden.cycles()),
                                attempts: 1,
                                result,
                            };
                            if let (
                                Some(h),
                                ExperimentVerdict::Completed {
                                    result,
                                    modelled_seconds,
                                    ..
                                },
                            ) = (&handle, &verdict)
                            {
                                h.record(ExperimentRecord {
                                    index,
                                    target: plan.target.clone(),
                                    strategy: result.strategy.to_string(),
                                    outcome: result.outcome.as_str(),
                                    modelled_s: *modelled_seconds,
                                    ops: result.traffic.ops as u64,
                                    readback_ops: result.traffic.readback_ops as u64,
                                    write_ops: result.traffic.write_ops as u64,
                                    bulk_ops: result.traffic.bulk_ops as u64,
                                    pulse_ops: result.traffic.pulse_ops as u64,
                                    readback_bytes: result.traffic.readback_bytes,
                                    write_bytes: result.traffic.write_bytes,
                                    bulk_bytes: result.traffic.bulk_bytes,
                                    skipped_cycles: result.skipped_cycles,
                                    early_stop_cycles: result.early_stop_cycles,
                                    wall_us: result.wall_us,
                                    attempts: 1,
                                });
                            }
                            if let Some(f) = observer {
                                f(&verdict);
                            }
                            retired.push(verdict);
                        },
                    )
                }))
            };
            match outcome {
                Ok(Ok(leftovers)) => {
                    verdicts.append(&mut retired);
                    pending = leftovers;
                }
                Ok(Err(_)) | Err(_) => {
                    // The cohort died mid-pass. Lanes that retired before
                    // the failure are decided (and already observed);
                    // everything else that was aboard the word replays on
                    // the scalar isolated path, which retries and
                    // quarantines the actual offender per experiment.
                    let decided: std::collections::HashSet<u64> =
                        retired.iter().map(ExperimentVerdict::index).collect();
                    verdicts.append(&mut retired);
                    fallback.extend(
                        loaded
                            .iter()
                            .filter(|e| !decided.contains(&e.index))
                            .map(|e| (*e).clone()),
                    );
                    if loaded.is_empty() {
                        // Died before taking any work: batched progress is
                        // impossible, hand the rest to the scalar path.
                        fallback.extend(pending.iter().map(|e| (*e).clone()));
                        pending.clear();
                    } else {
                        let aboard: std::collections::HashSet<u64> =
                            loaded.iter().map(|e| e.index).collect();
                        pending.retain(|e| !aboard.contains(&e.index));
                    }
                    // The word may hold a half-installed fault; rebuild
                    // the engine from the pristine device.
                    match fades_fpga::BatchDevice::new(&self.device) {
                        Some(mut rebuilt) => {
                            rebuilt.set_sparse(self.config.sparse);
                            engine = rebuilt;
                        }
                        None => {
                            fallback.extend(pending.iter().map(|e| (*e).clone()));
                            pending.clear();
                        }
                    }
                }
            }
        }

        if !fallback.is_empty() {
            fallback.sort_by_key(|e| e.index);
            let fallback_plan = CampaignPlan {
                target: plan.target.clone(),
                sub_cycle: plan.sub_cycle,
                seed: plan.seed,
                n_total: plan.n_total,
                experiments: fallback,
            };
            verdicts.extend(self.execute_isolated(&fallback_plan, retries, recorder, observer)?);
        }

        // Stitch back into plan order (float accumulation order is part
        // of the bit-identical contract).
        let mut by_index: std::collections::HashMap<u64, ExperimentVerdict> =
            verdicts.into_iter().map(|v| (v.index(), v)).collect();
        Ok(plan
            .experiments
            .iter()
            .map(|e| {
                by_index
                    .remove(&e.index)
                    .unwrap_or_else(|| unreachable!("every plan entry was decided"))
            })
            .collect())
    }

    fn execute_mode(
        &self,
        plan: &CampaignPlan,
        recorder: Option<&Recorder>,
        mode: ExecMode<'_>,
    ) -> Result<Vec<ExperimentVerdict>, CoreError> {
        if plan.is_empty() {
            // Guard explicitly: an empty campaign has no work and a zero
            // chunk size would panic `chunks(0)` below.
            return Ok(Vec::new());
        }
        let chaos = ChaosPanic::from_env();
        let threads = self.config.threads.max(1).min(plan.len());
        let chunk = plan.len().div_ceil(threads);
        let n_chunks = plan.len().div_ceil(chunk);
        let mut results: Vec<Option<ExperimentVerdict>> = vec![None; plan.len()];
        // Every worker publishes the global index it is about to run, so
        // a panic escaping the fail-fast path can be attributed.
        let in_flight: Vec<AtomicU64> = (0..n_chunks).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mode = &mode;

        crossbeam::thread::scope(|scope| -> Result<(), CoreError> {
            let mut handles = Vec::new();
            for ((chunk_plan, chunk_out), slot) in plan
                .experiments
                .chunks(chunk)
                .zip(results.chunks_mut(chunk))
                .zip(&in_flight)
            {
                let pristine = &self.device;
                let mut dev = pristine.clone();
                let ports = &self.ports;
                let golden = &self.golden;
                let rec: Option<RecorderHandle> = recorder.map(Recorder::handle);
                let target = plan.target.as_str();
                let sub_cycle = plan.sub_cycle;
                let time_model = &self.time_model;
                let fastpath = self.config.fastpath;
                let static_skip = self.config.static_preclassify;
                handles.push(scope.spawn(move |_| -> Result<(), CoreError> {
                    for (planned, out) in chunk_plan.iter().zip(chunk_out.iter_mut()) {
                        slot.store(planned.index, Ordering::Release);
                        fades_telemetry::trace::set_current_experiment(planned.index);
                        let _span = fades_telemetry::span!("experiment");
                        let mut attempt = 0u32;
                        let verdict = loop {
                            let run_one =
                                |dev: &mut Device| -> Result<ExperimentResult, CoreError> {
                                    if let Some(c) = chaos {
                                        c.maybe_panic(planned.index, attempt);
                                    }
                                    let mut rng = StdRng::seed_from_u64(planned.seed);
                                    let strategy = strategy_for(&planned.fault, sub_cycle);
                                    if static_skip
                                        && planned.annotation
                                            == crate::plan::PlanAnnotation::StaticSilent
                                    {
                                        // Plan-time proof says Silent:
                                        // replay the reconfiguration
                                        // ledger, skip the simulation.
                                        let result = crate::experiment::replay_static_silent(
                                            dev,
                                            golden,
                                            planned.fault.clone(),
                                            strategy,
                                            planned.schedule,
                                            &mut rng,
                                        )?;
                                        fades_telemetry::analysis::STATIC_SILENT.inc();
                                        return Ok(result);
                                    }
                                    run_experiment(
                                        dev,
                                        golden,
                                        planned.fault.clone(),
                                        strategy,
                                        planned.schedule,
                                        ports,
                                        &mut rng,
                                        fastpath,
                                    )
                                };
                            let error = match mode {
                                ExecMode::FailFast => {
                                    // Let a panic unwind the worker; the
                                    // join below converts it into
                                    // `ExperimentPanic` via `slot`.
                                    let result = run_one(&mut dev)?;
                                    break ExperimentVerdict::Completed {
                                        index: planned.index,
                                        modelled_seconds: time_model
                                            .experiment_seconds(&result.traffic, golden.cycles()),
                                        attempts: 1,
                                        result,
                                    };
                                }
                                ExecMode::Isolated { .. } => {
                                    match catch_unwind(AssertUnwindSafe(|| run_one(&mut dev))) {
                                        Ok(Ok(result)) => {
                                            break ExperimentVerdict::Completed {
                                                index: planned.index,
                                                modelled_seconds: time_model.experiment_seconds(
                                                    &result.traffic,
                                                    golden.cycles(),
                                                ),
                                                attempts: attempt + 1,
                                                result,
                                            };
                                        }
                                        Ok(Err(e)) => e.to_string(),
                                        Err(payload) => panic_message(payload.as_ref()),
                                    }
                                }
                            };
                            // The attempt died mid-experiment: the device
                            // may hold a half-installed fault, so rebuild
                            // it from the pristine configuration.
                            dev = pristine.clone();
                            let retries = match mode {
                                ExecMode::Isolated { retries, .. } => *retries,
                                ExecMode::FailFast => 0,
                            };
                            if attempt >= retries {
                                fades_telemetry::dispatch::QUARANTINES.inc();
                                break ExperimentVerdict::Quarantined {
                                    index: planned.index,
                                    error,
                                    attempts: attempt + 1,
                                };
                            }
                            fades_telemetry::dispatch::RETRIES.inc();
                            attempt += 1;
                        };
                        if let (
                            Some(h),
                            ExperimentVerdict::Completed {
                                result,
                                modelled_seconds,
                                attempts,
                                ..
                            },
                        ) = (&rec, &verdict)
                        {
                            h.record(ExperimentRecord {
                                index: planned.index,
                                target: target.to_string(),
                                strategy: result.strategy.to_string(),
                                outcome: result.outcome.as_str(),
                                modelled_s: *modelled_seconds,
                                ops: result.traffic.ops as u64,
                                readback_ops: result.traffic.readback_ops as u64,
                                write_ops: result.traffic.write_ops as u64,
                                bulk_ops: result.traffic.bulk_ops as u64,
                                pulse_ops: result.traffic.pulse_ops as u64,
                                readback_bytes: result.traffic.readback_bytes,
                                write_bytes: result.traffic.write_bytes,
                                bulk_bytes: result.traffic.bulk_bytes,
                                skipped_cycles: result.skipped_cycles,
                                early_stop_cycles: result.early_stop_cycles,
                                wall_us: result.wall_us,
                                attempts: *attempts as u64,
                            });
                        }
                        if let ExecMode::Isolated {
                            observer: Some(f), ..
                        } = mode
                        {
                            f(&verdict);
                        }
                        *out = Some(verdict);
                    }
                    fades_telemetry::trace::clear_current_experiment();
                    Ok(())
                }));
            }
            for (h, slot) in handles.into_iter().zip(&in_flight) {
                match h.join() {
                    Ok(worker) => worker?,
                    Err(payload) => {
                        return Err(CoreError::ExperimentPanic {
                            index: slot.load(Ordering::Acquire),
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            Ok(())
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p))?;

        Ok(results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| unreachable!("all experiments decided")))
            .collect())
    }

    /// The paper's screening pass (§6.3): finds the flip-flop sites whose
    /// bit-flips can cause a Failure, by injecting `per_ff` flips into
    /// every used FF at random instants. The returned sites are the
    /// "registers eligible for being targeted by transient faults".
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn screen_sensitive_ffs(
        &self,
        per_ff: usize,
        seed: u64,
    ) -> Result<Vec<CbCoord>, CoreError> {
        let all = self.implementation.bitstream.used_ffs();
        let mut sensitive = Vec::new();
        for (i, &cb) in all.iter().enumerate() {
            let load =
                FaultLoad::bit_flips(TargetClass::FfSites(vec![cb]), DurationRange::SubCycle);
            let results = self.run_detailed(&load, per_ff, seed ^ ((i as u64 + 1) << 20))?;
            if results.iter().any(|r| r.outcome == crate::Outcome::Failure) {
                sensitive.push(cb);
            }
        }
        Ok(sensitive)
    }
}
