//! Fault-injection campaigns: thousands of experiments, run in parallel.

use fades_fpga::{CbCoord, Device};
use fades_netlist::Netlist;
use fades_pnr::Implementation;
use fades_telemetry::{ExperimentRecord, Recorder, RecorderHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::classify::OutcomeStats;
use crate::error::CoreError;
use crate::experiment::{run_experiment, ExperimentResult, FaultSchedule};
use crate::golden::GoldenRun;
use crate::location::{
    resolve_targets, sample_fault, DurationRange, FaultLoad, ResolvedFault, TargetClass,
};
use crate::strategies::strategy_for;
use crate::timing::TimeModel;

/// Tunables of a campaign run.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Worker threads (experiments are embarrassingly parallel; each
    /// worker clones the configured device).
    pub threads: usize,
    /// Extra cycles executed beyond the workload's nominal completion so
    /// delayed completions still count as observed differences.
    pub margin_cycles: u64,
    /// Whether experiments use the checkpointed fast-forward path
    /// (golden-prefix skip plus early-stop convergence detection). Both
    /// shortcuts change host wall-clock only — outcomes and modelled
    /// emulation time are identical to the full-simulation path.
    pub fastpath: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: worker_threads(),
            margin_cycles: 64,
            fastpath: fastpath_default(),
        }
    }
}

/// Default for [`CampaignConfig::fastpath`]: enabled unless the
/// `FADES_NO_FASTPATH` escape hatch is set to a non-empty value other
/// than `0` (kept available for equivalence testing and debugging).
///
/// Read per call — not cached — so one process can construct configs on
/// both paths (the equivalence test relies on this).
pub fn fastpath_default() -> bool {
    !matches!(std::env::var("FADES_NO_FASTPATH"), Ok(v) if !v.is_empty() && v != "0")
}

/// Campaign worker-thread count: `FADES_THREADS` when set to a positive
/// integer, otherwise `min(available_parallelism, 8)`.
///
/// Parsed once per process (and the "ignoring invalid" warning printed
/// at most once) — campaigns call this per run and the answer cannot
/// meaningfully change mid-process.
pub fn worker_threads() -> usize {
    static WORKER_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKER_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("FADES_THREADS") {
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => eprintln!("warning: ignoring invalid FADES_THREADS=`{v}`"),
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
    })
}

/// Aggregated results of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Outcome counts.
    pub outcomes: OutcomeStats,
    /// Modelled total emulation time of the whole campaign in seconds
    /// (the quantity of the paper's Figure 10 / Table 2).
    pub emulation_seconds: f64,
    /// Experiments executed.
    pub n: usize,
}

impl CampaignStats {
    /// Experiments executed.
    pub fn total(&self) -> usize {
        self.n
    }

    /// Mean modelled seconds per injected fault.
    pub fn mean_seconds_per_fault(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.emulation_seconds / self.n as f64
        }
    }
}

/// A prepared fault-injection campaign over one implemented design.
///
/// Holds the configured device, the golden run and the time model; each
/// [`run`](Campaign::run) executes a fault load against it. See the crate
/// documentation for an example.
#[derive(Debug)]
pub struct Campaign<'n> {
    netlist: &'n Netlist,
    implementation: Implementation,
    ports: Vec<String>,
    run_cycles: u64,
    golden: GoldenRun,
    device: Device,
    time_model: TimeModel,
    config: CampaignConfig,
}

impl<'n> Campaign<'n> {
    /// Prepares a campaign: configures the device, captures the golden
    /// run over `workload_cycles` plus a safety margin.
    ///
    /// # Errors
    ///
    /// Propagates device-configuration errors and unknown observed ports.
    pub fn new(
        netlist: &'n Netlist,
        implementation: Implementation,
        observed_ports: &[&str],
        workload_cycles: u64,
    ) -> Result<Self, CoreError> {
        Self::with_config(
            netlist,
            implementation,
            observed_ports,
            workload_cycles,
            CampaignConfig::default(),
        )
    }

    /// [`Campaign::new`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates device-configuration errors and unknown observed ports.
    pub fn with_config(
        netlist: &'n Netlist,
        implementation: Implementation,
        observed_ports: &[&str],
        workload_cycles: u64,
        config: CampaignConfig,
    ) -> Result<Self, CoreError> {
        let mut device = Device::configure(implementation.bitstream.clone())?;
        let ports: Vec<String> = observed_ports.iter().map(|s| s.to_string()).collect();
        let run_cycles = workload_cycles + config.margin_cycles;
        let golden = GoldenRun::capture(&mut device, &ports, run_cycles)?;
        let time_model = TimeModel::paper_calibrated(device.arch());
        Ok(Campaign {
            netlist,
            implementation,
            ports,
            run_cycles,
            golden,
            device,
            time_model,
            config,
        })
    }

    /// The golden run this campaign classifies against.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The implementation under test.
    pub fn implementation(&self) -> &Implementation {
        &self.implementation
    }

    /// The netlist under test.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The time model used for emulation-time reporting.
    pub fn time_model(&self) -> &TimeModel {
        &self.time_model
    }

    /// Experiment run length in cycles (workload plus margin).
    pub fn run_cycles(&self) -> u64 {
        self.run_cycles
    }

    /// Runs `n_faults` experiments of the given fault load and aggregates
    /// outcome statistics and modelled emulation time.
    ///
    /// # Errors
    ///
    /// Returns an error if the target class resolves to nothing, or if an
    /// experiment fails to reconfigure.
    pub fn run(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let label = load.target.to_string();
        self.run_named(&label, load, n_faults, seed)
    }

    /// [`run`](Campaign::run) with an explicit campaign label for the
    /// telemetry sinks (run log, summary table, `BENCH_campaign.json`).
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_named(
        &self,
        label: &str,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<CampaignStats, CoreError> {
        let threads = self.config.threads.max(1).min(n_faults.max(1));
        let recorder = Recorder::new(label, n_faults, threads);
        let results = self.run_instrumented(load, n_faults, seed, Some(&recorder))?;
        let mut stats = CampaignStats {
            n: results.len(),
            ..Default::default()
        };
        for r in &results {
            stats.outcomes.record(r.outcome);
            stats.emulation_seconds += self
                .time_model
                .experiment_seconds(&r.traffic, self.run_cycles);
        }
        recorder.finish();
        Ok(stats)
    }

    /// Like [`run`](Campaign::run), returning every per-experiment result.
    /// Does not feed the telemetry sinks (screening passes call this in a
    /// tight loop and would drown the run log).
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn run_detailed(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        self.run_instrumented(load, n_faults, seed, None)
    }

    fn run_instrumented(
        &self,
        load: &FaultLoad,
        n_faults: usize,
        seed: u64,
        recorder: Option<&Recorder>,
    ) -> Result<Vec<ExperimentResult>, CoreError> {
        // Sample the fault list deterministically up front so the result
        // is independent of thread count.
        let sites = resolve_targets(
            self.netlist,
            &self.implementation.map,
            &self.implementation.bitstream,
            &load.target,
        )?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan: Vec<(ResolvedFault, FaultSchedule, u64)> = Vec::with_capacity(n_faults);
        let workload_cycles = self.run_cycles - self.config.margin_cycles;
        for i in 0..n_faults {
            let fault = sample_fault(load, &sites, &self.implementation.bitstream, &mut rng)?;
            let inject_at = rng.gen_range(0..workload_cycles.max(1));
            let duration = load.duration.sample(&mut rng);
            plan.push((
                fault,
                FaultSchedule {
                    inject_at,
                    duration,
                },
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            ));
        }

        let sub_cycle = load.duration == DurationRange::SubCycle;
        let threads = self.config.threads.max(1).min(plan.len().max(1));
        let chunk = plan.len().div_ceil(threads);
        let mut results: Vec<Option<ExperimentResult>> = vec![None; plan.len()];
        let target_label = load.target.to_string();

        crossbeam::thread::scope(|scope| -> Result<(), CoreError> {
            let mut handles = Vec::new();
            for (t, (chunk_plan, chunk_out)) in plan
                .chunks(chunk)
                .zip(results.chunks_mut(chunk))
                .enumerate()
            {
                let mut dev = self.device.clone();
                let ports = &self.ports;
                let golden = &self.golden;
                let rec: Option<RecorderHandle> = recorder.map(Recorder::handle);
                let target = target_label.as_str();
                let time_model = &self.time_model;
                let fastpath = self.config.fastpath;
                let base = t * chunk;
                handles.push(scope.spawn(move |_| -> Result<(), CoreError> {
                    for (j, ((fault, schedule, exp_seed), out)) in
                        chunk_plan.iter().zip(chunk_out.iter_mut()).enumerate()
                    {
                        let _span = fades_telemetry::span!("experiment");
                        let mut rng = StdRng::seed_from_u64(*exp_seed);
                        let strategy = strategy_for(fault, sub_cycle);
                        let result = run_experiment(
                            &mut dev,
                            golden,
                            fault.clone(),
                            strategy,
                            *schedule,
                            ports,
                            &mut rng,
                            fastpath,
                        )?;
                        if let Some(h) = &rec {
                            h.record(ExperimentRecord {
                                index: (base + j) as u64,
                                target: target.to_string(),
                                strategy: result.strategy.to_string(),
                                outcome: result.outcome.as_str(),
                                modelled_s: time_model
                                    .experiment_seconds(&result.traffic, golden.cycles()),
                                ops: result.traffic.ops as u64,
                                readback_ops: result.traffic.readback_ops as u64,
                                write_ops: result.traffic.write_ops as u64,
                                bulk_ops: result.traffic.bulk_ops as u64,
                                pulse_ops: result.traffic.pulse_ops as u64,
                                readback_bytes: result.traffic.readback_bytes,
                                write_bytes: result.traffic.write_bytes,
                                bulk_bytes: result.traffic.bulk_bytes,
                                skipped_cycles: result.skipped_cycles,
                                early_stop_cycles: result.early_stop_cycles,
                                wall_us: result.wall_us,
                            });
                        }
                        *out = Some(result);
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("campaign worker panicked")?;
            }
            Ok(())
        })
        .expect("campaign scope panicked")?;

        Ok(results
            .into_iter()
            .map(|r| r.expect("all experiments completed"))
            .collect())
    }

    /// The paper's screening pass (§6.3): finds the flip-flop sites whose
    /// bit-flips can cause a Failure, by injecting `per_ff` flips into
    /// every used FF at random instants. The returned sites are the
    /// "registers eligible for being targeted by transient faults".
    ///
    /// # Errors
    ///
    /// See [`run`](Campaign::run).
    pub fn screen_sensitive_ffs(
        &self,
        per_ff: usize,
        seed: u64,
    ) -> Result<Vec<CbCoord>, CoreError> {
        let all = self.implementation.bitstream.used_ffs();
        let mut sensitive = Vec::new();
        for (i, &cb) in all.iter().enumerate() {
            let load =
                FaultLoad::bit_flips(TargetClass::FfSites(vec![cb]), DurationRange::SubCycle);
            let results = self.run_detailed(&load, per_ff, seed ^ ((i as u64 + 1) << 20))?;
            if results.iter().any(|r| r.outcome == crate::Outcome::Failure) {
                sensitive.push(cb);
            }
        }
        Ok(sensitive)
    }
}
