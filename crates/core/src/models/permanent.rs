//! Permanent fault models (the paper's §8 future work, implemented).

use std::fmt;

/// Permanent fault models emulated through run-time reconfiguration.
///
/// The paper closes by announcing "the extension of this framework to
/// cover a set of typical permanent faults ... such as short, open-line,
/// bridging and stuck-open faults". All four are implemented here with
/// mechanisms that — like the transient models — only touch configuration
/// memory:
///
/// * **Stuck-at** (short to a rail): the targeted LUT's truth table is
///   overwritten with a constant, or the targeted FF is driven through its
///   set/reset logic every cycle.
/// * **Open line**: a floating LUT input reads as a weak constant, so the
///   table is rewritten to be independent of that pin (pin tied high, the
///   usual behaviour of an open input on antifuse/SRAM parts).
/// * **Bridging**: two input lines of a LUT short together; the table is
///   rewritten so both pins observe the wired-AND of the pair.
/// * **Stuck-open**: one pass transistor inside the LUT's read tree stays
///   open, so a single truth-table entry produces the complemented value
///   (the classic CMOS stuck-open manifests sequentially; the
///   single-entry corruption is the standard combinational approximation).
///
/// Permanent faults are injected at experiment start and never removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PermanentFault {
    /// Line shorted to power or ground.
    StuckAt,
    /// Broken (floating) line.
    OpenLine,
    /// Two lines shorted together (wired-AND).
    Bridging,
    /// Transistor permanently open inside a function generator.
    StuckOpen,
}

impl fmt::Display for PermanentFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermanentFault::StuckAt => f.write_str("stuck-at"),
            PermanentFault::OpenLine => f.write_str("open-line"),
            PermanentFault::Bridging => f.write_str("bridging"),
            PermanentFault::StuckOpen => f.write_str("stuck-open"),
        }
    }
}

/// Truth-table transformations used by the permanent (and pulse) fault
/// mechanisms. Pure functions so they can be property-tested.
pub mod table_ops {
    /// Inverts the output line: every entry complemented.
    pub fn invert_output(table: u16) -> u16 {
        !table
    }

    /// Inverts input `pin`: entry `i` takes the value of entry
    /// `i ^ (1 << pin)`.
    pub fn invert_input(table: u16, pin: u8) -> u16 {
        let mut out = 0u16;
        for i in 0..16u16 {
            if (table >> (i ^ (1 << pin))) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Ties input `pin` to a constant (open-line model: floating input
    /// reads as `level`).
    pub fn tie_input(table: u16, pin: u8, level: bool) -> u16 {
        let mut out = 0u16;
        for i in 0..16u16 {
            let src = if level {
                i | (1 << pin)
            } else {
                i & !(1 << pin)
            };
            if (table >> src) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Shorts inputs `pin_a` and `pin_b` together as a wired-AND: both
    /// pins observe `a & b`.
    pub fn bridge_inputs(table: u16, pin_a: u8, pin_b: u8) -> u16 {
        let mut out = 0u16;
        for i in 0..16u16 {
            let a = (i >> pin_a) & 1;
            let b = (i >> pin_b) & 1;
            let v = a & b;
            let src = (i & !(1 << pin_a) & !(1 << pin_b)) | (v << pin_a) | (v << pin_b);
            if (table >> src) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Flips a single truth-table entry (stuck-open approximation).
    pub fn flip_entry(table: u16, entry: u8) -> u16 {
        table ^ (1 << (entry & 0x0F))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn invert_input_is_involutive() {
            for pin in 0..4 {
                for table in [0x1234u16, 0xFFFF, 0x0001, 0xCAFE] {
                    assert_eq!(invert_input(invert_input(table, pin), pin), table);
                }
            }
        }

        #[test]
        fn tie_input_removes_dependence() {
            let table = 0b1010_0101_1100_0011;
            for pin in 0..4u8 {
                let tied = tie_input(table, pin, true);
                // Output must be identical whether the pin is 0 or 1.
                for i in 0..16u16 {
                    let a = (tied >> i) & 1;
                    let b = (tied >> (i ^ (1 << pin))) & 1;
                    assert_eq!(a, b);
                }
            }
        }

        #[test]
        fn bridge_is_symmetric() {
            let table = 0x9B3D;
            assert_eq!(bridge_inputs(table, 0, 2), bridge_inputs(table, 2, 0));
        }

        #[test]
        fn flip_entry_touches_one_bit() {
            let t = 0x0F0F;
            let f = flip_entry(t, 5);
            assert_eq!((t ^ f).count_ones(), 1);
        }
    }
}
