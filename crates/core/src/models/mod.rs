//! Fault models and the Table 1 capability matrix.

pub mod permanent;

pub use permanent::PermanentFault;

use std::fmt;

/// The transient fault models of the paper (§4), plus the permanent models
/// it names as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Reversal of the state of a memory element; persists until
    /// rewritten.
    BitFlip,
    /// Temporary reversal of a combinational value (SET).
    Pulse,
    /// Increased propagation delay of a line.
    Delay,
    /// Undetermined voltage level, resolved by downstream buffers to an
    /// unpredictable but well-defined logic value.
    Indetermination,
    /// Simultaneous reversal of `n` memory elements (paper §7.2: the
    /// manifestation of a combinational fault captured by several
    /// registers; §8 names multiple bit-flips as future work).
    MultipleBitFlip(u8),
    /// A permanent fault model (paper §8 future work, implemented here).
    Permanent(PermanentFault),
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::BitFlip => f.write_str("bit-flip"),
            FaultModel::Pulse => f.write_str("pulse"),
            FaultModel::Delay => f.write_str("delay"),
            FaultModel::Indetermination => f.write_str("indetermination"),
            FaultModel::MultipleBitFlip(n) => write!(f, "{n}-bit-flip"),
            FaultModel::Permanent(p) => write!(f, "permanent/{p}"),
        }
    }
}

/// One row of the paper's Table 1: which FPGA resource a fault model
/// targets, through which mechanism, and the observation the paper makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapabilityRow {
    /// Fault model.
    pub model: FaultModel,
    /// FPGA resource targeted.
    pub fpga_target: &'static str,
    /// Reconfiguration mechanism.
    pub description: &'static str,
    /// Qualitative observation.
    pub observations: &'static str,
}

/// The emulation-capability matrix (paper Table 1), extended with the
/// permanent fault models this reproduction adds.
pub fn capability_matrix() -> Vec<CapabilityRow> {
    use FaultModel::*;
    vec![
        CapabilityRow {
            model: BitFlip,
            fpga_target: "FFs",
            description: "Pulse GSR line",
            observations: "Slower than LSR",
        },
        CapabilityRow {
            model: BitFlip,
            fpga_target: "FFs",
            description: "Pulse LSR line",
            observations: "Faster than GSR",
        },
        CapabilityRow {
            model: BitFlip,
            fpga_target: "Memory blocks",
            description: "Modify memory bit",
            observations: "No removal reconfiguration needed",
        },
        CapabilityRow {
            model: Pulse,
            fpga_target: "CB inputs",
            description: "Use the input inverter mux",
            observations: "Not applicable to LUT inputs",
        },
        CapabilityRow {
            model: Pulse,
            fpga_target: "LUTs",
            description: "Modify LUT contents",
            observations: "Covers output, input and internal lines",
        },
        CapabilityRow {
            model: Delay,
            fpga_target: "PMs",
            description: "Increase fan-out",
            observations: "Good for small delays",
        },
        CapabilityRow {
            model: Delay,
            fpga_target: "PMs",
            description: "Increase routing path",
            observations: "Good for large delays",
        },
        CapabilityRow {
            model: Indetermination,
            fpga_target: "FFs",
            description: "See bit-flip",
            observations: "Randomly generate the final value",
        },
        CapabilityRow {
            model: Indetermination,
            fpga_target: "LUTs",
            description: "See pulse",
            observations: "Randomly generate the final value",
        },
        CapabilityRow {
            model: Permanent(PermanentFault::StuckAt),
            fpga_target: "LUTs / FFs",
            description: "Constant truth table or repeated set/reset",
            observations: "Extension beyond the paper",
        },
        CapabilityRow {
            model: Permanent(PermanentFault::OpenLine),
            fpga_target: "LUT inputs",
            description: "Rewrite table to ignore the floating pin",
            observations: "Extension beyond the paper",
        },
        CapabilityRow {
            model: Permanent(PermanentFault::Bridging),
            fpga_target: "LUT inputs",
            description: "Rewrite table as wired-AND of two pins",
            observations: "Extension beyond the paper",
        },
        CapabilityRow {
            model: Permanent(PermanentFault::StuckOpen),
            fpga_target: "LUTs",
            description: "Flip one truth-table entry",
            observations: "Extension beyond the paper",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_four_transient_models() {
        let m = capability_matrix();
        for model in [
            FaultModel::BitFlip,
            FaultModel::Pulse,
            FaultModel::Delay,
            FaultModel::Indetermination,
        ] {
            assert!(m.iter().any(|row| row.model == model), "{model} missing");
        }
    }
}
