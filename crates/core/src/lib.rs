//! FADES: run-time-reconfiguration fault emulation for VLSI models.
//!
//! This crate is the reproduction of the paper's contribution — an
//! FPGA-based framework for the analysis of the dependability of embedded
//! systems. Given an implemented design (a bitstream plus the
//! HDL-element → resource map from `fades-pnr`), it emulates transient
//! faults *purely through run-time reconfiguration* of the simulated
//! device's configuration memory:
//!
//! | Fault model | FPGA target | Mechanism |
//! |---|---|---|
//! | Bit-flip | flip-flops | LSR pulse after reconfiguring the set/reset muxes (or the slow GSR variant) |
//! | Bit-flip | memory blocks | readback frame, flip bit, write frame |
//! | Pulse | LUTs | truth-table rewrite (output / input / internal line) |
//! | Pulse | CB inputs | toggle the `InvertFFinMux` control bit |
//! | Delay | routed wires | extra pass-transistor fan-out (small) or reroute through spare LUTs (large) |
//! | Indetermination | FFs / LUTs | randomised final logic value, optionally re-randomised every cycle |
//!
//! plus, as the paper's announced future work, the permanent fault models
//! stuck-at, open-line, bridging and stuck-open (see
//! [`models::PermanentFault`]).
//!
//! Campaigns ([`Campaign`]) run thousands of single-fault experiments,
//! classify each outcome as **Failure / Latent / Silent** against a golden
//! run, and account every configuration-port operation so that
//! [`TimeModel`] can report emulation time the way the paper's Figure 10
//! and Table 2 do.
//!
//! # Example
//!
//! ```
//! use fades_core::{Campaign, CampaignConfig, FaultLoad, TargetClass, DurationRange};
//! use fades_mcu8051::{build_soc, workloads};
//! use fades_fpga::ArchParams;
//!
//! let soc = build_soc(&workloads::bubblesort().rom)?;
//! let imp = fades_pnr::implement(&soc.netlist, ArchParams::virtex1000_like())?;
//! let campaign = Campaign::new(&soc.netlist, imp, &["p1", "p2"], 1400)?;
//!
//! let faultload = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
//! let stats = campaign.run(&faultload, 20, 0xC0FFEE)?;
//! assert_eq!(stats.total(), 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod batch;
mod campaign;
mod classify;
mod error;
mod experiment;
mod golden;
mod location;
pub mod models;
mod plan;
pub mod strategies;
mod timing;

pub use campaign::{
    batch_default, fastpath_default, static_default, warmstart_default, worker_threads, Campaign,
    CampaignConfig, CampaignStats,
};
pub use classify::{classify, Outcome, OutcomeStats};
pub use error::CoreError;
pub use experiment::{run_experiment, ExperimentResult, FaultSchedule};
pub use fades_fpga::sparse_default;
pub use golden::{GoldenRun, DEFAULT_CHECKPOINT_INTERVAL};
pub use location::{
    resolve_targets, sample_fault, DurationRange, FaultLoad, ResolvedFault, TargetClass, TargetSite,
};
pub use models::{FaultModel, PermanentFault};
pub use plan::{CampaignPlan, ExperimentVerdict, PlanAnnotation, PlannedExperiment};
pub use timing::TimeModel;
