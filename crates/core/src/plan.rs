//! Deterministic campaign plans: the shardable, resumable half of the
//! plan/execute split.
//!
//! A [`CampaignPlan`] is the fully-sampled fault list of one campaign —
//! every experiment's resolved fault, schedule and derived RNG seed,
//! tagged with its global index. Because sampling happens once, up
//! front, from the campaign seed alone, the plan is a pure function of
//! `(campaign, load, n_faults, seed)`: two processes that build the same
//! plan and execute disjoint [shards](CampaignPlan::shard) of it perform
//! exactly the experiments a single monolithic run would have, which is
//! what makes `fades-dispatch`'s shard/resume/merge workflow sound.

use std::collections::BTreeSet;

use crate::error::CoreError;
use crate::experiment::{ExperimentResult, FaultSchedule};
use crate::location::ResolvedFault;

/// A plan-time verdict attached to an experiment by the static
/// pre-classifier (`fades-analysis` cone-of-influence over the pristine
/// design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanAnnotation {
    /// No static knowledge; the experiment executes normally.
    #[default]
    None,
    /// The fault lands in provably dead logic and heals before it could
    /// matter: the outcome is Silent without running a single cycle. The
    /// executors still charge the modelled reconfiguration traffic and
    /// `emulation_seconds`, so campaign statistics stay bit-identical to
    /// a run that executed the experiment.
    StaticSilent,
}

/// One fully-sampled experiment of a campaign plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedExperiment {
    /// Global index within the monolithic plan (stable across sharding
    /// and resume; the journal and run-log key).
    pub index: u64,
    /// The concrete fault to inject.
    pub fault: ResolvedFault,
    /// When the fault is injected and for how long.
    pub schedule: FaultSchedule,
    /// Per-experiment RNG seed, derived from the campaign seed and the
    /// global index (so a shard replays exactly the monolithic stream).
    pub seed: u64,
    /// Static pre-classification verdict (a pure function of the plan
    /// inputs, so shards agree on it without communicating).
    pub annotation: PlanAnnotation,
}

/// The fully-sampled fault list of one campaign.
///
/// Built by [`Campaign::plan`](crate::Campaign::plan); executed by
/// [`Campaign::execute`](crate::Campaign::execute) (fail-fast) or
/// [`Campaign::execute_isolated`](crate::Campaign::execute_isolated)
/// (per-experiment panic containment).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Display label of the targeted element class (feeds the telemetry
    /// records, e.g. `"all FFs"`).
    pub target: String,
    /// Whether the load's duration range is sub-cycle (selects the
    /// sub-cycle injection strategies).
    pub sub_cycle: bool,
    /// The campaign seed the plan was sampled from.
    pub seed: u64,
    /// Experiments in the *monolithic* plan (a shard keeps this so the
    /// union proof and the merge completeness check know the universe).
    pub n_total: usize,
    /// The experiments of this plan (all of them for a monolithic plan,
    /// a subset with original indices for a shard).
    pub experiments: Vec<PlannedExperiment>,
}

impl CampaignPlan {
    /// Experiments in this plan (≤ [`n_total`](CampaignPlan::n_total)).
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the plan holds no experiments.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Deterministically partitions the plan: shard `index` of `count`
    /// keeps the experiments whose global index is congruent to `index`
    /// modulo `count` (strided, so long and short experiments spread
    /// evenly). The shards of any `count` are disjoint and their union is
    /// exactly this plan — no experiment is duplicated or dropped.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`. Callers handling
    /// untrusted geometry use [`try_shard`](CampaignPlan::try_shard).
    pub fn shard(&self, index: u32, count: u32) -> CampaignPlan {
        self.try_shard(index, count)
            .unwrap_or_else(|_| panic!("shard index {index} out of {count}"))
    }

    /// [`shard`](CampaignPlan::shard) with the geometry validated
    /// instead of asserted: `count == 0` or `index >= count` is a typed
    /// [`CoreError::ShardGeometry`], never a panic and never a silently
    /// empty shard.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShardGeometry`] on an impossible geometry.
    pub fn try_shard(&self, index: u32, count: u32) -> Result<CampaignPlan, CoreError> {
        if count == 0 || index >= count {
            return Err(CoreError::ShardGeometry { index, count });
        }
        Ok(CampaignPlan {
            target: self.target.clone(),
            sub_cycle: self.sub_cycle,
            seed: self.seed,
            n_total: self.n_total,
            experiments: self
                .experiments
                .iter()
                .filter(|e| e.index % count as u64 == index as u64)
                .cloned()
                .collect(),
        })
    }

    /// Drops the experiments whose global index is in `done` (journal
    /// replay during resume). Returns how many were dropped.
    pub fn retain_pending(&mut self, done: &BTreeSet<u64>) -> usize {
        let before = self.experiments.len();
        self.experiments.retain(|e| !done.contains(&e.index));
        before - self.experiments.len()
    }
}

/// The fate of one planned experiment under the isolating executor.
#[derive(Debug, Clone)]
pub enum ExperimentVerdict {
    /// The experiment ran to classification.
    Completed {
        /// Global plan index.
        index: u64,
        /// Modelled emulation seconds of this experiment (the paper's
        /// metric, precomputed so downstream sinks need no time model).
        modelled_seconds: f64,
        /// Execution attempts it took (1 = first try).
        attempts: u32,
        /// The classified result.
        result: ExperimentResult,
    },
    /// Every attempt panicked or errored; the experiment is set aside so
    /// the campaign can finish without it.
    Quarantined {
        /// Global plan index.
        index: u64,
        /// The final attempt's panic message or error.
        error: String,
        /// Execution attempts made before giving up.
        attempts: u32,
    },
}

impl ExperimentVerdict {
    /// The experiment's global plan index.
    pub fn index(&self) -> u64 {
        match self {
            ExperimentVerdict::Completed { index, .. }
            | ExperimentVerdict::Quarantined { index, .. } => *index,
        }
    }

    /// The completed result, if the experiment was not quarantined.
    pub fn result(&self) -> Option<&ExperimentResult> {
        match self {
            ExperimentVerdict::Completed { result, .. } => Some(result),
            ExperimentVerdict::Quarantined { .. } => None,
        }
    }
}

/// Chaos-testing hook: a deliberate panic injected into the experiment
/// executor, controlled by environment variables.
///
/// * `FADES_CHAOS_PANIC=<index>` — every attempt at that global
///   experiment index panics (drives an experiment into quarantine).
/// * `FADES_CHAOS_PANIC_ONCE=<index>` — only the first attempt panics
///   (exercises the retry-then-succeed path).
///
/// Test/chaos tooling only — both unset in normal operation. Read per
/// executor call, not cached, so one process can flip them between runs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChaosPanic {
    pub(crate) index: u64,
    pub(crate) first_attempt_only: bool,
}

impl ChaosPanic {
    pub(crate) fn from_env() -> Option<ChaosPanic> {
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        if let Some(index) = parse("FADES_CHAOS_PANIC") {
            return Some(ChaosPanic {
                index,
                first_attempt_only: false,
            });
        }
        parse("FADES_CHAOS_PANIC_ONCE").map(|index| ChaosPanic {
            index,
            first_attempt_only: true,
        })
    }

    /// Panics when this experiment/attempt is the configured victim.
    pub(crate) fn maybe_panic(self, index: u64, attempt: u32) {
        if self.index == index && (attempt == 0 || !self.first_attempt_only) {
            panic!("chaos: injected panic at experiment {index} (attempt {attempt})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::FaultSchedule;

    fn plan_of(n: u64) -> CampaignPlan {
        CampaignPlan {
            target: "all FFs".into(),
            sub_cycle: true,
            seed: 7,
            n_total: n as usize,
            experiments: (0..n)
                .map(|index| PlannedExperiment {
                    index,
                    fault: crate::location::ResolvedFault::FfBitFlip {
                        cb: fades_fpga::CbCoord::new(index as u16, 0),
                        via_gsr: false,
                    },
                    schedule: FaultSchedule {
                        inject_at: index,
                        duration: Some(1),
                    },
                    seed: index.wrapping_mul(0x9E37_79B9),
                    annotation: PlanAnnotation::None,
                })
                .collect(),
        }
    }

    #[test]
    fn shards_partition_without_loss_or_overlap() {
        let plan = plan_of(23);
        for count in [1u32, 2, 3, 5, 8, 23, 30] {
            let mut seen = BTreeSet::new();
            for index in 0..count {
                let shard = plan.shard(index, count);
                assert_eq!(shard.n_total, plan.n_total);
                for e in &shard.experiments {
                    assert!(seen.insert(e.index), "index {} duplicated", e.index);
                    assert_eq!(plan.experiments[e.index as usize], *e);
                }
            }
            assert_eq!(seen.len(), 23, "union of {count} shards covers the plan");
        }
    }

    #[test]
    fn try_shard_rejects_impossible_geometry() {
        let plan = plan_of(10);
        for (index, count) in [(0u32, 0u32), (3, 3), (5, 2), (u32::MAX, 16)] {
            match plan.try_shard(index, count) {
                Err(CoreError::ShardGeometry { index: i, count: c }) => {
                    assert_eq!((i, c), (index, count));
                }
                other => panic!("shard {index}/{count}: expected geometry error, got {other:?}"),
            }
        }
        // Valid geometry still shards.
        let ok = plan.try_shard(1, 3).unwrap();
        assert!(ok.experiments.iter().all(|e| e.index % 3 == 1));
    }

    #[test]
    fn retain_pending_drops_journaled_indices() {
        let mut plan = plan_of(10);
        let done: BTreeSet<u64> = [0u64, 3, 9].into_iter().collect();
        assert_eq!(plan.retain_pending(&done), 3);
        assert_eq!(plan.len(), 7);
        assert!(plan.experiments.iter().all(|e| !done.contains(&e.index)));
    }
}
