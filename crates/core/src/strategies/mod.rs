//! Run-time-reconfiguration injection strategies, one per fault mechanism.
//!
//! A strategy turns a [`ResolvedFault`](crate::location::ResolvedFault) into the
//! sequence of configuration-memory operations (readbacks, partial
//! reconfigurations, global pulses) the paper's Section 4 describes. Every
//! operation goes through the device's configuration port and is charged
//! to its transfer ledger — strategies never touch simulator state
//! directly, which is what keeps the emulation-time results honest.

mod bitflip;
mod delay;
mod indet;
mod permanent;
mod pulse;

pub use bitflip::{GsrBitFlip, LsrBitFlip, MemBitFlip, MultiBitFlip};
pub use delay::WireDelayFault;
pub use indet::{FfIndetFault, LutIndetFault};
pub use permanent::PermanentLutFault;
pub use pulse::{CbInputPulse, LutPulseFault};

use fades_fpga::ConfigAccess;
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::location::ResolvedFault;
use crate::models::PermanentFault;

/// A fault-injection strategy: the reconfiguration choreography of one
/// fault instance (paper Fig. 1).
pub trait InjectionStrategy: std::fmt::Debug + Send {
    /// Stable short name of the strategy, used by telemetry records and
    /// the JSONL run log (`strategy` field).
    fn name(&self) -> &'static str;

    /// Applies the fault. The device is paused between two clock edges at
    /// the injection instant.
    ///
    /// # Errors
    ///
    /// Returns an error if the targeted resource is not configured.
    fn inject(&mut self, dev: &mut dyn ConfigAccess, rng: &mut StdRng) -> Result<(), CoreError>;

    /// Called once per clock cycle while the fault is active (after the
    /// injection cycle). Only oscillating indeterminations and held
    /// stuck-at faults reconfigure here.
    ///
    /// # Errors
    ///
    /// Returns an error if reconfiguration fails.
    fn tick(&mut self, _dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        Ok(())
    }

    /// Removes the fault when its duration expires. Bit-flips and
    /// permanent faults do nothing here: a flipped state persists until
    /// rewritten (paper §4.1) and permanent faults never expire.
    ///
    /// # Errors
    ///
    /// Returns an error if reconfiguration fails.
    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError>;
}

/// Builds the strategy implementing a resolved fault.
///
/// `sub_cycle` selects the cheaper combined inject+remove reconfiguration
/// path for faults shorter than one clock cycle (paper §6.2 measures the
/// two pulse variants separately).
pub fn strategy_for(fault: &ResolvedFault, sub_cycle: bool) -> Box<dyn InjectionStrategy> {
    match fault.clone() {
        ResolvedFault::FfBitFlip { cb, via_gsr: false } => Box::new(LsrBitFlip::new(cb)),
        ResolvedFault::FfBitFlip { cb, via_gsr: true } => Box::new(GsrBitFlip::new(cb)),
        ResolvedFault::MemBitFlip { bram, addr, bit } => Box::new(MemBitFlip::new(bram, addr, bit)),
        ResolvedFault::MultiFfBitFlip { cbs } => Box::new(MultiBitFlip::new(cbs)),
        ResolvedFault::LutPulse { cb, line } => Box::new(LutPulseFault::new(cb, line, sub_cycle)),
        ResolvedFault::CbInputPulse { cb } => Box::new(CbInputPulse::new(cb)),
        ResolvedFault::WireDelay {
            wire,
            mech,
            full_download,
        } => Box::new(WireDelayFault::new(wire, mech, full_download)),
        ResolvedFault::FfIndet { cb, oscillating } => Box::new(FfIndetFault::new(cb, oscillating)),
        ResolvedFault::LutIndet { cb, oscillating } => {
            Box::new(LutIndetFault::new(cb, oscillating))
        }
        ResolvedFault::Permanent {
            kind,
            cb,
            pins,
            param,
            on_ff,
        } => {
            if on_ff && kind == PermanentFault::StuckAt {
                Box::new(permanent::StuckFf::new(cb, param & 1 == 1))
            } else {
                Box::new(PermanentLutFault::new(kind, cb, pins, param))
            }
        }
    }
}
