//! Delay strategies (paper §4.3).

use fades_fpga::{ConfigAccess, Mutation, WireId};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::location::DelayMech;
use crate::strategies::InjectionStrategy;

/// Delay fault on a routed wire.
///
/// Two mechanisms, as in the paper:
///
/// * **fan-out** (Fig. 8): turn on unused pass transistors along the line;
///   each adds a small capacitive load (fractions of a nanosecond) — good
///   for small delays;
/// * **reroute** (Fig. 7): break the line and route it through spare LUTs
///   configured as buffers; each contributes a whole LUT delay — good for
///   large delays.
///
/// The injected delay becomes a setup violation when it pushes a
/// register's data-arrival time past the clock period, at which point the
/// register captures the previous cycle's data (see
/// [`fades_fpga::TimingReport`]).
///
/// With `full_download` set (the default, reproducing the paper's §6.2
/// driver limitation), each phase ships a full configuration file instead
/// of the touched frames — which is why delays were the paper's most
/// expensive model to emulate.
#[derive(Debug, Clone)]
pub struct WireDelayFault {
    wire: WireId,
    mech: DelayMech,
    full_download: bool,
}

impl WireDelayFault {
    /// Targets the given wire.
    pub fn new(wire: WireId, mech: DelayMech, full_download: bool) -> Self {
        WireDelayFault {
            wire,
            mech,
            full_download,
        }
    }

    fn mutation(&self, restore: bool) -> Mutation {
        match self.mech {
            DelayMech::Fanout(extra) => Mutation::SetWireFanout {
                wire: self.wire,
                extra: if restore { 0 } else { extra },
            },
            DelayMech::Reroute(luts) => Mutation::SetWireDetour {
                wire: self.wire,
                luts: if restore { 0 } else { luts },
            },
        }
    }
}

impl WireDelayFault {
    fn reconfigure(&self, dev: &mut dyn ConfigAccess, restore: bool) -> Result<(), CoreError> {
        let mutation = self.mutation(restore);
        if self.full_download {
            dev.apply_via_full_download(&mutation)?;
        } else {
            dev.apply(&mutation)?;
        }
        Ok(())
    }
}

impl InjectionStrategy for WireDelayFault {
    fn name(&self) -> &'static str {
        "wire-delay"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        self.reconfigure(dev, false)
    }

    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        self.reconfigure(dev, true)
    }
}
