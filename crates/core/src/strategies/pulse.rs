//! Pulse strategies (paper §4.2).

use fades_fpga::{CbCoord, ConfigAccess, Mutation};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::location::LutLine;
use crate::models::permanent::table_ops;
use crate::strategies::InjectionStrategy;

/// Pulse in a function generator (paper Fig. 5): the truth table stored in
/// the LUT is extracted, recomputed with the targeted line inverted, and
/// written back; removal restores the original table.
///
/// For sub-cycle faults the tool performs a single compact
/// readback–write–write sequence; for longer faults the injection and the
/// removal are two separate reconfiguration passes, each re-extracting and
/// verifying the configuration (the paper's §6.2 notes the two-injection
/// implementation and measures it at roughly twice the sub-cycle cost).
#[derive(Debug, Clone)]
pub struct LutPulseFault {
    cb: CbCoord,
    line: LutLine,
    sub_cycle: bool,
    original: Option<u16>,
}

impl LutPulseFault {
    /// Targets a line of the given block's LUT.
    pub fn new(cb: CbCoord, line: LutLine, sub_cycle: bool) -> Self {
        LutPulseFault {
            cb,
            line,
            sub_cycle,
            original: None,
        }
    }

    fn faulty_table(&self, original: u16) -> u16 {
        match self.line {
            LutLine::Output => table_ops::invert_output(original),
            LutLine::Input(pin) => table_ops::invert_input(original, pin),
            LutLine::Internal(mask) => original ^ mask,
        }
    }
}

impl InjectionStrategy for LutPulseFault {
    fn name(&self) -> &'static str {
        "lut-pulse"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let original = dev.readback_lut_table(self.cb)?;
        self.original = Some(original);
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: self.faulty_table(original),
        })?;
        if !self.sub_cycle {
            // Long faults verify the injected table before resuming.
            let _ = dev.readback_lut_table(self.cb)?;
        }
        Ok(())
    }

    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        let original = self
            .original
            .take()
            .unwrap_or_else(|| unreachable!("remove follows inject"));
        if !self.sub_cycle {
            // Re-extract before restoring, guarding against configuration
            // upsets during the fault window, and verify afterwards.
            let _ = dev.readback_lut_table(self.cb)?;
        }
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: original,
        })?;
        if !self.sub_cycle {
            let _ = dev.readback_lut_table(self.cb)?;
        }
        Ok(())
    }
}

/// Pulse on a combinational path entering a CB (paper Fig. 6): the input
/// inverter multiplexer's control bit is toggled for the fault duration.
#[derive(Debug, Clone)]
pub struct CbInputPulse {
    cb: CbCoord,
}

impl CbInputPulse {
    /// Targets the FF input path of the given block.
    pub fn new(cb: CbCoord) -> Self {
        CbInputPulse { cb }
    }
}

impl InjectionStrategy for CbInputPulse {
    fn name(&self) -> &'static str {
        "cb-input-pulse"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        dev.apply(&Mutation::SetInvertFfIn {
            cb: self.cb,
            invert: true,
        })?;
        Ok(())
    }

    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        dev.apply(&Mutation::SetInvertFfIn {
            cb: self.cb,
            invert: false,
        })?;
        Ok(())
    }
}
