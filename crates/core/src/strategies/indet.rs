//! Indetermination strategies (paper §4.4).
//!
//! An indetermination leaves the target at a voltage between the logic
//! thresholds; downstream buffers resolve it to a well-defined but
//! unpredictable level. The paper therefore emulates it with a
//! *randomiser*: the final logic level is drawn at random and installed
//! with the bit-flip (sequential) or pulse (combinational) mechanism.
//! Optionally the level oscillates, forcing one reconfiguration per clock
//! cycle of fault duration — the expensive case §6.2 measures at 4605 s.

use fades_fpga::{CbCoord, ConfigAccess, Mutation, SetReset};
use rand::rngs::StdRng;
use rand::Rng;

use crate::error::CoreError;
use crate::strategies::InjectionStrategy;

/// Indetermination in a flip-flop: the stored value resolves to a random
/// level which is *held* for the fault duration.
///
/// The injection mirrors the LSR bit-flip (capture readback, `CLRMux`/
/// `PRMux` reconfiguration) but leaves the local set/reset line asserted
/// at a random level for the whole window — the node is physically
/// undetermined for the fault duration, so its digital resolution must be
/// imposed for as long as the fault lasts. Holding the line costs nothing;
/// the assert and the release are each one reconfiguration. In the
/// oscillating variant the level is re-randomised with one merged frame
/// write per cycle (the expensive case of paper §6.2).
#[derive(Debug, Clone)]
pub struct FfIndetFault {
    cb: CbCoord,
    oscillating: bool,
    drive: SetReset,
}

impl FfIndetFault {
    /// Targets the flip-flop of the given block.
    pub fn new(cb: CbCoord, oscillating: bool) -> Self {
        FfIndetFault {
            cb,
            oscillating,
            drive: SetReset::Reset,
        }
    }
}

impl InjectionStrategy for FfIndetFault {
    fn name(&self) -> &'static str {
        "ff-indetermination"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, rng: &mut StdRng) -> Result<(), CoreError> {
        // The tool logs the pre-fault state for the experiment record.
        let _pre = dev.readback_ff(self.cb)?;
        self.drive = SetReset::driving(rng.gen());
        dev.apply(&Mutation::SetLsrDrive {
            cb: self.cb,
            drive: self.drive,
        })?;
        dev.apply(&Mutation::PulseLsr { cb: self.cb })?;
        Ok(())
    }

    fn tick(&mut self, dev: &mut dyn ConfigAccess, rng: &mut StdRng) -> Result<(), CoreError> {
        if self.oscillating {
            // One merged frame write per cycle: new CLR/PR selection plus
            // the set/reset assertion land in the same reconfiguration.
            self.drive = SetReset::driving(rng.gen());
            dev.apply(&Mutation::ReRandomiseFf {
                cb: self.cb,
                drive: self.drive,
            })?;
        } else {
            // The line simply stays asserted: no configuration traffic.
            dev.hold_lsr(self.cb)?;
        }
        Ok(())
    }

    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        // De-assert the set/reset line (restore the InvertLSRMux bit); the
        // last random level stays in the flip-flop until rewritten.
        dev.apply(&Mutation::SetLsrDrive {
            cb: self.cb,
            drive: self.drive,
        })?;
        Ok(())
    }
}

/// Indetermination in a function generator: the LUT output resolves to a
/// random constant level for the fault duration (paper: "any procedure
/// capable of modifying the logical value ... is eligible"; the mechanism
/// is the pulse scheme of §4.2 with a randomised table).
#[derive(Debug, Clone)]
pub struct LutIndetFault {
    cb: CbCoord,
    oscillating: bool,
    original: Option<u16>,
}

impl LutIndetFault {
    /// Targets the LUT of the given block.
    pub fn new(cb: CbCoord, oscillating: bool) -> Self {
        LutIndetFault {
            cb,
            oscillating,
            original: None,
        }
    }
}

impl InjectionStrategy for LutIndetFault {
    fn name(&self) -> &'static str {
        "lut-indetermination"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, rng: &mut StdRng) -> Result<(), CoreError> {
        let original = dev.readback_lut_table(self.cb)?;
        self.original = Some(original);
        let level = if rng.gen() { 0xFFFFu16 } else { 0x0000 };
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: level,
        })?;
        Ok(())
    }

    fn tick(&mut self, dev: &mut dyn ConfigAccess, rng: &mut StdRng) -> Result<(), CoreError> {
        if !self.oscillating {
            return Ok(());
        }
        let level = if rng.gen() { 0xFFFFu16 } else { 0x0000 };
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: level,
        })?;
        Ok(())
    }

    fn remove(&mut self, dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        let original = self
            .original
            .take()
            .unwrap_or_else(|| unreachable!("remove follows inject"));
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: original,
        })?;
        Ok(())
    }
}
