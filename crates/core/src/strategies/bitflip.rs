//! Bit-flip strategies (paper §4.1).

use fades_fpga::{BramId, CbCoord, ConfigAccess, Mutation, SetReset};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::strategies::InjectionStrategy;

/// Bit-flip of a flip-flop through its **local** set/reset line: the fast
/// mechanism the paper proposed in its earlier work and uses throughout.
///
/// Choreography: read back the FF's current state (one capture frame),
/// reconfigure its `CLRMux`/`PRMux` so the set/reset line drives the
/// *inverted* value (one frame), then pulse the line by toggling and
/// restoring `InvertLSRMux` (the same frame written twice). The flipped
/// state persists until the application rewrites it, so no removal
/// reconfiguration is performed.
#[derive(Debug, Clone)]
pub struct LsrBitFlip {
    cb: CbCoord,
}

impl LsrBitFlip {
    /// Targets the flip-flop of the given block.
    pub fn new(cb: CbCoord) -> Self {
        LsrBitFlip { cb }
    }
}

impl InjectionStrategy for LsrBitFlip {
    fn name(&self) -> &'static str {
        "lsr-bitflip"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let current = dev.readback_ff(self.cb)?;
        dev.apply(&Mutation::SetLsrDrive {
            cb: self.cb,
            drive: SetReset::driving(!current),
        })?;
        dev.apply(&Mutation::PulseLsr { cb: self.cb })?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(()) // A bit-flip remains until rewritten (paper §4.1).
    }
}

/// Bit-flip of a flip-flop through the **global** set/reset line: the slow
/// alternative the paper describes for completeness.
///
/// Because GSR touches *every* flip-flop, the strategy must read back the
/// whole device's FF state (one capture frame per used column), then
/// reconfigure every FF's `CLRMux`/`PRMux` so the pulse restores each
/// current value — except the target, which gets the inverted value —
/// before pulsing GSR. The large readback and mux-rewrite traffic is
/// exactly why the paper prefers the LSR mechanism.
#[derive(Debug, Clone)]
pub struct GsrBitFlip {
    cb: CbCoord,
}

impl GsrBitFlip {
    /// Targets the flip-flop of the given block.
    pub fn new(cb: CbCoord) -> Self {
        GsrBitFlip { cb }
    }
}

impl InjectionStrategy for GsrBitFlip {
    fn name(&self) -> &'static str {
        "gsr-bitflip"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let states = dev.readback_all_ffs();
        let drives: Vec<(CbCoord, SetReset)> = states
            .into_iter()
            .map(|(cb, value)| {
                let keep = if cb == self.cb { !value } else { value };
                (cb, SetReset::driving(keep))
            })
            .collect();
        dev.bulk_set_lsr_drives(&drives)?;
        dev.apply(&Mutation::PulseGsr)?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(())
    }
}

/// Simultaneous bit-flip of several flip-flops (paper §7.2): the GSR
/// choreography generalises naturally — one whole-device state readback,
/// one bulk `CLRMux`/`PRMux` rewrite that inverts every *targeted* FF
/// while preserving the rest, one global pulse. This is how a
/// combinational fault's multi-register manifestation is emulated
/// directly in sequential logic.
#[derive(Debug, Clone)]
pub struct MultiBitFlip {
    cbs: Vec<CbCoord>,
}

impl MultiBitFlip {
    /// Targets the flip-flops of the given blocks.
    pub fn new(cbs: Vec<CbCoord>) -> Self {
        MultiBitFlip { cbs }
    }
}

impl InjectionStrategy for MultiBitFlip {
    fn name(&self) -> &'static str {
        "multi-bitflip"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let states = dev.readback_all_ffs();
        let drives: Vec<(CbCoord, SetReset)> = states
            .into_iter()
            .map(|(cb, value)| {
                let target = self.cbs.contains(&cb);
                (cb, SetReset::driving(value ^ target))
            })
            .collect();
        dev.bulk_set_lsr_drives(&drives)?;
        dev.apply(&Mutation::PulseGsr)?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(())
    }
}

/// Bit-flip of a stored memory bit (paper §4.1, Fig. 4): read the content
/// frame back, flip the bit, write the frame. No removal is needed — the
/// fault persists until the application rewrites the word.
#[derive(Debug, Clone)]
pub struct MemBitFlip {
    bram: BramId,
    addr: usize,
    bit: u32,
}

impl MemBitFlip {
    /// Targets one stored bit.
    pub fn new(bram: BramId, addr: usize, bit: u32) -> Self {
        MemBitFlip { bram, addr, bit }
    }
}

impl InjectionStrategy for MemBitFlip {
    fn name(&self) -> &'static str {
        "mem-bitflip"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let word = dev.readback_bram_word(self.bram, self.addr)?;
        let flipped = (word >> self.bit) & 1 == 0;
        dev.apply(&Mutation::SetBramBit {
            bram: self.bram,
            addr: self.addr,
            bit: self.bit,
            value: flipped,
        })?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(())
    }
}
