//! Permanent fault strategies (the paper's §8 future work, implemented).

use fades_fpga::{CbCoord, ConfigAccess, Mutation, SetReset};
use rand::rngs::StdRng;

use crate::error::CoreError;
use crate::models::permanent::table_ops;
use crate::models::PermanentFault;
use crate::strategies::InjectionStrategy;

/// A permanent fault in a function generator, emulated by a one-shot
/// truth-table rewrite that is never undone (see
/// [`PermanentFault`] for the per-model mechanisms).
#[derive(Debug, Clone)]
pub struct PermanentLutFault {
    kind: PermanentFault,
    cb: CbCoord,
    pins: [u8; 2],
    param: u16,
}

impl PermanentLutFault {
    /// Targets the LUT of the given block.
    ///
    /// `pins` selects the affected input line(s) (open-line uses the
    /// first, bridging both); `param` carries the stuck level or the
    /// stuck-open entry index.
    pub fn new(kind: PermanentFault, cb: CbCoord, pins: [u8; 2], param: u16) -> Self {
        PermanentLutFault {
            kind,
            cb,
            pins,
            param,
        }
    }
}

impl InjectionStrategy for PermanentLutFault {
    fn name(&self) -> &'static str {
        "permanent-lut"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        let original = dev.readback_lut_table(self.cb)?;
        let faulty = match self.kind {
            PermanentFault::StuckAt => {
                if self.param & 1 == 1 {
                    0xFFFF
                } else {
                    0x0000
                }
            }
            PermanentFault::OpenLine => {
                // A floating SRAM-FPGA input reads as a weak high.
                table_ops::tie_input(original, self.pins[0] & 3, true)
            }
            PermanentFault::Bridging => {
                let a = self.pins[0] & 3;
                let mut b = self.pins[1] & 3;
                if a == b {
                    b = (a + 1) & 3;
                }
                table_ops::bridge_inputs(original, a, b)
            }
            PermanentFault::StuckOpen => table_ops::flip_entry(original, self.param as u8),
        };
        dev.apply(&Mutation::SetLutTable {
            cb: self.cb,
            table: faulty,
        })?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(()) // Permanent faults are never removed.
    }
}

/// A flip-flop permanently stuck at a level: its set/reset logic is
/// reconfigured once, then the local set/reset line is pulsed on every
/// cycle to hold the value against the application's writes.
#[derive(Debug, Clone)]
pub struct StuckFf {
    cb: CbCoord,
    level: bool,
}

impl StuckFf {
    /// Targets the flip-flop of the given block.
    pub fn new(cb: CbCoord, level: bool) -> Self {
        StuckFf { cb, level }
    }
}

impl InjectionStrategy for StuckFf {
    fn name(&self) -> &'static str {
        "stuck-ff"
    }

    fn inject(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        dev.apply(&Mutation::SetLsrDrive {
            cb: self.cb,
            drive: SetReset::driving(self.level),
        })?;
        dev.apply(&Mutation::PulseLsr { cb: self.cb })?;
        Ok(())
    }

    fn tick(&mut self, dev: &mut dyn ConfigAccess, _rng: &mut StdRng) -> Result<(), CoreError> {
        dev.apply(&Mutation::PulseLsr { cb: self.cb })?;
        Ok(())
    }

    fn remove(&mut self, _dev: &mut dyn ConfigAccess) -> Result<(), CoreError> {
        Ok(())
    }
}
