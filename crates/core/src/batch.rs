//! Lane-cohort execution: up to 63 experiments per simulated pass.
//!
//! The campaign layer groups lane-expressible plan entries into cohorts
//! and runs each cohort on one [`BatchDevice`]: lane 0 replays the golden
//! run, lanes `1..=63` each carry one experiment. A lane whose
//! configuration has returned to pristine *and* whose sequential state
//! has reconverged with lane 0 is provably golden for every remaining
//! cycle, so it retires immediately — outcome decided — and is refilled
//! from the pending plan if an experiment with a not-yet-passed injection
//! instant remains. Entries whose injection instant has already passed
//! when a lane frees up wait for the next pass.
//!
//! The choreography per lane is cycle-for-cycle the scalar
//! [`run_experiment`](crate::experiment::run_experiment) flow — same
//! inject/tick/settle/observe/edge/remove order, same readback values,
//! same ledger traffic — which is what the differential test suite pins
//! down: outcomes, traffic and modelled emulation seconds are
//! bit-identical to the scalar path.

use std::time::Instant;

use fades_fpga::{BatchDevice, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classify::Outcome;
use crate::error::CoreError;
use crate::experiment::ExperimentResult;
use crate::golden::GoldenRun;
use crate::location::ResolvedFault;
use crate::plan::PlannedExperiment;
use crate::strategies::{strategy_for, InjectionStrategy};
use crate::timing::LedgerSummary;

/// Whether the lane engine can express this fault.
///
/// Routing mutations alter static timing, which all lanes share, and
/// oscillating indeterminations reconfigure every cycle of their window
/// (defeating retirement and costing a full per-cycle mutation per lane),
/// so both run on the scalar per-experiment path instead.
pub(crate) fn lane_expressible(fault: &ResolvedFault) -> bool {
    !matches!(
        fault,
        ResolvedFault::WireDelay { .. }
            | ResolvedFault::FfIndet {
                oscillating: true,
                ..
            }
            | ResolvedFault::LutIndet {
                oscillating: true,
                ..
            }
    )
}

/// One occupied lane: the experiment it carries and its execution state.
struct LaneSlot<'p> {
    planned: &'p PlannedExperiment,
    strategy: Box<dyn InjectionStrategy>,
    rng: StdRng,
    diverged: bool,
    started: Instant,
}

impl<'p> LaneSlot<'p> {
    fn new(planned: &'p PlannedExperiment, sub_cycle: bool) -> Self {
        LaneSlot {
            planned,
            strategy: strategy_for(&planned.fault, sub_cycle),
            rng: StdRng::seed_from_u64(planned.seed),
            diverged: false,
            started: Instant::now(),
        }
    }

    fn finish(
        self,
        batch: &BatchDevice,
        lane: usize,
        outcome: Outcome,
        early_stop_cycles: u64,
    ) -> (u64, ExperimentResult) {
        (
            self.planned.index,
            ExperimentResult {
                fault: self.planned.fault.clone(),
                schedule: self.planned.schedule,
                outcome,
                traffic: LedgerSummary::from(batch.ledger(lane)),
                strategy: self.strategy.name(),
                wall_us: self.started.elapsed().as_micros() as u64,
                skipped_cycles: 0,
                early_stop_cycles,
            },
        )
    }
}

/// Runs every entry of `entries` through the lane engine, one experiment
/// per lane, over as many passes as refilling requires. Returns
/// `(plan index, result)` pairs in ascending plan-index order.
pub(crate) fn run_lane_cohorts<'p>(
    batch: &mut BatchDevice,
    golden: &GoldenRun,
    ports: &[String],
    sub_cycle: bool,
    entries: &[&'p PlannedExperiment],
) -> Result<Vec<(u64, ExperimentResult)>, CoreError> {
    let run_cycles = golden.cycles();
    for e in entries {
        if e.schedule.inject_at >= run_cycles {
            return Err(CoreError::BadSchedule {
                at: e.schedule.inject_at,
                run_cycles,
            });
        }
    }
    let port_wires: Vec<Vec<u32>> = ports
        .iter()
        .map(|p| {
            batch
                .output_wires(p)
                .map_err(|_| CoreError::UnknownPort(p.clone()))
        })
        .collect::<Result<_, _>>()?;

    // Ascending injection instants maximise refills: a freed lane can
    // only take an entry whose injection instant has not yet passed.
    let mut pending: Vec<&'p PlannedExperiment> = entries.to_vec();
    pending.sort_by_key(|e| (e.schedule.inject_at, e.index));

    let mut results: Vec<(u64, ExperimentResult)> = Vec::with_capacity(entries.len());
    while !pending.is_empty() {
        batch.reset();
        let mut slots: Vec<Option<LaneSlot<'p>>> = (0..LANES).map(|_| None).collect();
        let mut occupied = 0usize;
        let mut cursor = 0usize;
        let mut leftovers: Vec<&'p PlannedExperiment> = Vec::new();
        for slot in slots.iter_mut().skip(1) {
            let Some(&planned) = pending.get(cursor) else {
                break;
            };
            cursor += 1;
            *slot = Some(LaneSlot::new(planned, sub_cycle));
            occupied += 1;
        }

        for cycle in 0..run_cycles {
            // Retire reconverged lanes at the top of the cycle (the batch
            // analogue of the scalar early-stop hash check, by true
            // equality — equal state and pristine config imply the hash
            // check passes too).
            let any_inert = slots
                .iter()
                .flatten()
                .any(|s| s.planned.schedule.inert_at(cycle));
            if any_inert {
                let seq = batch.seq_divergence();
                let conf = batch.config_divergence();
                for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
                    let retire = entry.as_ref().is_some_and(|s| {
                        s.planned.schedule.inert_at(cycle)
                            && (seq >> lane) & 1 == 0
                            && (conf >> lane) & 1 == 0
                    });
                    if !retire {
                        continue;
                    }
                    let slot = entry.take().expect("retire checked occupancy");
                    occupied -= 1;
                    let outcome = if slot.diverged {
                        Outcome::Failure
                    } else {
                        Outcome::Silent
                    };
                    fades_telemetry::sim::record_lane_retirement();
                    results.push(slot.finish(batch, lane, outcome, run_cycles - cycle));
                    // Refill: skip entries whose injection instant has
                    // already passed (they wait for the next pass).
                    while pending
                        .get(cursor)
                        .is_some_and(|e| e.schedule.inject_at < cycle)
                    {
                        leftovers.push(pending[cursor]);
                        cursor += 1;
                    }
                    if let Some(&planned) = pending.get(cursor) {
                        cursor += 1;
                        batch.refill_lane(lane);
                        *entry = Some(LaneSlot::new(planned, sub_cycle));
                        occupied += 1;
                    }
                }
            }
            if occupied == 0 {
                break;
            }
            for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
                if let Some(s) = entry {
                    if cycle == s.planned.schedule.inject_at {
                        s.strategy.inject(&mut batch.lane(lane), &mut s.rng)?;
                    } else if s.planned.schedule.active(cycle) {
                        s.strategy.tick(&mut batch.lane(lane), &mut s.rng)?;
                    }
                }
            }
            batch.settle();
            match golden.trace().row(cycle as usize) {
                Some(row) => {
                    let mut diff = 0u64;
                    for (wires, &g) in port_wires.iter().zip(row) {
                        diff |= batch.port_divergence(wires, g);
                    }
                    if diff != 0 {
                        for (lane, s) in slots.iter_mut().enumerate() {
                            if (diff >> lane) & 1 == 1 {
                                if let Some(s) = s {
                                    s.diverged = true;
                                }
                            }
                        }
                    }
                }
                None => {
                    for s in slots.iter_mut().flatten() {
                        s.diverged = true;
                    }
                }
            }
            batch.clock_edge();
            fades_telemetry::sim::record_lane_cycle(occupied as u64);
            for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
                if let Some(s) = entry {
                    if s.planned.schedule.expires_after(cycle) {
                        s.strategy.remove(&mut batch.lane(lane))?;
                    }
                }
            }
        }

        // Lanes still occupied at the end of the pass: remove an
        // outliving fault (its removal traffic belongs to this
        // experiment's ledger, exactly as in the scalar flow), then
        // classify against the golden final state.
        for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
            if let Some(mut slot) = entry.take() {
                if slot.planned.schedule.outlives(run_cycles) {
                    slot.strategy.remove(&mut batch.lane(lane))?;
                }
                let outcome = if slot.diverged {
                    Outcome::Failure
                } else if batch.state_snapshot_lane(lane).as_slice() != golden.final_state() {
                    Outcome::Latent
                } else {
                    Outcome::Silent
                };
                results.push(slot.finish(batch, lane, outcome, 0));
            }
        }

        leftovers.extend_from_slice(&pending[cursor..]);
        pending = leftovers;
    }

    results.sort_by_key(|(index, _)| *index);
    Ok(results)
}
