//! Lane-cohort execution: up to 63 experiments per simulated pass.
//!
//! The campaign layer groups lane-expressible plan entries into cohorts
//! and runs each cohort on one [`BatchDevice`]: lane 0 replays the golden
//! run, lanes `1..=63` each carry one experiment. A lane whose
//! configuration has returned to pristine *and* whose sequential state
//! has reconverged with lane 0 is provably golden for every remaining
//! cycle, so it retires immediately — outcome decided — and is refilled
//! from the pending plan if an experiment with a not-yet-passed injection
//! instant remains. Entries whose injection instant has already passed
//! when a lane frees up wait for the next pass.
//!
//! The choreography per lane is cycle-for-cycle the scalar
//! [`run_experiment`](crate::experiment::run_experiment) flow — same
//! inject/tick/settle/observe/edge/remove order, same readback values,
//! same ledger traffic — which is what the differential test suite pins
//! down: outcomes, traffic and modelled emulation seconds are
//! bit-identical to the scalar path.
//!
//! # Wall-clock attribution
//!
//! The cohort's wall clock is *shared*: 63 concurrent lanes advance on
//! one host instruction stream. Each retirement (and the end of the
//! pass) charges the clock advanced since the previous charge point,
//! divided evenly across the lanes that were occupied over that
//! interval, to those lanes. Summed `wall_us` across a cohort therefore
//! equals the cohort's elapsed wall within rounding noise — per-fault
//! host cost is the per-fault *share*, not the whole word's residency.

use std::time::Instant;

use fades_fpga::{BatchDevice, LANES};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classify::Outcome;
use crate::error::CoreError;
use crate::experiment::ExperimentResult;
use crate::golden::GoldenRun;
use crate::location::ResolvedFault;
use crate::plan::{ChaosPanic, PlannedExperiment};
use crate::strategies::{strategy_for, InjectionStrategy};
use crate::timing::LedgerSummary;

/// Whether the lane engine can express this fault.
///
/// Routing mutations alter static timing, which all lanes share, and
/// oscillating indeterminations reconfigure every cycle of their window
/// (defeating retirement and costing a full per-cycle mutation per lane),
/// so both run on the scalar per-experiment path instead.
pub(crate) fn lane_expressible(fault: &ResolvedFault) -> bool {
    !matches!(
        fault,
        ResolvedFault::WireDelay { .. }
            | ResolvedFault::FfIndet {
                oscillating: true,
                ..
            }
            | ResolvedFault::LutIndet {
                oscillating: true,
                ..
            }
    )
}

/// Validates the entries against the golden run length and resolves the
/// observed ports to lane-engine wire lists — the shared prologue of
/// every cohort loop.
pub(crate) fn lane_prologue(
    batch: &BatchDevice,
    golden: &GoldenRun,
    ports: &[String],
    entries: &[&PlannedExperiment],
) -> Result<Vec<Vec<u32>>, CoreError> {
    let run_cycles = golden.cycles();
    for e in entries {
        if e.schedule.inject_at >= run_cycles {
            return Err(CoreError::BadSchedule {
                at: e.schedule.inject_at,
                run_cycles,
            });
        }
    }
    ports
        .iter()
        .map(|p| {
            batch
                .output_wires(p)
                .map_err(|_| CoreError::UnknownPort(p.clone()))
        })
        .collect()
}

/// The cohort's shared wall clock: charges elapsed intervals evenly
/// across the lanes occupied over them.
struct CohortClock {
    started: Instant,
    marked_us: f64,
}

impl CohortClock {
    fn start() -> Self {
        CohortClock {
            started: Instant::now(),
            marked_us: 0.0,
        }
    }

    /// Charges the clock advanced since the last charge point to the
    /// currently occupied lanes, one equal share each. Call *before*
    /// removing a retiring lane — it was occupied over the interval.
    fn charge(&mut self, slots: &mut [Option<LaneSlot<'_>>]) {
        let now_us = self.started.elapsed().as_secs_f64() * 1e6;
        let delta = now_us - self.marked_us;
        self.marked_us = now_us;
        let occupied = slots.iter().flatten().count();
        if occupied == 0 {
            return;
        }
        let share = delta / occupied as f64;
        for slot in slots.iter_mut().flatten() {
            slot.charged_us += share;
        }
    }
}

/// One occupied lane: the experiment it carries and its execution state.
struct LaneSlot<'p> {
    planned: &'p PlannedExperiment,
    strategy: Box<dyn InjectionStrategy>,
    rng: StdRng,
    diverged: bool,
    /// Share of the cohort wall clock charged to this lane so far (µs).
    charged_us: f64,
}

impl<'p> LaneSlot<'p> {
    fn new(planned: &'p PlannedExperiment, sub_cycle: bool) -> Self {
        LaneSlot {
            planned,
            strategy: strategy_for(&planned.fault, sub_cycle),
            rng: StdRng::seed_from_u64(planned.seed),
            diverged: false,
            charged_us: 0.0,
        }
    }

    fn finish(
        self,
        batch: &BatchDevice,
        lane: usize,
        outcome: Outcome,
        early_stop_cycles: u64,
    ) -> (u64, ExperimentResult) {
        (
            self.planned.index,
            ExperimentResult {
                fault: self.planned.fault.clone(),
                schedule: self.planned.schedule,
                outcome,
                traffic: LedgerSummary::from(batch.ledger(lane)),
                strategy: self.strategy.name(),
                wall_us: self.charged_us.round() as u64,
                skipped_cycles: 0,
                early_stop_cycles,
            },
        )
    }
}

/// Deposits the per-experiment telemetry a lane retirement owes: the
/// `experiment` phase histogram entry and — when Chrome tracing is on —
/// a completed span of the lane's charged wall ending now. Lane spans
/// overlap on one thread (the word runs up to 63 experiments at once),
/// which the trace renders faithfully.
fn trace_retirement(index: u64, wall_us: u64) {
    fades_telemetry::span_phase("experiment").record(wall_us);
    if fades_telemetry::trace::enabled() {
        fades_telemetry::trace::set_current_experiment(index);
        let end = fades_telemetry::trace::epoch_us();
        fades_telemetry::trace::record_span("experiment", end.saturating_sub(wall_us), wall_us);
        fades_telemetry::trace::set_current_experiment(fades_telemetry::trace::NO_EXPERIMENT);
    }
}

/// Runs *one* pass of the lane engine over `pending`: fills the lanes in
/// order, retires and refills until the run length is exhausted, and
/// hands each decided experiment to `sink` at the moment its lane
/// retires (not at cohort end — under the isolation contract the sink
/// journals, so a kill forfeits at most the in-flight word).
///
/// Every entry taken from `pending` is pushed to `loaded` *before* it
/// can influence the device — `loaded` is caller-owned so that when this
/// function panics (a poisoned fault, or the chaos hook), the caller
/// knows exactly which experiments were aboard the word and can replay
/// them scalar-isolated.
///
/// Returns the entries this pass could not take: those whose injection
/// instant had already passed when a lane freed up, plus everything
/// beyond the last refill. The caller loops until the return is empty.
pub(crate) fn run_one_cohort<'p>(
    batch: &mut BatchDevice,
    golden: &GoldenRun,
    port_wires: &[Vec<u32>],
    sub_cycle: bool,
    pending: &[&'p PlannedExperiment],
    chaos: Option<ChaosPanic>,
    warmstart: bool,
    loaded: &mut Vec<&'p PlannedExperiment>,
    sink: &mut dyn FnMut(u64, ExperimentResult),
) -> Result<Vec<&'p PlannedExperiment>, CoreError> {
    let run_cycles = golden.cycles();
    // Warm start: until its injection instant every lane *is* the golden
    // run, and `pending` arrives sorted by injection instant, so the
    // whole word can splat-restore the nearest golden checkpoint at or
    // before the cohort's earliest injection and skip the pristine
    // prefix. On refill passes (whose surviving entries inject late) the
    // skip multiplies.
    let checkpoint = if warmstart {
        pending
            .first()
            .and_then(|e| golden.checkpoint_at_or_before(e.schedule.inject_at))
            .filter(|cp| cp.cycle() > 0)
    } else {
        None
    };
    let start_cycle = match checkpoint {
        Some(cp) => {
            batch.restore_broadcast(cp);
            fades_telemetry::sim::record_warm_start(cp.cycle());
            cp.cycle()
        }
        None => {
            batch.reset();
            0
        }
    };
    let mut clock = CohortClock::start();
    let mut slots: Vec<Option<LaneSlot<'p>>> = (0..LANES).map(|_| None).collect();
    let mut occupied = 0usize;
    let mut cursor = 0usize;
    let mut leftovers: Vec<&'p PlannedExperiment> = Vec::new();
    for slot in slots.iter_mut().skip(1) {
        let Some(&planned) = pending.get(cursor) else {
            break;
        };
        cursor += 1;
        loaded.push(planned);
        *slot = Some(LaneSlot::new(planned, sub_cycle));
        occupied += 1;
    }

    for cycle in start_cycle..run_cycles {
        // Retire reconverged lanes at the top of the cycle (the batch
        // analogue of the scalar early-stop hash check, by true
        // equality — equal state and pristine config imply the hash
        // check passes too).
        let any_inert = slots
            .iter()
            .flatten()
            .any(|s| s.planned.schedule.inert_at(cycle));
        if any_inert {
            let conf = batch.config_divergence();
            // Decided-lane shortcut: a port-diverged lane's outcome is
            // locked (Failure), and once its fault is inert and its
            // configuration pristine nothing it does from here on is
            // observable — outcome, traffic and modelled time are all
            // fixed. Snap it onto the golden trajectory so the ordinary
            // reconvergence retirement below fires right now instead of
            // dragging a hard-diverged machine (and the divergence
            // frontier it keeps dirty) to the end of the pass.
            for (lane, entry) in slots.iter().enumerate().skip(1) {
                let decided = entry.as_ref().is_some_and(|s| {
                    s.diverged && s.planned.schedule.inert_at(cycle) && (conf >> lane) & 1 == 0
                });
                if decided {
                    batch.snap_lane_to_golden(lane);
                }
            }
            let seq = batch.seq_divergence();
            let mut will_retire = 0u64;
            for (lane, entry) in slots.iter().enumerate().skip(1) {
                let retire = entry.as_ref().is_some_and(|s| {
                    s.planned.schedule.inert_at(cycle)
                        && (seq >> lane) & 1 == 0
                        && (conf >> lane) & 1 == 0
                });
                if retire {
                    will_retire |= 1 << lane;
                }
            }
            if will_retire != 0 {
                // Charge the shared clock before the retiring lanes
                // leave — they were occupied over the elapsed interval.
                clock.charge(&mut slots);
                for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
                    if (will_retire >> lane) & 1 == 0 {
                        continue;
                    }
                    let Some(slot) = entry.take() else {
                        continue; // retire mask checked occupancy
                    };
                    occupied -= 1;
                    let outcome = if slot.diverged {
                        Outcome::Failure
                    } else {
                        Outcome::Silent
                    };
                    fades_telemetry::sim::record_lane_retirement();
                    let (index, result) = slot.finish(batch, lane, outcome, run_cycles - cycle);
                    trace_retirement(index, result.wall_us);
                    sink(index, result);
                    // Refill: skip entries whose injection instant has
                    // already passed (they wait for the next pass).
                    while pending
                        .get(cursor)
                        .is_some_and(|e| e.schedule.inject_at < cycle)
                    {
                        leftovers.push(pending[cursor]);
                        cursor += 1;
                    }
                    if let Some(&planned) = pending.get(cursor) {
                        cursor += 1;
                        batch.refill_lane(lane);
                        loaded.push(planned);
                        *entry = Some(LaneSlot::new(planned, sub_cycle));
                        occupied += 1;
                    }
                }
            }
        }
        if occupied == 0 {
            break;
        }
        for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
            if let Some(s) = entry {
                if cycle == s.planned.schedule.inject_at {
                    if let Some(c) = chaos {
                        c.maybe_panic(s.planned.index, 0);
                    }
                    s.strategy.inject(&mut batch.lane(lane), &mut s.rng)?;
                } else if s.planned.schedule.active(cycle) {
                    s.strategy.tick(&mut batch.lane(lane), &mut s.rng)?;
                }
            }
        }
        batch.settle();
        match golden.trace().row(cycle as usize) {
            Some(row) => {
                let mut diff = 0u64;
                for (wires, &g) in port_wires.iter().zip(row) {
                    diff |= batch.port_divergence(wires, g);
                }
                if diff != 0 {
                    for (lane, s) in slots.iter_mut().enumerate() {
                        if (diff >> lane) & 1 == 1 {
                            if let Some(s) = s {
                                s.diverged = true;
                            }
                        }
                    }
                }
            }
            None => {
                for s in slots.iter_mut().flatten() {
                    s.diverged = true;
                }
            }
        }
        batch.clock_edge();
        fades_telemetry::sim::record_lane_cycle(occupied as u64);
        for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
            if let Some(s) = entry {
                if s.planned.schedule.expires_after(cycle) {
                    s.strategy.remove(&mut batch.lane(lane))?;
                }
            }
        }
    }

    // Lanes still occupied at the end of the pass: charge the remaining
    // shared clock, remove an outliving fault (its removal traffic
    // belongs to this experiment's ledger, exactly as in the scalar
    // flow), then classify against the golden final state.
    if occupied > 0 {
        clock.charge(&mut slots);
    }
    for (lane, entry) in slots.iter_mut().enumerate().skip(1) {
        if let Some(mut slot) = entry.take() {
            if slot.planned.schedule.outlives(run_cycles) {
                slot.strategy.remove(&mut batch.lane(lane))?;
            }
            let outcome = if slot.diverged {
                Outcome::Failure
            } else if batch.state_snapshot_lane(lane).as_slice() != golden.final_state() {
                Outcome::Latent
            } else {
                Outcome::Silent
            };
            let (index, result) = slot.finish(batch, lane, outcome, 0);
            trace_retirement(index, result.wall_us);
            sink(index, result);
        }
    }

    leftovers.extend_from_slice(&pending[cursor..]);
    Ok(leftovers)
}

/// Runs every entry of `entries` through the lane engine, one experiment
/// per lane, over as many passes as refilling requires. Returns
/// `(plan index, result)` pairs in ascending plan-index order.
///
/// With `threads > 1` the sorted plan is split into contiguous chunks,
/// each run on its own clone of the engine. Per-experiment results are
/// independent of cohort composition (lanes interact only with the
/// golden lane, and timing draws are lane-invariant), so the merged
/// results are bit-identical to the single-threaded run — the same
/// property the sharded-dispatch suite already pins down.
pub(crate) fn run_lane_cohorts<'p>(
    batch: &mut BatchDevice,
    golden: &GoldenRun,
    ports: &[String],
    sub_cycle: bool,
    entries: &[&'p PlannedExperiment],
    warmstart: bool,
    threads: usize,
) -> Result<Vec<(u64, ExperimentResult)>, CoreError> {
    let port_wires = lane_prologue(batch, golden, ports, entries)?;

    // Ascending injection instants maximise refills: a freed lane can
    // only take an entry whose injection instant has not yet passed.
    let mut pending: Vec<&'p PlannedExperiment> = entries.to_vec();
    pending.sort_by_key(|e| (e.schedule.inject_at, e.index));

    // No point spinning up a word for fewer entries than a word holds.
    let threads = threads.clamp(1, pending.len().div_ceil(LANES - 1).max(1));
    let mut results: Vec<(u64, ExperimentResult)> = Vec::with_capacity(entries.len());
    if threads <= 1 {
        while !pending.is_empty() {
            let mut loaded = Vec::new();
            pending = run_one_cohort(
                batch,
                golden,
                &port_wires,
                sub_cycle,
                &pending,
                None,
                warmstart,
                &mut loaded,
                &mut |index, result| results.push((index, result)),
            )?;
        }
    } else {
        let chunk_len = pending.len().div_ceil(threads);
        let port_wires = &port_wires;
        let chunk_results = crossbeam::thread::scope(
            |scope| -> Vec<Result<Vec<(u64, ExperimentResult)>, CoreError>> {
                let handles: Vec<_> = pending
                    .chunks(chunk_len)
                    .map(|chunk| {
                        let mut engine = batch.clone();
                        scope.spawn(
                            move |_| -> Result<Vec<(u64, ExperimentResult)>, CoreError> {
                                let mut out = Vec::with_capacity(chunk.len());
                                let mut rest: Vec<&'p PlannedExperiment> = chunk.to_vec();
                                while !rest.is_empty() {
                                    let mut loaded = Vec::new();
                                    rest = run_one_cohort(
                                        &mut engine,
                                        golden,
                                        port_wires,
                                        sub_cycle,
                                        &rest,
                                        None,
                                        warmstart,
                                        &mut loaded,
                                        &mut |index, result| out.push((index, result)),
                                    )?;
                                }
                                Ok(out)
                            },
                        )
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            },
        )
        .unwrap_or_else(|p| std::panic::resume_unwind(p));
        for r in chunk_results {
            results.extend(r?);
        }
    }

    results.sort_by_key(|(index, _)| *index);
    Ok(results)
}
