//! Golden (fault-free) runs.

use fades_fpga::Device;
use fades_netlist::OutputTrace;

use crate::error::CoreError;

/// A fault-free reference execution of the configured design.
///
/// Campaigns capture one golden run up front: the cycle-by-cycle values of
/// the observed output ports, plus the final sequential state (flip-flops
/// and memory contents). Every experiment's classification compares
/// against it (paper §5, "results analysis module").
#[derive(Debug, Clone)]
pub struct GoldenRun {
    trace: OutputTrace,
    final_state: Vec<u64>,
    cycles: u64,
}

impl GoldenRun {
    /// Runs the device for `cycles` cycles from reset, recording the
    /// observed ports each cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownPort`] if an observed port does not
    /// exist.
    pub fn capture(dev: &mut Device, ports: &[String], cycles: u64) -> Result<Self, CoreError> {
        dev.reset();
        let mut trace = OutputTrace::new(ports.to_vec());
        for _ in 0..cycles {
            dev.settle();
            let mut row = Vec::with_capacity(ports.len());
            for port in ports {
                row.push(
                    dev.output_u64(port)
                        .map_err(|_| CoreError::UnknownPort(port.clone()))?,
                );
            }
            trace.push_cycle(row);
            dev.clock_edge();
        }
        let final_state = dev.state_snapshot();
        Ok(GoldenRun {
            trace,
            final_state,
            cycles,
        })
    }

    /// The golden output trace.
    pub fn trace(&self) -> &OutputTrace {
        &self.trace
    }

    /// The golden final sequential state.
    pub fn final_state(&self) -> &[u64] {
        &self.final_state
    }

    /// Run length in cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}
