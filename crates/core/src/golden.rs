//! Golden (fault-free) runs.

use fades_fpga::{Device, DeviceState};
use fades_netlist::OutputTrace;

use crate::error::CoreError;

/// Default checkpointing interval (cycles between saved device states).
///
/// Checkpoints cost memory (`O(state)` each) while halving nothing but
/// the *residual* prefix an experiment must re-execute, which averages
/// `K / 2` cycles; 64 keeps the residual negligible against the
/// 1000-cycle-class workloads of the paper while storing only a few
/// dozen snapshots.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 64;

/// A fault-free reference execution of the configured design.
///
/// Campaigns capture one golden run up front: the cycle-by-cycle values of
/// the observed output ports, plus the final sequential state (flip-flops
/// and memory contents). Every experiment's classification compares
/// against it (paper §5, "results analysis module").
///
/// The capture additionally records fast-forward data for the
/// checkpointed experiment path (see `run_experiment`):
///
/// * a full device-state checkpoint every
///   [`DEFAULT_CHECKPOINT_INTERVAL`] cycles, so experiments can skip the
///   fault-free prefix by restoring the nearest checkpoint at or before
///   their injection cycle, and
/// * a cheap per-cycle state hash, so experiments whose fault has been
///   removed can detect reconvergence with the golden state and stop
///   early.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    trace: OutputTrace,
    final_state: Vec<u64>,
    cycles: u64,
    interval: u64,
    /// Checkpoint `i` holds the state at the top of cycle `i * interval`.
    checkpoints: Vec<DeviceState>,
    /// `hashes[c]` is the state hash at the top of cycle `c`, for
    /// `c in 0..=cycles` (the last entry is the post-run state).
    hashes: Vec<u64>,
}

impl GoldenRun {
    /// Runs the device for `cycles` cycles from reset, recording the
    /// observed ports each cycle, plus checkpoints every
    /// [`DEFAULT_CHECKPOINT_INTERVAL`] cycles and a per-cycle state hash.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownPort`] if an observed port does not
    /// exist.
    pub fn capture(dev: &mut Device, ports: &[String], cycles: u64) -> Result<Self, CoreError> {
        Self::capture_with_interval(dev, ports, cycles, DEFAULT_CHECKPOINT_INTERVAL)
    }

    /// [`capture`](Self::capture) with an explicit checkpoint interval
    /// (tests use small intervals to exercise boundary alignment).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownPort`] if an observed port does not
    /// exist.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn capture_with_interval(
        dev: &mut Device,
        ports: &[String],
        cycles: u64,
        interval: u64,
    ) -> Result<Self, CoreError> {
        assert!(interval >= 1, "checkpoint interval must be at least 1");
        dev.reset();
        let mut trace = OutputTrace::new(ports.to_vec());
        let mut checkpoints = Vec::new();
        let mut hashes = Vec::with_capacity(cycles as usize + 1);
        for cycle in 0..cycles {
            hashes.push(dev.state_hash());
            if cycle % interval == 0 {
                checkpoints.push(dev.save_state());
            }
            dev.settle();
            let mut row = Vec::with_capacity(ports.len());
            for port in ports {
                row.push(
                    dev.output_u64(port)
                        .map_err(|_| CoreError::UnknownPort(port.clone()))?,
                );
            }
            trace.push_cycle(row);
            dev.clock_edge();
        }
        hashes.push(dev.state_hash());
        let final_state = dev.state_snapshot();
        Ok(GoldenRun {
            trace,
            final_state,
            cycles,
            interval,
            checkpoints,
            hashes,
        })
    }

    /// The golden output trace.
    pub fn trace(&self) -> &OutputTrace {
        &self.trace
    }

    /// The golden final sequential state.
    pub fn final_state(&self) -> &[u64] {
        &self.final_state
    }

    /// Run length in cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The checkpoint interval this run was captured with.
    pub fn checkpoint_interval(&self) -> u64 {
        self.interval
    }

    /// Number of stored checkpoints.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// The latest checkpoint taken at or before the top of `cycle`
    /// (`None` only when the run recorded no checkpoints, i.e. zero
    /// cycles).
    pub fn checkpoint_at_or_before(&self, cycle: u64) -> Option<&DeviceState> {
        if self.checkpoints.is_empty() {
            return None;
        }
        let idx = ((cycle / self.interval) as usize).min(self.checkpoints.len() - 1);
        Some(&self.checkpoints[idx])
    }

    /// The golden state hash at the top of `cycle` (valid for
    /// `cycle <= cycles`; the last entry is the post-run state).
    pub fn state_hash_at(&self, cycle: u64) -> u64 {
        self.hashes[cycle as usize]
    }
}
