//! Failure / Latent / Silent outcome classification (paper §5).

use std::fmt;
use std::ops::AddAssign;

use fades_netlist::OutputTrace;

use crate::golden::GoldenRun;

/// The effect of one injected fault, classified against the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The output traces differ.
    Failure,
    /// Outputs match but the final sequential state differs.
    Latent,
    /// Traces and final state are identical.
    Silent,
}

impl Outcome {
    /// Stable lower-case name, used by the telemetry run log.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Failure => "failure",
            Outcome::Latent => "latent",
            Outcome::Silent => "silent",
        }
    }

    /// Parses the stable name back (the dispatch journal round-trips
    /// outcomes through JSONL).
    pub fn parse(name: &str) -> Option<Outcome> {
        match name {
            "failure" => Some(Outcome::Failure),
            "latent" => Some(Outcome::Latent),
            "silent" => Some(Outcome::Silent),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Classifies one experiment.
pub fn classify(trace: &OutputTrace, final_state: &[u64], golden: &GoldenRun) -> Outcome {
    if !trace.diff(golden.trace()).identical() {
        Outcome::Failure
    } else if final_state != golden.final_state() {
        Outcome::Latent
    } else {
        Outcome::Silent
    }
}

/// Aggregated outcome counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeStats {
    /// Experiments classified Failure.
    pub failures: usize,
    /// Experiments classified Latent.
    pub latents: usize,
    /// Experiments classified Silent.
    pub silents: usize,
}

impl OutcomeStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Failure => self.failures += 1,
            Outcome::Latent => self.latents += 1,
            Outcome::Silent => self.silents += 1,
        }
    }

    /// Total experiments recorded.
    pub fn total(&self) -> usize {
        self.failures + self.latents + self.silents
    }

    /// Failure percentage (0–100).
    pub fn failure_pct(&self) -> f64 {
        self.pct(self.failures)
    }

    /// Latent percentage (0–100).
    pub fn latent_pct(&self) -> f64 {
        self.pct(self.latents)
    }

    /// Silent percentage (0–100).
    pub fn silent_pct(&self) -> f64 {
        self.pct(self.silents)
    }

    fn pct(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            n as f64 * 100.0 / self.total() as f64
        }
    }
}

impl AddAssign for OutcomeStats {
    fn add_assign(&mut self, rhs: Self) {
        self.failures += rhs.failures;
        self.latents += rhs.latents;
        self.silents += rhs.silents;
    }
}

impl fmt::Display for OutcomeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failure {:.1}% / latent {:.1}% / silent {:.1}% (n={})",
            self.failure_pct(),
            self.latent_pct(),
            self.silent_pct(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentages_sum_to_100() {
        let mut s = OutcomeStats::default();
        for _ in 0..3 {
            s.record(Outcome::Failure);
        }
        s.record(Outcome::Latent);
        for _ in 0..6 {
            s.record(Outcome::Silent);
        }
        assert_eq!(s.total(), 10);
        let sum = s.failure_pct() + s.latent_pct() + s.silent_pct();
        assert!((sum - 100.0).abs() < 1e-9);
    }
}
