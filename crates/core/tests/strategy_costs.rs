//! Cost contracts: the exact configuration-port traffic of every
//! injection strategy.
//!
//! The emulation-time results (Fig. 10 / Table 2) are a function of these
//! op and frame counts, so they are pinned here: a change to any strategy's
//! choreography must be deliberate (and re-calibrated in EXPERIMENTS.md).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{Campaign, DurationRange, FaultLoad, TargetClass};
use fades_fpga::ArchParams;
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;

fn campaign_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("costs");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("cnt", 8, 0);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let next = b.add_const(&q, 1);
    b.set_unit(UnitTag::Registers);
    b.connect(r, &next);
    b.output("q", &q);
    let nl = b.finish().unwrap();
    let imp = implement(&nl, ArchParams::small()).unwrap();
    (nl, imp)
}

/// Runs one fault of the load and returns (ops, frames-equivalent bytes).
fn traffic_of(load: &FaultLoad) -> (usize, u64, u64, u64) {
    let (nl, imp) = campaign_design();
    let campaign = Campaign::new(&nl, imp, &["q"], 64).unwrap();
    let r = &campaign.run_detailed(load, 1, 123).unwrap()[0];
    (
        r.traffic.ops,
        r.traffic.readback_bytes,
        r.traffic.write_bytes,
        r.traffic.bulk_bytes,
    )
}

#[test]
fn lsr_bitflip_costs_three_ops() {
    // Capture readback + CLR/PR mux write + double-write LSR pulse.
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let (ops, rb, wr, bulk) = traffic_of(&load);
    assert_eq!(ops, 3);
    let frame = ArchParams::small().frame_bytes as u64;
    assert_eq!(rb, frame);
    assert_eq!(wr, 3 * frame); // mux frame + pulse frame written twice
    assert_eq!(bulk, 0);
}

#[test]
fn mem_bitflip_costs_two_ops() {
    let load = FaultLoad::bit_flips(
        TargetClass::MemoryBits {
            name: "?".into(),
            lo: 0,
            hi: 0,
        },
        DurationRange::SubCycle,
    );
    // The counter design has no memory; use a design with one.
    let mut b = RtlBuilder::new("mem");
    let r = b.reg("a", 4, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    let zero = b.lit(0, 8);
    let z = b.zero();
    let dout = b.ram("m", &q, &zero, z, &[5, 6, 7]).unwrap();
    b.output("dout", &dout);
    let nl = b.finish().unwrap();
    let imp = implement(&nl, ArchParams::small()).unwrap();
    let campaign = Campaign::new(&nl, imp, &["dout"], 64).unwrap();
    let mut load = load;
    load.target = TargetClass::MemoryBits {
        name: "m".into(),
        lo: 0,
        hi: 2,
    };
    let r = &campaign.run_detailed(&load, 1, 7).unwrap()[0];
    assert_eq!(r.traffic.ops, 2, "readback frame + write frame");
    assert_eq!(r.traffic.bulk_bytes, 0);
}

#[test]
fn sub_cycle_pulse_costs_three_ops_and_long_pulse_six() {
    let short = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle);
    let (ops_short, ..) = traffic_of(&short);
    assert_eq!(ops_short, 3, "readback + write + restore write");
    let long = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::Cycles(5, 5));
    let (ops_long, ..) = traffic_of(&long);
    assert_eq!(
        ops_long, 6,
        "two verified reconfiguration passes (paper's 2x cost)"
    );
}

#[test]
fn fixed_ff_indetermination_costs_four_ops() {
    let load = FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::Cycles(5, 5), false);
    let (ops, ..) = traffic_of(&load);
    // Readback + mux write + pulse (assert) + release write; holding the
    // asserted line across the window is free.
    assert_eq!(ops, 4);
}

#[test]
fn oscillating_indetermination_costs_one_op_per_cycle() {
    let fixed =
        FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::Cycles(8, 8), false);
    let osc = FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::Cycles(8, 8), true);
    let (ops_fixed, ..) = traffic_of(&fixed);
    let (ops_osc, ..) = traffic_of(&osc);
    // Seven tick cycles (injection covers the first) of one merged write.
    assert_eq!(ops_osc, ops_fixed + 7);
}

#[test]
fn delay_faults_ship_two_full_downloads() {
    let load = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::Cycles(5, 5));
    let (ops, _rb, wr, bulk) = traffic_of(&load);
    assert_eq!(ops, 2, "inject download + restore download");
    assert_eq!(wr, 0, "no separately-charged partial frames");
    assert_eq!(
        bulk,
        2 * ArchParams::small().full_config_bytes(),
        "full configuration file both ways"
    );
}

#[test]
fn permanent_faults_never_pay_removal() {
    use fades_core::PermanentFault;
    let load = FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllLuts);
    let (ops, ..) = traffic_of(&load);
    assert_eq!(ops, 2, "readback + table write, nothing at expiry");
}
