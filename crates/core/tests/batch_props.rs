//! Property-based equivalence of the lane engine: random small netlists,
//! random fault loads, and the `CampaignStats` — outcome tallies *and*
//! the bit pattern of the modelled emulation seconds — must be identical
//! between `run_batched`, the scalar path, and the scalar path with the
//! fast path disabled (`FADES_NO_FASTPATH`'s effect, set here through
//! [`CampaignConfig::fastpath`] so cases cannot race on the environment).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{Campaign, CampaignConfig, DurationRange, FaultLoad, PermanentFault, TargetClass};
use fades_rtl::{RtlBuilder, Signal};
use proptest::prelude::*;

/// Builds one of three random register-feedback designs:
/// a counter, a two-tap XOR LFSR, or an inverting ring.
fn random_design(
    topology: u8,
    width: usize,
    init: u64,
    taps: (usize, usize),
) -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("prop");
    let r = b.reg("state", width, init & ((1 << width) - 1));
    let q = r.q().clone();
    let next = match topology % 3 {
        0 => b.add_const(&q, 1),
        1 => {
            let fb = b.xor_bit(q.bit(taps.0 % width), q.bit(taps.1 % width));
            let mut bits = vec![fb];
            bits.extend((0..width - 1).map(|i| q.bit(i)));
            Signal::from_bits(bits)
        }
        _ => {
            let bits = (0..width)
                .map(|i| b.not_bit(q.bit((i + 1) % width)))
                .collect();
            Signal::from_bits(bits)
        }
    };
    b.connect(r, &next);
    b.output("q", &q);
    let nl = b.finish().unwrap();
    let imp = fades_pnr::implement(&nl, fades_fpga::ArchParams::small()).unwrap();
    (nl, imp)
}

/// Picks one of the campaign fault loads, covering lane-expressible
/// models and the scalar-fallback ones (delays, oscillating
/// indeterminations).
fn random_load(pick: u8, oscillating: bool) -> FaultLoad {
    match pick % 7 {
        0 => FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT),
        1 => FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle),
        2 => FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT),
        3 => FaultLoad::pulses(TargetClass::CbInputs, DurationRange::SHORT),
        4 => FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::SHORT, oscillating),
        5 => FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllLuts),
        _ => FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT),
    }
}

proptest! {
    /// The paper-reported statistics are a pure function of the plan, not
    /// of the execution engine: lanes, scalar, and scalar-without-fastpath
    /// must agree outcome-for-outcome and bit-for-bit on modelled time.
    #[test]
    fn stats_identical_across_all_three_paths(
        topology in 0u8..3,
        width in 2usize..7,
        init in any::<u64>(),
        taps in (0usize..8, 0usize..8),
        pick in 0u8..7,
        oscillating in any::<bool>(),
        n in 3usize..8,
        cycles in 90u64..140,
        seed in any::<u64>(),
    ) {
        let (nl, imp) = random_design(topology, width, init, taps);
        let load = random_load(pick, oscillating);
        let fast = Campaign::with_config(
            &nl,
            imp.clone(),
            &["q"],
            cycles,
            CampaignConfig {
                threads: 1, margin_cycles: 32, fastpath: true, batch: true,
                warmstart: true, sparse: true, static_preclassify: false,
            },
        )
        .expect("campaign");
        // The lane engine with both tentpole shortcuts killed: the full
        // settle sweep from cycle 0, every cohort. Pins the kill-switch
        // combination the FADES_NO_WARMSTART / FADES_NO_SPARSE hatches
        // select in production.
        let hatched = Campaign::with_config(
            &nl,
            imp.clone(),
            &["q"],
            cycles,
            CampaignConfig {
                threads: 1, margin_cycles: 32, fastpath: true, batch: true,
                warmstart: false, sparse: false, static_preclassify: false,
            },
        )
        .expect("campaign");
        let slow = Campaign::with_config(
            &nl,
            imp,
            &["q"],
            cycles,
            CampaignConfig {
                threads: 1, margin_cycles: 32, fastpath: false, batch: false,
                warmstart: false, sparse: false, static_preclassify: false,
            },
        )
        .expect("campaign");

        let batched = fast.run_batched(&load, n, seed).expect("batched");
        let batched_hatched = hatched.run_batched(&load, n, seed).expect("batched hatched");
        let scalar = fast.run(&load, n, seed).expect("scalar");
        let no_fastpath = slow.run(&load, n, seed).expect("no fastpath");

        prop_assert_eq!(&batched.outcomes, &scalar.outcomes, "batched vs scalar");
        prop_assert_eq!(
            &batched.outcomes,
            &batched_hatched.outcomes,
            "batched vs batched-with-hatches"
        );
        prop_assert_eq!(&scalar.outcomes, &no_fastpath.outcomes, "scalar vs no-fastpath");
        prop_assert_eq!(
            batched.emulation_seconds.to_bits(),
            scalar.emulation_seconds.to_bits(),
            "batched vs scalar emulation_seconds"
        );
        prop_assert_eq!(
            batched.emulation_seconds.to_bits(),
            batched_hatched.emulation_seconds.to_bits(),
            "batched vs batched-with-hatches emulation_seconds"
        );
        prop_assert_eq!(
            scalar.emulation_seconds.to_bits(),
            no_fastpath.emulation_seconds.to_bits(),
            "scalar vs no-fastpath emulation_seconds"
        );
    }
}
