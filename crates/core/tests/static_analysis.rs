//! The static pre-classifier's two contracts, test-enforced:
//!
//! * **Bit-identity** — with static pre-classification on, a campaign
//!   must produce exactly the per-experiment results and aggregate
//!   `CampaignStats` (including the `emulation_seconds` bit pattern) of
//!   a campaign that executed every experiment for real, on the scalar,
//!   lane, and sharded paths alike. The skip saves wall-clock only.
//! * **Soundness** — every experiment the cone-of-influence pass marks
//!   `StaticSilent` must classify Silent when forced to execute (the
//!   `FADES_NO_STATIC` hatch, set here through
//!   [`CampaignConfig::static_preclassify`] so cases cannot race on the
//!   environment), on both the scalar and the lane engine.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{
    Campaign, CampaignConfig, CampaignPlan, CampaignStats, DurationRange, ExperimentVerdict,
    FaultLoad, Outcome, PlanAnnotation, TargetClass,
};
use fades_rtl::{RtlBuilder, Signal};
use proptest::prelude::*;

/// A counter observed on `q`, plus logic the observation frontier can
/// provably never see: a shadow register nobody reads and inverters
/// feeding only an unobserved debug port.
fn dead_logic_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("dead");
    let r = b.reg("cnt", 4, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    b.output("q", &q);
    let shadow = b.reg("shadow", 4, 0);
    b.connect(shadow, &q);
    let dead: Vec<_> = (0..4).map(|i| b.not_bit(q.bit(i))).collect();
    b.output("unused_dbg", &Signal::from_bits(dead));
    let nl = b.finish().unwrap();
    let imp = fades_pnr::implement(&nl, fades_fpga::ArchParams::small()).unwrap();
    (nl, imp)
}

fn config(static_preclassify: bool, batch: bool) -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        margin_cycles: 32,
        fastpath: true,
        batch,
        warmstart: true,
        sparse: true,
        static_preclassify,
    }
}

/// The fault loads whose faults the pre-classifier can annotate (plus
/// delays, which it never annotates — a coverage guard).
fn loads() -> Vec<FaultLoad> {
    vec![
        FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle),
        FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT),
        FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle),
        FaultLoad::pulses(TargetClass::CbInputs, DurationRange::SHORT),
        FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::SHORT, false),
        FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT),
    ]
}

#[test]
fn dead_design_plans_carry_static_silent_annotations() {
    let (nl, imp) = dead_logic_design();
    let campaign = Campaign::with_config(&nl, imp, &["q"], 120, config(true, false)).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let plan = campaign.plan(&load, 40, 11).unwrap();
    let silent = plan
        .experiments
        .iter()
        .filter(|e| e.annotation == PlanAnnotation::StaticSilent)
        .count();
    assert!(
        silent > 0,
        "the shadow register must yield statically-Silent bit flips"
    );
    assert!(
        silent < plan.len(),
        "flips into the live counter must not be annotated"
    );
}

#[test]
fn annotations_are_a_pure_function_of_the_plan_inputs() {
    // Same inputs → same annotations, regardless of worker threads or
    // any engine configuration: shards must agree without communicating.
    let (nl, imp) = dead_logic_design();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle);
    let mut seen = Vec::new();
    for (threads, static_on, batch) in [(1, true, false), (4, false, true), (2, true, true)] {
        let cfg = CampaignConfig {
            threads,
            ..config(static_on, batch)
        };
        let campaign = Campaign::with_config(&nl, imp.clone(), &["q"], 120, cfg).unwrap();
        let plan = campaign.plan(&load, 30, 99).unwrap();
        seen.push(
            plan.experiments
                .iter()
                .map(|e| e.annotation)
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(seen[0], seen[1]);
    assert_eq!(seen[1], seen[2]);
    assert!(seen[0].contains(&PlanAnnotation::StaticSilent));
}

/// Runs `load` with the skip on and off and asserts detailed results and
/// aggregate stats are identical on the requested engine.
fn assert_skip_bit_identical(
    nl: &fades_netlist::Netlist,
    imp: &fades_pnr::Implementation,
    cycles: u64,
    load: &FaultLoad,
    n: usize,
    seed: u64,
    batch: bool,
) {
    let skipping =
        Campaign::with_config(nl, imp.clone(), &["q"], cycles, config(true, batch)).unwrap();
    let executing =
        Campaign::with_config(nl, imp.clone(), &["q"], cycles, config(false, batch)).unwrap();
    let run_detailed = |c: &Campaign| {
        if batch {
            c.run_batched_detailed(load, n, seed).unwrap()
        } else {
            c.run_detailed(load, n, seed).unwrap()
        }
    };
    let with_skip = run_detailed(&skipping);
    let without = run_detailed(&executing);
    assert_eq!(with_skip.len(), without.len());
    for (s, e) in with_skip.iter().zip(&without) {
        assert_eq!(s.fault, e.fault, "{load:?}");
        assert_eq!(s.schedule, e.schedule, "{load:?}");
        assert_eq!(s.outcome, e.outcome, "{load:?} fault {:?}", s.fault);
        assert_eq!(
            s.traffic, e.traffic,
            "{load:?} fault {:?}: the replayed ledger must charge exactly \
             what a real execution charges",
            s.fault
        );
        assert_eq!(s.strategy, e.strategy);
    }
    let run_stats = |c: &Campaign| {
        if batch {
            c.run_batched(load, n, seed).unwrap()
        } else {
            c.run(load, n, seed).unwrap()
        }
    };
    let ss = run_stats(&skipping);
    let es = run_stats(&executing);
    assert_eq!(ss.outcomes, es.outcomes, "{load:?}");
    assert_eq!(
        ss.emulation_seconds.to_bits(),
        es.emulation_seconds.to_bits(),
        "{load:?}: modelled time must be bit-identical with the skip on"
    );
}

#[test]
fn static_skip_is_bit_identical_on_the_scalar_engine() {
    let (nl, imp) = dead_logic_design();
    for load in loads() {
        assert_skip_bit_identical(&nl, &imp, 120, &load, 24, 4242, false);
    }
}

#[test]
fn static_skip_is_bit_identical_on_the_lane_engine() {
    let (nl, imp) = dead_logic_design();
    for load in loads() {
        assert_skip_bit_identical(&nl, &imp, 120, &load, 24, 4242, true);
    }
}

#[test]
fn static_skip_is_bit_identical_under_sharded_execution() {
    // Shard the same plan 3 ways on the skipping campaign, fold the
    // verdicts in global-index order, and compare against a monolithic
    // run that executed everything.
    let (nl, imp) = dead_logic_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let skipping =
        Campaign::with_config(&nl, imp.clone(), &["q"], 120, config(true, true)).unwrap();
    let executing =
        Campaign::with_config(&nl, imp.clone(), &["q"], 120, config(false, false)).unwrap();
    let n = 30;
    let plan = skipping.plan(&load, n, 77).unwrap();

    let mut folded: Vec<(u64, f64, Outcome)> = Vec::new();
    for shard in 0..3u32 {
        let sub = plan.try_shard(shard, 3).unwrap();
        for v in skipping
            .execute_batched_isolated(&sub, 1, None, None)
            .unwrap()
        {
            match v {
                ExperimentVerdict::Completed {
                    index,
                    modelled_seconds,
                    result,
                    ..
                } => folded.push((index, modelled_seconds, result.outcome)),
                ExperimentVerdict::Quarantined { index, error, .. } => {
                    panic!("experiment {index} quarantined: {error}")
                }
            }
        }
    }
    folded.sort_by_key(|(index, ..)| *index);
    let mut sharded = CampaignStats::default();
    for (_, seconds, outcome) in &folded {
        sharded.accumulate(*outcome, *seconds);
    }

    let monolithic = executing.run(&load, n, 77).unwrap();
    assert_eq!(sharded.outcomes, monolithic.outcomes);
    assert_eq!(
        sharded.emulation_seconds.to_bits(),
        monolithic.emulation_seconds.to_bits(),
        "sharded-with-skip stats must be bit-identical to a monolithic full run"
    );
}

/// Forces every statically-Silent experiment of `plan` to execute on a
/// campaign with the skip disabled and asserts all of them classify
/// Silent.
fn assert_static_silent_sound(
    executing: &Campaign,
    plan: &CampaignPlan,
    batch: bool,
) -> Result<usize, TestCaseError> {
    let silent_only = CampaignPlan {
        target: plan.target.clone(),
        sub_cycle: plan.sub_cycle,
        seed: plan.seed,
        n_total: plan.n_total,
        experiments: plan
            .experiments
            .iter()
            .filter(|e| e.annotation == PlanAnnotation::StaticSilent)
            .cloned()
            .collect(),
    };
    let verdicts = if batch {
        executing.execute_batched_isolated(&silent_only, 1, None, None)
    } else {
        executing.execute_isolated(&silent_only, 1, None, None)
    };
    let verdicts = verdicts.expect("execution");
    for v in &verdicts {
        match v {
            ExperimentVerdict::Completed { result, index, .. } => prop_assert_eq!(
                result.outcome,
                Outcome::Silent,
                "statically-Silent experiment {} was {:?} when executed: {:?}",
                index,
                result.outcome,
                result.fault
            ),
            ExperimentVerdict::Quarantined { index, error, .. } => {
                return Err(TestCaseError::fail(format!(
                    "statically-Silent experiment {index} quarantined: {error}"
                )))
            }
        }
    }
    Ok(verdicts.len())
}

/// Random register-feedback design with dead logic grafted on: a shadow
/// register of the live state and inverters into an unobserved port.
fn random_design_with_dead_logic(
    topology: u8,
    width: usize,
    init: u64,
    taps: (usize, usize),
) -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("prop-dead");
    let r = b.reg("state", width, init & ((1 << width) - 1));
    let q = r.q().clone();
    let next = match topology % 3 {
        0 => b.add_const(&q, 1),
        1 => {
            let fb = b.xor_bit(q.bit(taps.0 % width), q.bit(taps.1 % width));
            let mut bits = vec![fb];
            bits.extend((0..width - 1).map(|i| q.bit(i)));
            Signal::from_bits(bits)
        }
        _ => {
            let bits = (0..width)
                .map(|i| b.not_bit(q.bit((i + 1) % width)))
                .collect();
            Signal::from_bits(bits)
        }
    };
    b.connect(r, &next);
    b.output("q", &q);
    let shadow = b.reg("shadow", width, 0);
    b.connect(shadow, &q);
    let dead: Vec<_> = (0..width).map(|i| b.not_bit(q.bit(i))).collect();
    b.output("unused_dbg", &Signal::from_bits(dead));
    let nl = b.finish().unwrap();
    let imp = fades_pnr::implement(&nl, fades_fpga::ArchParams::small()).unwrap();
    (nl, imp)
}

fn random_load(pick: u8) -> FaultLoad {
    match pick % 5 {
        0 => FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle),
        1 => FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT),
        2 => FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle),
        3 => FaultLoad::pulses(TargetClass::CbInputs, DurationRange::SHORT),
        _ => FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::SHORT, false),
    }
}

proptest! {
    /// Soundness over random netlists: whatever the cone-of-influence
    /// pass calls statically Silent must be dynamically Silent under
    /// every fault model when forced to execute, on both engines — and
    /// the lint output for the design must be deterministic.
    #[test]
    fn static_silent_is_sound_on_random_netlists(
        topology in 0u8..3,
        width in 2usize..6,
        init in any::<u64>(),
        taps in (0usize..8, 0usize..8),
        pick in 0u8..5,
        n in 6usize..14,
        cycles in 80u64..130,
        seed in any::<u64>(),
    ) {
        let (nl, imp) = random_design_with_dead_logic(topology, width, init, taps);
        let load = random_load(pick);
        let executing = Campaign::with_config(
            &nl, imp.clone(), &["q"], cycles, config(false, false),
        ).expect("campaign");
        let plan = executing.plan(&load, n, seed).expect("plan");

        prop_assume!(plan.experiments.iter().any(|e| e.annotation == PlanAnnotation::StaticSilent));
        assert_static_silent_sound(&executing, &plan, false)?;

        let lane = Campaign::with_config(
            &nl, imp.clone(), &["q"], cycles, config(false, true),
        ).expect("campaign");
        assert_static_silent_sound(&lane, &plan, true)?;

        // Lint determinism: two runs over the same bitstream agree
        // diagnostic-for-diagnostic, in order.
        let a = fades_analysis::lint_quiet(&imp.bitstream);
        let b = fades_analysis::lint_quiet(&imp.bitstream);
        prop_assert_eq!(a, b);
    }
}
