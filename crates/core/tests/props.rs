//! Property-based tests for the truth-table fault transformations.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::models::permanent::table_ops;
use proptest::prelude::*;

fn bit(table: u16, idx: u16) -> bool {
    (table >> idx) & 1 == 1
}

proptest! {
    /// Output inversion is an involution and flips every entry.
    #[test]
    fn invert_output_flips_all(table in any::<u16>()) {
        let inv = table_ops::invert_output(table);
        prop_assert_eq!(table_ops::invert_output(inv), table);
        prop_assert_eq!(table ^ inv, u16::MAX);
    }

    /// Input inversion is an involution, and the function with the pin
    /// inverted equals the original with that pin's value complemented.
    #[test]
    fn invert_input_reindexes(table in any::<u16>(), pin in 0u8..4, idx in 0u16..16) {
        let inv = table_ops::invert_input(table, pin);
        prop_assert_eq!(table_ops::invert_input(inv, pin), table);
        prop_assert_eq!(bit(inv, idx), bit(table, idx ^ (1 << pin)));
    }

    /// Tying an input makes the table independent of it, and is
    /// idempotent.
    #[test]
    fn tie_input_is_idempotent(table in any::<u16>(), pin in 0u8..4, level in any::<bool>()) {
        let tied = table_ops::tie_input(table, pin, level);
        prop_assert_eq!(table_ops::tie_input(tied, pin, level), tied);
        for idx in 0u16..16 {
            prop_assert_eq!(bit(tied, idx), bit(tied, idx ^ (1 << pin)));
        }
    }

    /// Bridged inputs observe the wired-AND: the result is symmetric in
    /// the pins and idempotent.
    #[test]
    fn bridge_inputs_properties(table in any::<u16>(), a in 0u8..4, b in 0u8..4) {
        prop_assume!(a != b);
        let ab = table_ops::bridge_inputs(table, a, b);
        let ba = table_ops::bridge_inputs(table, b, a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(table_ops::bridge_inputs(ab, a, b), ab);
        // Patterns where both pins agree are untouched.
        for idx in 0u16..16 {
            let va = (idx >> a) & 1;
            let vb = (idx >> b) & 1;
            if va == vb {
                prop_assert_eq!(bit(ab, idx), bit(table, idx));
            }
        }
    }

    /// Flipping one entry changes exactly one bit and is an involution.
    #[test]
    fn flip_entry_is_single_bit(table in any::<u16>(), entry in 0u8..16) {
        let f = table_ops::flip_entry(table, entry);
        prop_assert_eq!((table ^ f).count_ones(), 1);
        prop_assert_eq!(table_ops::flip_entry(f, entry), table);
    }
}
