//! End-to-end telemetry: a tiny campaign with `FADES_RUN_LOG` set must
//! produce a parseable JSONL log whose lines match the campaign stats.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{worker_threads, Campaign, DurationRange, FaultLoad, TargetClass};
use fades_fpga::ArchParams;
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;
use fades_telemetry::json;

fn lfsr() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("lfsr");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    b.set_unit(UnitTag::Registers);
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    let netlist = b.finish().unwrap();
    let imp = implement(&netlist, ArchParams::small()).unwrap();
    (netlist, imp)
}

/// One test drives the whole scenario: environment variables are process
/// globals, so the run-log and thread-count assertions share a test to
/// avoid racing other tests in this binary.
#[test]
fn run_log_matches_campaign_stats() {
    const N: usize = 10;
    let log_path =
        std::env::temp_dir().join(format!("fades-runlog-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    std::env::set_var("FADES_RUN_LOG", &log_path);
    std::env::set_var("FADES_THREADS", "2");
    assert_eq!(worker_threads(), 2, "FADES_THREADS overrides thread count");

    let (nl, imp) = lfsr();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let stats = campaign.run_named("runlog-test", &load, N, 9).unwrap();
    std::env::remove_var("FADES_RUN_LOG");
    std::env::remove_var("FADES_THREADS");

    let text = std::fs::read_to_string(&log_path).expect("run log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        N + 1,
        "one line per experiment plus one aggregate:\n{text}"
    );

    let mut experiments = 0usize;
    let mut aggregate = None;
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
        match v.get("type").and_then(|t| t.as_str()) {
            Some("experiment") => {
                experiments += 1;
                assert_eq!(
                    v.get("campaign").and_then(|c| c.as_str()),
                    Some("runlog-test")
                );
                assert_eq!(v.get("target").and_then(|t| t.as_str()), Some("all FFs"));
                assert_eq!(
                    v.get("strategy").and_then(|s| s.as_str()),
                    Some("lsr-bitflip")
                );
                assert!(
                    v.get("modelled_s")
                        .and_then(fades_telemetry::json::JsonValue::as_f64)
                        .unwrap()
                        > 0.0
                );
                assert!(
                    v.get("ops")
                        .and_then(fades_telemetry::json::JsonValue::as_u64)
                        .unwrap()
                        > 0
                );
            }
            Some("aggregate") => aggregate = Some(v),
            other => panic!("unexpected line type {other:?}"),
        }
    }
    assert_eq!(experiments, N);

    let agg = aggregate.expect("trailing aggregate line");
    assert_eq!(
        agg.get("n")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(N as u64)
    );
    assert_eq!(
        agg.get("threads")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(
        agg.get("failures")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(stats.outcomes.failures as u64)
    );
    assert_eq!(
        agg.get("latents")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(stats.outcomes.latents as u64)
    );
    assert_eq!(
        agg.get("silents")
            .and_then(fades_telemetry::json::JsonValue::as_u64),
        Some(stats.outcomes.silents as u64)
    );
    let modelled = agg
        .get("modelled_s")
        .and_then(fades_telemetry::json::JsonValue::as_f64)
        .unwrap();
    assert!(
        (modelled - stats.emulation_seconds).abs() < 1e-6,
        "aggregate modelled_s {modelled} vs stats {}",
        stats.emulation_seconds
    );

    // The campaign also registered its aggregate for the CLI sinks.
    let registered = fades_telemetry::drain_aggregates();
    assert!(registered.iter().any(|a| a.name == "runlog-test"));

    let _ = std::fs::remove_file(&log_path);
}
