//! Equivalence of the checkpointed fast-forward path with the full
//! simulation path.
//!
//! The fast path (golden-checkpoint restore plus early-stop convergence
//! detection) is a host-side shortcut: the emulated device still executes
//! the full workload and the strategy issues the same reconfigurations in
//! the same order. These tests pin that down — for every fault model,
//! identical seeds must give identical faults, outcomes, configuration
//! traffic and (bit-for-bit) modelled emulation time on both paths.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::strategies::strategy_for;
use fades_core::{
    run_experiment, sample_fault, Campaign, CampaignConfig, CoreError, DurationRange, FaultLoad,
    FaultSchedule, GoldenRun, Outcome, PermanentFault, ResolvedFault, TargetClass,
};
use fades_fpga::{ArchParams, Device};
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;
use rand::SeedableRng;

/// The campaign-test LFSR: an 8-bit maximal-ish LFSR XOR-folded through
/// observable taps (same shape as the `campaigns.rs` fixture).
fn lfsr_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("lfsr");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    b.set_unit(UnitTag::Registers);
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    let netlist = b.finish().unwrap();
    let imp = implement(&netlist, ArchParams::small()).unwrap();
    (netlist, imp)
}

/// A counter whose inverted bits feed only an unobserved port: pulses
/// into the inverters are silent, so the post-removal state re-converges
/// with golden and the fast path can stop early.
fn dead_logic_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("dead");
    let r = b.reg("cnt", 4, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    b.output("q", &q);
    let mut dead = Vec::new();
    for i in 0..4 {
        dead.push(b.not_bit(q.bit(i)));
    }
    let dead_sig = fades_rtl::Signal::from_bits(dead);
    b.output("unused_dbg", &dead_sig);
    let nl = b.finish().unwrap();
    let imp = implement(&nl, ArchParams::small()).unwrap();
    (nl, imp)
}

fn config(fastpath: bool) -> CampaignConfig {
    CampaignConfig {
        threads: 2,
        margin_cycles: 64,
        fastpath,
        batch: true,
        warmstart: true,
        sparse: true,
        // Off: this suite compares the raw engines, not the plan-time skip.
        static_preclassify: false,
    }
}

fn assert_equivalent(
    nl: &fades_netlist::Netlist,
    imp: &fades_pnr::Implementation,
    ports: &[&str],
    workload_cycles: u64,
    load: &FaultLoad,
    n: usize,
    seed: u64,
) {
    let fast = Campaign::with_config(nl, imp.clone(), ports, workload_cycles, config(true))
        .expect("fast campaign");
    let slow = Campaign::with_config(nl, imp.clone(), ports, workload_cycles, config(false))
        .expect("slow campaign");
    let f = fast.run_detailed(load, n, seed).expect("fast run");
    let s = slow.run_detailed(load, n, seed).expect("slow run");
    assert_eq!(f.len(), s.len());
    for (a, b) in f.iter().zip(&s) {
        assert_eq!(a.fault, b.fault, "{load:?}");
        assert_eq!(a.schedule, b.schedule, "{load:?}");
        assert_eq!(a.outcome, b.outcome, "{load:?} fault {:?}", a.fault);
        assert_eq!(
            a.traffic, b.traffic,
            "{load:?} fault {:?}: configuration traffic must be identical",
            a.fault
        );
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(
            b.skipped_cycles, 0,
            "the full path never restores checkpoints"
        );
        assert_eq!(b.early_stop_cycles, 0, "the full path never stops early");
    }
    // The modelled campaign time — the paper's reported quantity — must
    // agree to the bit, not just approximately.
    let fs = fast.run(load, n, seed).expect("fast stats");
    let ss = slow.run(load, n, seed).expect("slow stats");
    assert_eq!(fs.outcomes, ss.outcomes, "{load:?}");
    assert_eq!(
        fs.emulation_seconds.to_bits(),
        ss.emulation_seconds.to_bits(),
        "{load:?}: modelled emulation time must be bit-identical"
    );
    // With a 150+-cycle run and 64-cycle checkpoints, at least one random
    // injection instant lands past the first checkpoint.
    assert!(
        f.iter().any(|r| r.skipped_cycles > 0),
        "{load:?}: fast-forward never engaged"
    );
}

#[test]
fn ff_bit_flips_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 12, 101);
}

#[test]
fn gsr_bit_flips_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let mut load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    load.use_gsr = true;
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 102);
}

#[test]
fn multiple_bit_flips_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 3);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 103);
}

#[test]
fn lut_pulses_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 12, 104);
}

#[test]
fn cb_input_pulses_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::pulses(TargetClass::CbInputs, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 105);
}

#[test]
fn wire_delays_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 106);
}

#[test]
fn indeterminations_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    for oscillating in [false, true] {
        let load =
            FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::SHORT, oscillating);
        assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 107);
    }
}

#[test]
fn permanent_faults_match_full_simulation() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllLuts);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 108);
}

#[test]
fn memory_bit_flips_match_full_simulation() {
    use fades_mcu8051::{build_soc, workloads, OBSERVED_PORTS};
    let w = workloads::fibonacci();
    let soc = build_soc(&w.rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let load = FaultLoad::bit_flips(
        TargetClass::MemoryBits {
            name: "iram".into(),
            lo: w.data_range.0 as usize,
            hi: w.data_range.1 as usize,
        },
        DurationRange::SubCycle,
    );
    assert_equivalent(&soc.netlist, &imp, &OBSERVED_PORTS, 700, &load, 6, 109);
}

#[test]
fn early_stop_engages_on_silent_faults() {
    let (nl, imp) = dead_logic_design();
    let campaign = Campaign::with_config(&nl, imp.clone(), &["q"], 150, config(true)).unwrap();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT);
    let results = campaign.run_detailed(&load, 20, 17).expect("runs");
    // Pulses into the dead inverters leave the counter untouched: once
    // the fault is removed the state hash re-converges with golden and
    // the remaining tail is skipped.
    assert!(
        results
            .iter()
            .any(|r| r.outcome == Outcome::Silent && r.early_stop_cycles > 0),
        "no silent experiment stopped early: {:?}",
        results
            .iter()
            .map(|r| (r.outcome, r.early_stop_cycles))
            .collect::<Vec<_>>()
    );
    // Early stop must never fire while the outcome would still be open.
    let slow = Campaign::with_config(&nl, imp, &["q"], 150, config(false)).unwrap();
    let reference = slow.run_detailed(&load, 20, 17).expect("runs");
    for (a, b) in results.iter().zip(&reference) {
        assert_eq!(a.outcome, b.outcome, "fault {:?}", a.fault);
        assert_eq!(a.traffic, b.traffic);
    }
}

#[test]
fn overrunning_fault_charges_removal_on_both_paths() {
    // A fault whose schedule extends past the end of the run is removed
    // after the final cycle (paper Fig. 1 removes it before the next
    // experiment), so its removal reconfiguration must appear in the
    // ledger — and identically on both paths.
    let (_nl, imp) = lfsr_design();
    let mut dev = Device::configure(imp.bitstream.clone()).unwrap();
    let ports = vec!["q".to_string()];
    let golden = GoldenRun::capture(&mut dev, &ports, 100).unwrap();
    let cb = imp.bitstream.used_ffs()[0];
    let fault = ResolvedFault::CbInputPulse { cb };

    let mut run = |inject_at: u64, duration: u64, fastpath: bool| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        run_experiment(
            &mut dev,
            &golden,
            fault.clone(),
            strategy_for(&fault, false),
            FaultSchedule {
                inject_at,
                duration: Some(duration),
            },
            &ports,
            &mut rng,
            fastpath,
        )
        .expect("experiment")
    };

    // Ends inside the run: inject + in-loop removal.
    let inside = run(50, 10, false);
    // Overruns the run end: inject + end-of-run removal.
    let overrun_slow = run(95, 10, false);
    let overrun_fast = run(95, 10, true);

    assert_eq!(
        inside.traffic, overrun_slow.traffic,
        "an overrunning pulse must still be charged for its removal"
    );
    assert_eq!(overrun_slow.traffic, overrun_fast.traffic);
    assert_eq!(overrun_slow.outcome, overrun_fast.outcome);

    // The removal actually restored the configuration: a faultless replay
    // of the device still matches golden (run_experiment resets runtime
    // state but never re-configures).
    dev.reset();
    dev.run(100);
    assert_eq!(dev.state_snapshot().as_slice(), golden.final_state());
}

#[test]
fn multi_flip_samples_distinct_sites() {
    let (nl, imp) = lfsr_design();
    let sites =
        fades_core::resolve_targets(&nl, &imp.map, &imp.bitstream, &TargetClass::AllFfs).unwrap();
    let load = FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for _ in 0..50 {
        match sample_fault(&load, &sites, &imp.bitstream, &mut rng).unwrap() {
            ResolvedFault::MultiFfBitFlip { cbs } => {
                assert_eq!(cbs.len(), 5);
                let distinct: std::collections::HashSet<_> = cbs.iter().collect();
                assert_eq!(distinct.len(), 5, "sampled sites repeat: {cbs:?}");
            }
            other => panic!("unexpected fault {other:?}"),
        }
    }
}

#[test]
fn multi_flip_rejects_oversized_requests() {
    // The LFSR has exactly 8 flip-flops; asking for 9 distinct flips
    // cannot be satisfied and must be a clean error, not a hang or a
    // duplicated site list.
    let (nl, imp) = lfsr_design();
    let sites =
        fades_core::resolve_targets(&nl, &imp.map, &imp.bitstream, &TargetClass::AllFfs).unwrap();
    let load = FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    match sample_fault(&load, &sites, &imp.bitstream, &mut rng) {
        Err(CoreError::InsufficientTargets { needed, available }) => {
            assert_eq!((needed, available), (9, 8));
        }
        other => panic!("expected InsufficientTargets, got {other:?}"),
    }
}

#[test]
fn no_fastpath_escape_hatch_controls_the_default() {
    // Read per call (deliberately uncached) so one process can exercise
    // both paths; no other test in this binary consults the default.
    std::env::set_var("FADES_NO_FASTPATH", "1");
    assert!(!fades_core::fastpath_default());
    std::env::set_var("FADES_NO_FASTPATH", "0");
    assert!(fades_core::fastpath_default());
    std::env::set_var("FADES_NO_FASTPATH", "");
    assert!(fades_core::fastpath_default());
    std::env::remove_var("FADES_NO_FASTPATH");
    assert!(fades_core::fastpath_default());
}
