//! Wall-clock attribution invariants of the lane engine.
//!
//! The cohort's host clock is shared by up to 63 concurrent lanes; each
//! retirement charges the elapsed interval *divided* across the occupied
//! lanes. These tests pin down the consequences:
//!
//! * summed per-experiment `wall_us` across a batched campaign stays
//!   within the campaign's measured elapsed wall (the historical bug had
//!   every lane claim the whole word's residency, inflating the sum 63×),
//! * the telemetry aggregate's `mean_us_per_fault() * n` reproduces the
//!   summed per-experiment `wall_us` on the scalar and batched paths, and
//! * the batched per-fault host cost comes out below scalar.
//!
//! Single test function: both paths feed the process-global telemetry
//! registry and the comparison needs an interference-free sequence.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use std::time::Instant;

use fades_core::{Campaign, CampaignConfig, DurationRange, FaultLoad, TargetClass};
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;
use fades_telemetry::{CampaignAggregate, Recorder};

/// The campaign-test LFSR (same fixture shape as `batch_equiv.rs`).
fn lfsr_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("lfsr");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    b.set_unit(UnitTag::Registers);
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    let netlist = b.finish().unwrap();
    let imp = implement(&netlist, fades_fpga::ArchParams::small()).unwrap();
    (netlist, imp)
}

fn assert_mean_reconstructs_sum(agg: &CampaignAggregate, n: usize) {
    assert_eq!(agg.n as usize, n, "{}: all experiments recorded", agg.name);
    let sum = agg.exp_wall.sum() as f64;
    let reconstructed = agg.mean_us_per_fault() * agg.n as f64;
    assert!(
        (reconstructed - sum).abs() <= 1e-6 * sum.max(1.0),
        "{}: mean_us_per_fault()*n = {reconstructed} but summed wall_us = {sum}",
        agg.name
    );
}

#[test]
fn lane_wall_attribution_shares_the_cohort_clock() {
    let (nl, imp) = lfsr_design();
    let campaign = Campaign::with_config(
        &nl,
        imp,
        &["q"],
        150,
        CampaignConfig {
            threads: 1,
            margin_cycles: 64,
            fastpath: true,
            batch: true,
            warmstart: true,
            sparse: true,
            static_preclassify: false,
        },
    )
    .unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    let n = 100;
    let plan = campaign.plan(&load, n, 42).unwrap();

    let scalar_rec = Recorder::new("wall-scalar", n, 1).with_run_log(None);
    campaign
        .execute_isolated(&plan, 0, Some(&scalar_rec), None)
        .unwrap();
    let scalar = scalar_rec.finish();

    let batched_rec = Recorder::new("wall-batched", n, 1).with_run_log(None);
    let t0 = Instant::now();
    let results = campaign.execute_batched(&plan, Some(&batched_rec)).unwrap();
    let elapsed_us = t0.elapsed().as_micros() as u64;
    let batched = batched_rec.finish();

    assert_mean_reconstructs_sum(&scalar, n);
    assert_mean_reconstructs_sum(&batched, n);

    // The aggregate's histogram sum is exactly the per-result sum.
    let result_sum: u64 = results.iter().map(|r| r.wall_us).sum();
    assert_eq!(result_sum, batched.exp_wall.sum());

    // Shared-clock attribution: the cohort's lanes split its elapsed
    // wall, so the sum cannot exceed what the whole batched execution
    // measurably took (+1µs rounding per experiment). The overcounting
    // bug put this at ~63× the elapsed wall.
    assert!(
        result_sum <= elapsed_us + n as u64,
        "summed batched wall_us ({result_sum}µs) exceeds the measured elapsed wall \
         ({elapsed_us}µs): lanes are claiming whole-word residency again"
    );

    // 63-wide sharing must make the per-fault host cost cheaper than
    // running the same faults one at a time.
    assert!(
        batched.mean_us_per_fault() < scalar.mean_us_per_fault(),
        "batched mean_us_per_fault ({:.1}) not below scalar ({:.1})",
        batched.mean_us_per_fault(),
        scalar.mean_us_per_fault()
    );

    // Drain what the two finish() calls pushed so this binary leaves the
    // process-global registry as it found it.
    let _ = fades_telemetry::drain_aggregates();
}
