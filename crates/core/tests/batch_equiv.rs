//! Equivalence of the bit-parallel lane engine with the scalar
//! per-experiment path.
//!
//! The lane engine is a host-side shortcut: each faulty machine still
//! executes the full workload and its strategy issues the same
//! reconfigurations in the same order, just 63 machines per `u64` word.
//! These tests pin that down for every fault load — identical seeds must
//! give identical faults, outcomes, configuration traffic and
//! (bit-for-bit) modelled emulation time on both paths, including for
//! loads whose faults the lane engine cannot express and routes to the
//! scalar fallback.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{Campaign, CampaignConfig, DurationRange, FaultLoad, PermanentFault, TargetClass};
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;

/// The campaign-test LFSR (same fixture shape as `fastpath.rs`).
fn lfsr_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("lfsr");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    b.set_unit(UnitTag::Registers);
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    let netlist = b.finish().unwrap();
    let imp = implement(&netlist, fades_fpga::ArchParams::small()).unwrap();
    (netlist, imp)
}

fn config(batch: bool) -> CampaignConfig {
    config_with(batch, true, true)
}

/// Full-control constructor for the mode matrix: warm-start and the
/// sparse settle are host-side shortcuts, so every combination must be
/// bit-identical to the scalar reference.
fn config_with(batch: bool, warmstart: bool, sparse: bool) -> CampaignConfig {
    CampaignConfig {
        threads: 1,
        margin_cycles: 64,
        fastpath: true,
        batch,
        warmstart,
        sparse,
        // Off: the equivalence matrix must exercise the engines for real.
        static_preclassify: false,
    }
}

/// Every {warm-start, sparse} combination, all-on first (the default).
const MODE_MATRIX: [(bool, bool); 4] = [(true, true), (true, false), (false, true), (false, false)];

/// Runs `load` on both paths of the *same* campaign and asserts the
/// per-experiment results and aggregated stats are identical — outcomes
/// and traffic exactly, modelled emulation seconds to the bit.
fn assert_equivalent(
    nl: &fades_netlist::Netlist,
    imp: &fades_pnr::Implementation,
    ports: &[&str],
    workload_cycles: u64,
    load: &FaultLoad,
    n: usize,
    seed: u64,
) {
    assert_equivalent_cfg(nl, imp, ports, workload_cycles, load, n, seed, config(true));
}

/// Same contract as [`assert_equivalent`] but under an arbitrary batched
/// configuration (mode-matrix sweeps pass each hatch combination).
fn assert_equivalent_cfg(
    nl: &fades_netlist::Netlist,
    imp: &fades_pnr::Implementation,
    ports: &[&str],
    workload_cycles: u64,
    load: &FaultLoad,
    n: usize,
    seed: u64,
    cfg: CampaignConfig,
) {
    let campaign =
        Campaign::with_config(nl, imp.clone(), ports, workload_cycles, cfg).expect("campaign");
    let batched = campaign
        .run_batched_detailed(load, n, seed)
        .expect("batched run");
    let scalar = campaign.run_detailed(load, n, seed).expect("scalar run");
    assert_eq!(batched.len(), scalar.len());
    for (b, s) in batched.iter().zip(&scalar) {
        assert_eq!(b.fault, s.fault, "{load:?}");
        assert_eq!(b.schedule, s.schedule, "{load:?}");
        assert_eq!(b.outcome, s.outcome, "{load:?} fault {:?}", b.fault);
        assert_eq!(
            b.traffic, s.traffic,
            "{load:?} fault {:?}: configuration traffic must be identical",
            b.fault
        );
        assert_eq!(b.strategy, s.strategy);
    }
    // The modelled campaign time — the paper's reported quantity — must
    // agree to the bit, not just approximately.
    let bs = campaign.run_batched(load, n, seed).expect("batched stats");
    let ss = campaign.run(load, n, seed).expect("scalar stats");
    assert_eq!(bs.outcomes, ss.outcomes, "{load:?}");
    assert_eq!(
        bs.emulation_seconds.to_bits(),
        ss.emulation_seconds.to_bits(),
        "{load:?}: modelled emulation time must be bit-identical"
    );
}

#[test]
fn ff_bit_flips_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 12, 201);
}

#[test]
fn gsr_bit_flips_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let mut load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    load.use_gsr = true;
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 202);
}

#[test]
fn multiple_bit_flips_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 3);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 203);
}

#[test]
fn lut_pulses_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 12, 204);
}

#[test]
fn cb_input_pulses_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::pulses(TargetClass::CbInputs, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 205);
}

#[test]
fn wire_delays_fall_back_to_scalar_and_match() {
    // Routing delays are not lane-expressible: the whole load routes to
    // the scalar fallback inside `run_batched`, which must still produce
    // results identical to a plain scalar run.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 206);
}

#[test]
fn indeterminations_match_scalar_path() {
    // `oscillating: false` runs on the lanes; `oscillating: true`
    // re-randomises every cycle and falls back to the scalar path.
    let (nl, imp) = lfsr_design();
    for oscillating in [false, true] {
        let load =
            FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::SHORT, oscillating);
        assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 207);
    }
}

#[test]
fn lut_indeterminations_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    for oscillating in [false, true] {
        let load =
            FaultLoad::indeterminations(TargetClass::AllLuts, DurationRange::SHORT, oscillating);
        assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 208);
    }
}

#[test]
fn permanent_stuck_at_faults_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllLuts);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 209);
}

#[test]
fn permanent_stuck_ff_faults_match_scalar_path() {
    // Stuck-at on a flip-flop resolves to the StuckFf strategy, which
    // re-asserts its level through the LSR every cycle — per-cycle PulseLsr
    // traffic the lanes must charge identically.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllFfs);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 10, 210);
}

#[test]
fn permanent_open_line_faults_match_scalar_path() {
    let (nl, imp) = lfsr_design();
    for kind in [
        PermanentFault::OpenLine,
        PermanentFault::Bridging,
        PermanentFault::StuckOpen,
    ] {
        let load = FaultLoad::permanent(kind, TargetClass::AllLuts);
        assert_equivalent(&nl, &imp, &["q"], 150, &load, 8, 216);
    }
}

#[test]
fn memory_bit_flips_match_scalar_path() {
    use fades_mcu8051::{build_soc, workloads, OBSERVED_PORTS};
    let w = workloads::fibonacci();
    let soc = build_soc(&w.rom).unwrap();
    let imp = implement(&soc.netlist, fades_fpga::ArchParams::virtex1000_like()).unwrap();
    let load = FaultLoad::bit_flips(
        TargetClass::MemoryBits {
            name: "iram".into(),
            lo: w.data_range.0 as usize,
            hi: w.data_range.1 as usize,
        },
        DurationRange::SubCycle,
    );
    assert_equivalent(&soc.netlist, &imp, &OBSERVED_PORTS, 700, &load, 6, 211);
}

#[test]
fn cohort_overflow_refills_and_multi_pass() {
    // More experiments than lanes: the runner must refill retired lanes
    // and, when an entry's injection instant has already passed, carry it
    // into a later pass — all without disturbing equivalence.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    assert_equivalent(&nl, &imp, &["q"], 150, &load, 100, 212);
}

#[test]
fn batched_execution_composes_with_shards() {
    // `execute_batched` accepts shards, which is how it composes with
    // `fades-dispatch`: the union of per-shard results must equal the
    // monolithic run.
    let (nl, imp) = lfsr_design();
    let campaign = Campaign::with_config(&nl, imp, &["q"], 150, config(true)).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    let plan = campaign.plan(&load, 20, 213).unwrap();
    let whole = campaign.execute_batched(&plan, None).unwrap();
    let mut sharded = Vec::new();
    for shard in 0..3 {
        let sub = plan.shard(shard, 3);
        sharded.extend(
            campaign
                .execute_batched(&sub, None)
                .unwrap()
                .into_iter()
                .zip(sub.experiments.iter().map(|e| e.index)),
        );
    }
    sharded.sort_by_key(|(_, index)| *index);
    assert_eq!(whole.len(), sharded.len());
    for (w, (s, _)) in whole.iter().zip(&sharded) {
        assert_eq!(w.fault, s.fault);
        assert_eq!(w.outcome, s.outcome);
        assert_eq!(w.traffic, s.traffic);
    }
}

#[test]
fn disabling_batch_makes_run_batched_scalar() {
    // With `batch: false` the batched entry points must route everything
    // through the scalar executor — observable as zero lane telemetry.
    let (nl, imp) = lfsr_design();
    let campaign = Campaign::with_config(&nl, imp, &["q"], 150, config(false)).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    fades_telemetry::sim::reset();
    let scalar = campaign.run_detailed(&load, 8, 214).unwrap();
    let batched = campaign.run_batched_detailed(&load, 8, 214).unwrap();
    assert_eq!(
        fades_telemetry::sim::LANE_CYCLES.get(),
        0,
        "batch: false must never touch the lane engine"
    );
    for (b, s) in batched.iter().zip(&scalar) {
        assert_eq!(b.outcome, s.outcome);
        assert_eq!(b.traffic, s.traffic);
    }
}

/// Asserts two isolated-executor verdict streams are equivalent:
/// identical indices, outcomes, traffic and bit-identical modelled
/// seconds.
fn assert_verdicts_equivalent(
    batched: &[fades_core::ExperimentVerdict],
    scalar: &[fades_core::ExperimentVerdict],
) {
    use fades_core::ExperimentVerdict as V;
    assert_eq!(batched.len(), scalar.len());
    for (b, s) in batched.iter().zip(scalar) {
        assert_eq!(b.index(), s.index());
        match (b, s) {
            (
                V::Completed {
                    modelled_seconds: bm,
                    result: br,
                    ..
                },
                V::Completed {
                    modelled_seconds: sm,
                    result: sr,
                    ..
                },
            ) => {
                assert_eq!(br.outcome, sr.outcome, "index {}", b.index());
                assert_eq!(br.traffic, sr.traffic, "index {}", b.index());
                assert_eq!(
                    bm.to_bits(),
                    sm.to_bits(),
                    "index {}: modelled seconds must be bit-identical",
                    b.index()
                );
            }
            (V::Quarantined { .. }, V::Quarantined { .. }) => {}
            other => panic!("verdict kinds diverge at index {}: {other:?}", b.index()),
        }
    }
}

#[test]
fn batched_isolated_matches_scalar_isolated_bitwise() {
    // The tentpole contract: the lane engine under the isolation
    // contract produces verdicts bit-identical to the scalar isolated
    // executor, and its observer fires exactly once per experiment — at
    // lane retirement, i.e. interleaved with execution, not after it.
    let (nl, imp) = lfsr_design();
    let campaign = Campaign::with_config(&nl, imp, &["q"], 150, config(true)).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    let plan = campaign.plan(&load, 70, 215).unwrap();

    let observed = std::sync::Mutex::new(Vec::new());
    let observer = |v: &fades_core::ExperimentVerdict| observed.lock().unwrap().push(v.index());
    let batched = campaign
        .execute_batched_isolated(&plan, 1, None, Some(&observer))
        .unwrap();
    let scalar = campaign.execute_isolated(&plan, 1, None, None).unwrap();
    assert_verdicts_equivalent(&batched, &scalar);

    let mut seen = observed.into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..70).collect::<Vec<u64>>(),
        "observer must fire exactly once per experiment"
    );
}

#[test]
fn batched_isolated_scalar_fallback_load_matches() {
    // A load the lane engine cannot express at all (routing delays):
    // `execute_batched_isolated` must route it wholesale to the scalar
    // isolated path and stay equivalent.
    let (nl, imp) = lfsr_design();
    let campaign = Campaign::with_config(&nl, imp, &["q"], 150, config(true)).unwrap();
    let load = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT);
    let plan = campaign.plan(&load, 10, 217).unwrap();
    let batched = campaign
        .execute_batched_isolated(&plan, 1, None, None)
        .unwrap();
    let scalar = campaign.execute_isolated(&plan, 1, None, None).unwrap();
    assert_verdicts_equivalent(&batched, &scalar);
}

/// A counter whose inverted bits feed only an unobserved port (same
/// fixture shape as `fastpath.rs`): pulses into the inverters are silent
/// and the lane re-converges with golden once the fault is removed.
fn dead_logic_design() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("dead");
    let r = b.reg("cnt", 4, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    b.output("q", &q);
    let mut dead = Vec::new();
    for i in 0..4 {
        dead.push(b.not_bit(q.bit(i)));
    }
    let dead_sig = fades_rtl::Signal::from_bits(dead);
    b.output("unused_dbg", &dead_sig);
    let nl = b.finish().unwrap();
    let imp = implement(&nl, fades_fpga::ArchParams::small()).unwrap();
    (nl, imp)
}

#[test]
fn silent_faults_retire_lanes_early() {
    // Guard against the differential suite silently passing because the
    // batch path quietly fell back to scalar for everything — and check
    // the batch analogue of early stop: pulses into the dead inverters
    // reconverge with lane 0 once removed, so those lanes must retire.
    let (nl, imp) = dead_logic_design();
    let campaign = Campaign::with_config(&nl, imp.clone(), &["q"], 150, config(true)).unwrap();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT);
    fades_telemetry::sim::reset();
    let batched = campaign.run_batched_detailed(&load, 20, 17).unwrap();
    assert!(
        fades_telemetry::sim::LANE_CYCLES.get() > 0,
        "the lane engine never ran"
    );
    assert!(
        fades_telemetry::sim::LANE_RETIREMENTS.get() > 0,
        "no lane ever retired early on reconvergence"
    );
    fades_telemetry::sim::reset();
    assert!(
        batched
            .iter()
            .any(|r| r.outcome == fades_core::Outcome::Silent && r.early_stop_cycles > 0),
        "no silent experiment retired early: {:?}",
        batched
            .iter()
            .map(|r| (r.outcome, r.early_stop_cycles))
            .collect::<Vec<_>>()
    );
    // And the retired outcomes still match the scalar reference.
    let scalar = campaign.run_detailed(&load, 20, 17).unwrap();
    for (b, s) in batched.iter().zip(&scalar) {
        assert_eq!(b.outcome, s.outcome, "fault {:?}", b.fault);
        assert_eq!(b.traffic, s.traffic);
    }
}

#[test]
fn no_batch_escape_hatch_controls_the_default() {
    // Read per call (deliberately uncached) so one process can exercise
    // both settings; no other test in this binary consults the default.
    std::env::set_var("FADES_NO_BATCH", "1");
    assert!(!fades_core::batch_default());
    std::env::set_var("FADES_NO_BATCH", "0");
    assert!(fades_core::batch_default());
    std::env::set_var("FADES_NO_BATCH", "");
    assert!(fades_core::batch_default());
    std::env::remove_var("FADES_NO_BATCH");
    assert!(fades_core::batch_default());
}

/// Scalar reference once, then each {warm-start, sparse} combination of
/// the batched path against it: detailed results per-field, stats
/// outcomes and bit-identical modelled seconds.
fn assert_matrix_matches(
    nl: &fades_netlist::Netlist,
    imp: &fades_pnr::Implementation,
    ports: &[&str],
    workload_cycles: u64,
    load: &FaultLoad,
    n: usize,
    seed: u64,
) {
    let reference = Campaign::with_config(nl, imp.clone(), ports, workload_cycles, config(false))
        .expect("scalar campaign");
    let scalar = reference.run_detailed(load, n, seed).expect("scalar run");
    let ss = reference.run(load, n, seed).expect("scalar stats");
    for (warmstart, sparse) in MODE_MATRIX {
        let campaign = Campaign::with_config(
            nl,
            imp.clone(),
            ports,
            workload_cycles,
            config_with(true, warmstart, sparse),
        )
        .expect("batched campaign");
        let batched = campaign
            .run_batched_detailed(load, n, seed)
            .expect("batched run");
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            assert_eq!(b.fault, s.fault, "warmstart={warmstart} sparse={sparse}");
            assert_eq!(
                b.schedule, s.schedule,
                "warmstart={warmstart} sparse={sparse}"
            );
            assert_eq!(
                b.outcome, s.outcome,
                "warmstart={warmstart} sparse={sparse} fault {:?}",
                b.fault
            );
            assert_eq!(
                b.traffic, s.traffic,
                "warmstart={warmstart} sparse={sparse} fault {:?}: \
                 configuration traffic must be identical",
                b.fault
            );
        }
        let bs = campaign.run_batched(load, n, seed).expect("batched stats");
        assert_eq!(
            bs.outcomes, ss.outcomes,
            "warmstart={warmstart} sparse={sparse}"
        );
        assert_eq!(
            bs.emulation_seconds.to_bits(),
            ss.emulation_seconds.to_bits(),
            "warmstart={warmstart} sparse={sparse}: modelled time must be bit-identical"
        );
    }
}

#[test]
fn mode_matrix_multi_pass_matches_scalar_bitwise() {
    // The tentpole sweep: warm-start and the sparse settle, each on and
    // off, over a multi-pass load (n > 63 forces cohort refill plus
    // carry-over of entries whose injection instant already passed —
    // exactly where a stale warm-start cycle or an unmarked dirty cone
    // would diverge).
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    assert_matrix_matches(&nl, &imp, &["q"], 150, &load, 100, 218);
}

#[test]
fn mode_matrix_memory_load_matches_scalar() {
    // BRAM-targeting faults exercise the dirty-content divergence sweep,
    // BRAM node marking and the per-lane gather path under every mode
    // combination.
    use fades_mcu8051::{build_soc, workloads, OBSERVED_PORTS};
    let w = workloads::fibonacci();
    let soc = build_soc(&w.rom).unwrap();
    let imp = implement(&soc.netlist, fades_fpga::ArchParams::virtex1000_like()).unwrap();
    let load = FaultLoad::bit_flips(
        TargetClass::MemoryBits {
            name: "iram".into(),
            lo: w.data_range.0 as usize,
            hi: w.data_range.1 as usize,
        },
        DurationRange::SubCycle,
    );
    assert_matrix_matches(&soc.netlist, &imp, &OBSERVED_PORTS, 700, &load, 6, 219);
}

#[test]
fn mode_matrix_isolated_matches_scalar_isolated() {
    // The isolation contract under every mode combination: verdicts from
    // `execute_batched_isolated` (which rebuilds the engine after
    // quarantines) must stay bit-identical to the scalar isolated path.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    let reference = Campaign::with_config(&nl, imp.clone(), &["q"], 150, config(false)).unwrap();
    let plan = reference.plan(&load, 70, 220).unwrap();
    let scalar = reference.execute_isolated(&plan, 1, None, None).unwrap();
    for (warmstart, sparse) in MODE_MATRIX {
        let campaign = Campaign::with_config(
            &nl,
            imp.clone(),
            &["q"],
            150,
            config_with(true, warmstart, sparse),
        )
        .unwrap();
        let batched = campaign
            .execute_batched_isolated(&plan, 1, None, None)
            .unwrap();
        assert_verdicts_equivalent(&batched, &scalar);
    }
}

#[test]
fn mode_matrix_composes_with_shards() {
    // Sharded composition must hold in every mode: warm-start picks its
    // checkpoint from each shard's own earliest injection, so per-shard
    // unions must still equal the monolithic run.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    for (warmstart, sparse) in MODE_MATRIX {
        let campaign = Campaign::with_config(
            &nl,
            imp.clone(),
            &["q"],
            150,
            config_with(true, warmstart, sparse),
        )
        .unwrap();
        let plan = campaign.plan(&load, 20, 222).unwrap();
        let whole = campaign.execute_batched(&plan, None).unwrap();
        let mut sharded = Vec::new();
        for shard in 0..3 {
            let sub = plan.shard(shard, 3);
            sharded.extend(
                campaign
                    .execute_batched(&sub, None)
                    .unwrap()
                    .into_iter()
                    .zip(sub.experiments.iter().map(|e| e.index)),
            );
        }
        sharded.sort_by_key(|(_, index)| *index);
        assert_eq!(whole.len(), sharded.len());
        for (w, (s, _)) in whole.iter().zip(&sharded) {
            assert_eq!(w.fault, s.fault, "warmstart={warmstart} sparse={sparse}");
            assert_eq!(
                w.outcome, s.outcome,
                "warmstart={warmstart} sparse={sparse}"
            );
            assert_eq!(
                w.traffic, s.traffic,
                "warmstart={warmstart} sparse={sparse}"
            );
        }
    }
}

#[test]
fn multi_thread_batched_matches_single_thread_bitwise() {
    // Per-experiment results are cohort-composition-independent (lanes
    // interact only with the golden lane and timing draws are
    // lane-invariant), so chunking the sorted plan across worker threads
    // must be invisible: threads=4 equals threads=1 equals scalar, to the
    // bit.
    let (nl, imp) = lfsr_design();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SHORT);
    let n = 150; // several cohorts, so the chunking actually splits work
    let mt = Campaign::with_config(
        &nl,
        imp.clone(),
        &["q"],
        150,
        CampaignConfig {
            threads: 4,
            ..config(true)
        },
    )
    .unwrap();
    let st = Campaign::with_config(&nl, imp.clone(), &["q"], 150, config(true)).unwrap();
    let threaded = mt.run_batched_detailed(&load, n, 221).unwrap();
    let single = st.run_batched_detailed(&load, n, 221).unwrap();
    let scalar = st.run_detailed(&load, n, 221).unwrap();
    assert_eq!(threaded.len(), single.len());
    assert_eq!(threaded.len(), scalar.len());
    for ((t, o), s) in threaded.iter().zip(&single).zip(&scalar) {
        assert_eq!(t.fault, s.fault);
        assert_eq!(t.outcome, o.outcome, "fault {:?}", t.fault);
        assert_eq!(t.outcome, s.outcome, "fault {:?}", t.fault);
        assert_eq!(t.traffic, o.traffic, "fault {:?}", t.fault);
        assert_eq!(t.traffic, s.traffic, "fault {:?}", t.fault);
    }
    let ts = mt.run_batched(&load, n, 221).unwrap();
    let os = st.run_batched(&load, n, 221).unwrap();
    assert_eq!(ts.outcomes, os.outcomes);
    assert_eq!(
        ts.emulation_seconds.to_bits(),
        os.emulation_seconds.to_bits(),
        "modelled time must not depend on the thread count"
    );
}

#[test]
fn warmstart_and_sparse_escape_hatches_control_the_defaults() {
    // Read per call (deliberately uncached), mirroring FADES_NO_BATCH; no
    // other test in this binary consults these defaults — every campaign
    // here sets the fields explicitly.
    std::env::set_var("FADES_NO_WARMSTART", "1");
    assert!(!fades_core::warmstart_default());
    std::env::set_var("FADES_NO_WARMSTART", "0");
    assert!(fades_core::warmstart_default());
    std::env::set_var("FADES_NO_WARMSTART", "");
    assert!(fades_core::warmstart_default());
    std::env::remove_var("FADES_NO_WARMSTART");
    assert!(fades_core::warmstart_default());

    std::env::set_var("FADES_NO_SPARSE", "1");
    assert!(!fades_core::sparse_default());
    std::env::set_var("FADES_NO_SPARSE", "0");
    assert!(fades_core::sparse_default());
    std::env::set_var("FADES_NO_SPARSE", "");
    assert!(fades_core::sparse_default());
    std::env::remove_var("FADES_NO_SPARSE");
    assert!(fades_core::sparse_default());
}
