//! Campaign-level behaviour of the fault-emulation framework.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::{
    Campaign, DurationRange, FaultLoad, FaultModel, Outcome, PermanentFault, TargetClass,
};
use fades_fpga::ArchParams;
use fades_netlist::UnitTag;
use fades_pnr::implement;
use fades_rtl::RtlBuilder;

/// A small sequential design for fast campaign tests: an 8-bit LFSR
/// (Registers unit) XOR-folded into a parity flag (Alu unit), with the
/// LFSR value observed.
fn lfsr_campaign() -> (fades_netlist::Netlist, fades_pnr::Implementation) {
    let mut b = RtlBuilder::new("lfsr");
    b.set_unit(UnitTag::Registers);
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    b.set_unit(UnitTag::Alu);
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    // Build the shifted vector by hand so no orphan constant LUT exists
    // (every LUT in this design is live and observable).
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    b.set_unit(UnitTag::Registers);
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    let netlist = b.finish().unwrap();
    let imp = implement(&netlist, ArchParams::small()).unwrap();
    (netlist, imp)
}

#[test]
fn bit_flip_into_lfsr_always_fails() {
    // Every LFSR bit feeds the observed output within a few cycles, so a
    // flipped state must diverge the trace.
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 200).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let stats = campaign.run(&load, 24, 7).unwrap();
    assert_eq!(stats.outcomes.failures, 24);
}

#[test]
fn empty_campaign_yields_zeroed_stats() {
    // Regression: n_faults = 0 used to panic in the executor's work
    // partitioning (`chunks(0)`); it must simply produce empty stats.
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let stats = campaign.run(&load, 0, 7).unwrap();
    assert_eq!(stats.total(), 0);
    assert_eq!(stats.emulation_seconds, 0.0);
    assert_eq!(stats.mean_seconds_per_fault(), 0.0);
    assert!(campaign.run_detailed(&load, 0, 7).unwrap().is_empty());
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 150).unwrap();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SHORT);
    let a = campaign.run_detailed(&load, 16, 42).unwrap();
    let b = campaign.run_detailed(&load, 16, 42).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.fault, y.fault);
        assert_eq!(x.outcome, y.outcome);
    }
    let c = campaign.run_detailed(&load, 16, 43).unwrap();
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.fault != y.fault),
        "different seeds draw different fault lists"
    );
}

#[test]
fn pulse_removal_restores_original_configuration() {
    // After a pulse campaign the per-experiment device must have been
    // restored each time: a fresh run with zero faults must match golden,
    // i.e. running the same campaign twice gives identical outcomes.
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle);
    let first = campaign.run(&load, 12, 5).unwrap();
    let second = campaign.run(&load, 12, 5).unwrap();
    assert_eq!(first.outcomes, second.outcomes);
}

#[test]
fn gsr_mechanism_moves_more_configuration_data_than_lsr() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let mut lsr = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let mut gsr = lsr.clone();
    lsr.use_gsr = false;
    gsr.use_gsr = true;
    let lsr_res = campaign.run_detailed(&lsr, 8, 11).unwrap();
    let gsr_res = campaign.run_detailed(&gsr, 8, 11).unwrap();
    let bytes = |rs: &[fades_core::ExperimentResult]| -> u64 {
        rs.iter()
            .map(|r| r.traffic.readback_bytes + r.traffic.write_bytes)
            .sum()
    };
    // On this one-column design GSR costs exactly twice LSR; on real
    // multi-column designs the gap is much larger (see the
    // `ablation_gsr_vs_lsr` bench on the 8051).
    assert!(
        bytes(&gsr_res) >= 2 * bytes(&lsr_res),
        "GSR must be more expensive: {} vs {}",
        bytes(&gsr_res),
        bytes(&lsr_res)
    );
    // Same seeds target the same FFs, so functional outcomes agree.
    for (a, b) in lsr_res.iter().zip(&gsr_res) {
        assert_eq!(a.outcome, b.outcome, "GSR and LSR flips are equivalent");
    }
}

#[test]
fn oscillating_indetermination_reconfigures_every_cycle() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let fixed =
        FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::Cycles(15, 15), false);
    let osc = FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::Cycles(15, 15), true);
    let f = campaign.run(&fixed, 8, 3).unwrap();
    let o = campaign.run(&osc, 8, 3).unwrap();
    assert!(
        o.mean_seconds_per_fault() > 2.0 * f.mean_seconds_per_fault(),
        "oscillating {} vs fixed {}",
        o.mean_seconds_per_fault(),
        f.mean_seconds_per_fault()
    );
}

#[test]
fn delay_full_download_dominates_partial_cost() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 100).unwrap();
    let mut full = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT);
    let mut partial = full.clone();
    full.delay_full_download = true;
    partial.delay_full_download = false;
    let f = campaign.run_detailed(&full, 8, 9).unwrap();
    let p = campaign.run_detailed(&partial, 8, 9).unwrap();
    let bulk = |rs: &[fades_core::ExperimentResult]| -> u64 {
        rs.iter().map(|r| r.traffic.bulk_bytes).sum()
    };
    let total = |rs: &[fades_core::ExperimentResult]| -> u64 {
        rs.iter()
            .map(|r| r.traffic.bulk_bytes + r.traffic.write_bytes + r.traffic.readback_bytes)
            .sum()
    };
    assert!(bulk(&p) == 0, "partial mode ships no full configurations");
    assert!(bulk(&f) > 0, "full-download mode ships full configurations");
    assert!(total(&f) > total(&p), "full downloads move more bytes");
}

#[test]
fn permanent_stuck_at_in_lfsr_feedback_fails() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 200).unwrap();
    let load = FaultLoad::permanent(PermanentFault::StuckAt, TargetClass::AllLuts);
    assert_eq!(load.model, FaultModel::Permanent(PermanentFault::StuckAt));
    let stats = campaign.run(&load, 16, 21).unwrap();
    // Every LUT of this design feeds the observed LFSR feedback, so a
    // permanently stuck function generator must corrupt the sequence.
    assert!(stats.outcomes.failures >= 14, "{:?}", stats.outcomes);
}

#[test]
fn silent_faults_exist_when_targeting_dead_logic() {
    // A LUT whose output feeds nothing observable: pulses there are
    // silent.
    let mut b = RtlBuilder::new("dead");
    let r = b.reg("cnt", 4, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    b.output("q", &q);
    // Dead logic: parity of the counter, unobserved but kept alive by an
    // unused output port.
    let mut dead = Vec::new();
    for i in 0..4 {
        dead.push(b.not_bit(q.bit(i)));
    }
    let dead_sig = fades_rtl::Signal::from_bits(dead);
    b.output("unused_dbg", &dead_sig);
    let nl = b.finish().unwrap();
    let imp = implement(&nl, ArchParams::small()).unwrap();
    // Observe only `q`: pulses into the inverters cannot reach it.
    let campaign = Campaign::new(&nl, imp, &["q"], 64).unwrap();
    let load = FaultLoad::pulses(TargetClass::AllLuts, DurationRange::SubCycle);
    let results = campaign.run_detailed(&load, 20, 17).unwrap();
    assert!(results.iter().any(|r| r.outcome == Outcome::Silent));
}

#[test]
fn screening_finds_sensitive_ffs() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 150).unwrap();
    let sensitive = campaign.screen_sensitive_ffs(2, 99).unwrap();
    // Every LFSR bit is observable, so all 8 FFs are eligible.
    assert_eq!(sensitive.len(), 8);
}

#[test]
fn memory_bit_flip_campaign_on_8051_data_mostly_fails() {
    use fades_mcu8051::{build_soc, workloads, OBSERVED_PORTS};
    let w = workloads::bubblesort();
    let soc = build_soc(&w.rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let campaign = Campaign::new(&soc.netlist, imp, &OBSERVED_PORTS, 1330).unwrap();
    let load = FaultLoad::bit_flips(
        TargetClass::MemoryBits {
            name: "iram".into(),
            lo: w.data_range.0 as usize,
            hi: w.data_range.1 as usize,
        },
        DurationRange::SubCycle,
    );
    let stats = campaign.run(&load, 12, 2024).unwrap();
    // Paper Fig. 11: bit-flips in the used memory positions very likely
    // cause failures (81% there). Require a clear majority.
    assert!(
        stats.outcomes.failures * 2 > stats.total(),
        "{:?}",
        stats.outcomes
    );
}

#[test]
fn multiple_bit_flips_fail_at_least_as_often_as_single() {
    let (nl, imp) = lfsr_campaign();
    let campaign = Campaign::new(&nl, imp, &["q"], 150).unwrap();
    let single = campaign
        .run(
            &FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 1),
            16,
            31,
        )
        .unwrap();
    let triple = campaign
        .run(
            &FaultLoad::multiple_bit_flips(TargetClass::AllFfs, 3),
            16,
            31,
        )
        .unwrap();
    assert!(triple.outcomes.failures >= single.outcomes.failures.saturating_sub(1));
    assert_eq!(triple.total(), 16);
}

#[test]
fn multi_flip_flips_exactly_the_targeted_ffs() {
    use fades_core::strategies::{InjectionStrategy, MultiBitFlip};
    use fades_fpga::Device;
    use rand::SeedableRng;
    let (_nl, imp) = lfsr_campaign();
    let mut dev = Device::configure(imp.bitstream.clone()).unwrap();
    dev.run(13);
    let before: Vec<_> = imp
        .bitstream
        .used_ffs()
        .iter()
        .map(|&cb| (cb, dev.peek_ff(cb).unwrap()))
        .collect();
    let targets: Vec<_> = before.iter().take(3).map(|(cb, _)| *cb).collect();
    let mut strategy = MultiBitFlip::new(targets.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    strategy.inject(&mut dev, &mut rng).unwrap();
    for (cb, value) in before {
        let expect = value ^ targets.contains(&cb);
        assert_eq!(dev.peek_ff(cb).unwrap(), expect, "{cb}");
    }
}
