//! Multi-bit registers with deferred data connection.

use fades_netlist::DffHandle;

use crate::signal::Signal;

/// A multi-bit register whose data input is connected after its output has
/// been used (registers almost always sit in feedback loops).
///
/// Created by [`crate::RtlBuilder::reg`]; its `D` input must be connected
/// exactly once with [`crate::RtlBuilder::connect`] or
/// [`crate::RtlBuilder::connect_en`] before the netlist is finished.
#[derive(Debug)]
#[must_use = "the register must be connected with RtlBuilder::connect(_en)"]
pub struct Reg {
    pub(crate) q: Signal,
    pub(crate) handles: Vec<DffHandle>,
    pub(crate) name: String,
}

impl Reg {
    /// The register's output value.
    pub fn q(&self) -> &Signal {
        &self.q
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.q.width()
    }

    /// The register's base name (bits are named `name[i]`).
    pub fn name(&self) -> &str {
        &self.name
    }
}
