//! Multi-bit signals.

use fades_netlist::NetId;

/// A multi-bit value: an ordered bundle of single-bit nets, LSB first.
///
/// Signals are cheap handles; all logic construction happens through
/// [`crate::RtlBuilder`] methods that consume and produce them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    bits: Vec<NetId>,
}

impl Signal {
    /// Bundles nets (LSB first) into a signal.
    pub fn from_bits(bits: Vec<NetId>) -> Self {
        Signal { bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The underlying nets, LSB first.
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// A single bit as a net.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bit(&self, index: usize) -> NetId {
        self.bits[index]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if the signal is empty.
    pub fn msb(&self) -> NetId {
        assert!(!self.bits.is_empty(), "signal must not be empty");
        self.bits[self.bits.len() - 1]
    }

    /// A sub-range `[lo, lo+width)` as a new signal.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the signal.
    pub fn slice(&self, lo: usize, width: usize) -> Signal {
        Signal {
            bits: self.bits[lo..lo + width].to_vec(),
        }
    }

    /// Concatenates `self` (low bits) with `high` (high bits).
    pub fn concat(&self, high: &Signal) -> Signal {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        Signal { bits }
    }
}

impl From<NetId> for Signal {
    fn from(net: NetId) -> Self {
        Signal { bits: vec![net] }
    }
}
