//! Word-level RTL construction layer over `fades-netlist`.
//!
//! The 8051 microcontroller model (and any other system under analysis) is
//! written against this crate's [`RtlBuilder`], which provides multi-bit
//! [`Signal`]s, registers, adders, multiplexer trees and memories, and
//! lowers everything to the 4-input-LUT netlist that both the HDL
//! simulator (`fades-netlist`) and the FPGA implementation flow
//! (`fades-pnr`) consume.
//!
//! # Example
//!
//! A two-bit saturating counter:
//!
//! ```
//! use fades_rtl::RtlBuilder;
//! use fades_netlist::Simulator;
//!
//! let mut b = RtlBuilder::new("sat");
//! let cnt = b.reg("cnt", 2, 0);
//! let next = b.add_const(cnt.q(), 1);
//! let at_max = b.eq_const(cnt.q(), 3);
//! let q = cnt.q().clone();
//! let d = b.mux(at_max, &q, &next);
//! b.connect(cnt, &d);
//! b.output("q", &q);
//! let netlist = b.finish()?;
//!
//! let mut sim = Simulator::new(&netlist)?;
//! for expect in [0u64, 1, 2, 3, 3, 3] {
//!     sim.settle();
//!     assert_eq!(sim.output_u64("q")?, expect);
//!     sim.clock_edge();
//! }
//! # Ok::<(), fades_netlist::NetlistError>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod builder;
mod reg;
mod signal;

pub use builder::RtlBuilder;
pub use reg::Reg;
pub use signal::Signal;
