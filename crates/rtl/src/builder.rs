//! The RTL builder: word-level operators lowered to LUTs.

use fades_netlist::{NetId, Netlist, NetlistBuilder, NetlistError, UnitTag};

use crate::reg::Reg;
use crate::signal::Signal;

/// Builds a netlist from word-level RTL operations.
///
/// Thin, stateful wrapper around [`NetlistBuilder`]: every operator
/// synthesises a small LUT network. See the crate documentation for an
/// example.
#[derive(Debug)]
pub struct RtlBuilder {
    nl: NetlistBuilder,
}

impl RtlBuilder {
    /// Creates a builder for a netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RtlBuilder {
            nl: NetlistBuilder::new(name),
        }
    }

    /// Sets the unit tag applied to subsequently created cells (for
    /// placement regions and per-unit fault campaigns).
    pub fn set_unit(&mut self, unit: UnitTag) {
        self.nl.set_unit(unit);
    }

    /// Access to the underlying bit-level builder for operations this
    /// layer does not cover.
    pub fn netlist_builder(&mut self) -> &mut NetlistBuilder {
        &mut self.nl
    }

    /// Declares an input port.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Signal {
        Signal::from_bits(self.nl.input(name, width))
    }

    /// Declares an output port driven by `sig`.
    pub fn output(&mut self, name: impl Into<String>, sig: &Signal) {
        self.nl.output(name, sig.bits());
    }

    /// A constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn lit(&mut self, value: u64, width: usize) -> Signal {
        assert!(
            width == 64 || value < (1u64 << width),
            "literal {value} does not fit in {width} bits"
        );
        let bits = (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.nl.const1()
                } else {
                    self.nl.const0()
                }
            })
            .collect();
        Signal::from_bits(bits)
    }

    /// The constant-0 net.
    pub fn zero(&mut self) -> NetId {
        self.nl.const0()
    }

    /// The constant-1 net.
    pub fn one(&mut self) -> NetId {
        self.nl.const1()
    }

    /// Zero-extends a signal to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the signal.
    pub fn zext(&mut self, sig: &Signal, width: usize) -> Signal {
        assert!(width >= sig.width(), "zext cannot narrow");
        let mut bits = sig.bits().to_vec();
        while bits.len() < width {
            bits.push(self.nl.const0());
        }
        Signal::from_bits(bits)
    }

    fn bitwise(
        &mut self,
        a: &Signal,
        b: &Signal,
        op: impl Fn(&mut NetlistBuilder, NetId, NetId) -> NetId,
    ) -> Signal {
        assert_eq!(a.width(), b.width(), "width mismatch in bitwise op");
        let bits = a
            .bits()
            .iter()
            .zip(b.bits())
            .map(|(&x, &y)| op(&mut self.nl, x, y))
            .collect();
        Signal::from_bits(bits)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise(a, b, fades_netlist::NetlistBuilder::and2)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise(a, b, fades_netlist::NetlistBuilder::or2)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &Signal, b: &Signal) -> Signal {
        self.bitwise(a, b, fades_netlist::NetlistBuilder::xor2)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &Signal) -> Signal {
        let bits = a.bits().iter().map(|&x| self.nl.not(x)).collect();
        Signal::from_bits(bits)
    }

    /// Single-bit AND.
    pub fn and_bit(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.and2(a, b)
    }

    /// Single-bit OR.
    pub fn or_bit(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.or2(a, b)
    }

    /// Single-bit XOR.
    pub fn xor_bit(&mut self, a: NetId, b: NetId) -> NetId {
        self.nl.xor2(a, b)
    }

    /// Single-bit NOT.
    pub fn not_bit(&mut self, a: NetId) -> NetId {
        self.nl.not(a)
    }

    /// Reduction OR of all bits.
    pub fn any(&mut self, a: &Signal) -> NetId {
        self.nl.or_all(a.bits())
    }

    /// Reduction AND of all bits.
    pub fn all(&mut self, a: &Signal) -> NetId {
        self.nl.and_all(a.bits())
    }

    /// True when the signal is all zeros.
    pub fn is_zero(&mut self, a: &Signal) -> NetId {
        let any = self.any(a);
        self.nl.not(any)
    }

    /// Odd parity of the signal (XOR of all bits).
    pub fn parity(&mut self, a: &Signal) -> NetId {
        let mut bits = a.bits().to_vec();
        while bits.len() > 1 {
            let mut next = Vec::with_capacity(bits.len().div_ceil(2));
            for pair in bits.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.nl.xor2(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            bits = next;
        }
        bits[0]
    }

    /// Ripple-carry addition with carry-in; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn addc(&mut self, a: &Signal, b: &Signal, cin: NetId) -> (Signal, NetId) {
        assert_eq!(a.width(), b.width(), "width mismatch in addc");
        let mut carry = cin;
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits().iter().zip(b.bits()) {
            let sum = self.nl.lut_fn(&[x, y, carry], |v| v[0] ^ v[1] ^ v[2]);
            let cout = self.nl.lut_fn(&[x, y, carry], |v| {
                (v[0] && (v[1] || v[2])) || (v[1] && v[2])
            });
            bits.push(sum);
            carry = cout;
        }
        (Signal::from_bits(bits), carry)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: &Signal, b: &Signal) -> Signal {
        let cin = self.zero();
        self.addc(a, b, cin).0
    }

    /// Wrapping addition of a constant.
    pub fn add_const(&mut self, a: &Signal, value: u64) -> Signal {
        let b = self.lit(value & mask(a.width()), a.width());
        self.add(a, &b)
    }

    /// Subtraction with borrow-in; returns `(difference, borrow_out)`.
    ///
    /// Computed as `a + !b + !borrow_in` (the 8051's SUBB convention:
    /// borrow out is the inverted carry of that addition).
    pub fn subb(&mut self, a: &Signal, b: &Signal, borrow_in: NetId) -> (Signal, NetId) {
        let nb = self.not(b);
        let ncin = self.nl.not(borrow_in);
        let (diff, carry) = self.addc(a, &nb, ncin);
        let borrow = self.nl.not(carry);
        (diff, borrow)
    }

    /// Wrapping subtraction (no borrow chain exposed).
    pub fn sub(&mut self, a: &Signal, b: &Signal) -> Signal {
        let zero = self.zero();
        self.subb(a, b, zero).0
    }

    /// Equality of two signals.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq(&mut self, a: &Signal, b: &Signal) -> NetId {
        let x = self.xor(a, b);
        self.is_zero(&x)
    }

    /// Equality against a constant.
    pub fn eq_const(&mut self, a: &Signal, value: u64) -> NetId {
        // Compare 4 bits per LUT, then AND the partial matches.
        let mut parts = Vec::new();
        for (chunk_idx, chunk) in a.bits().chunks(4).enumerate() {
            let want = (value >> (chunk_idx * 4)) & mask(chunk.len());
            let part = self.nl.lut_fn(chunk, move |v| {
                let mut got = 0u64;
                for (i, &bit) in v.iter().enumerate() {
                    if bit {
                        got |= 1 << i;
                    }
                }
                got == want
            });
            parts.push(part);
        }
        self.nl.and_all(&parts)
    }

    /// Masked equality against a constant: true when
    /// `sig & mask == value & mask`. Bits outside the mask are ignored
    /// (opcode-class decoding).
    pub fn match_const(&mut self, a: &Signal, mask: u64, value: u64) -> NetId {
        let masked_bits: Vec<NetId> = a
            .bits()
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .map(|(_, &n)| n)
            .collect();
        if masked_bits.is_empty() {
            return self.one();
        }
        let masked_value: u64 = a
            .bits()
            .iter()
            .enumerate()
            .filter(|(i, _)| (mask >> i) & 1 == 1)
            .enumerate()
            .map(|(packed, (i, _))| ((value >> i) & 1) << packed)
            .sum();
        let packed = Signal::from_bits(masked_bits);
        self.eq_const(&packed, masked_value)
    }

    /// 2:1 word multiplexer: `sel ? t : e`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux(&mut self, sel: NetId, t: &Signal, e: &Signal) -> Signal {
        assert_eq!(t.width(), e.width(), "width mismatch in mux");
        let bits = t
            .bits()
            .iter()
            .zip(e.bits())
            .map(|(&x, &y)| self.nl.mux2(sel, x, y))
            .collect();
        Signal::from_bits(bits)
    }

    /// Priority selector: the value of the first arm whose condition is
    /// true, else `default`.
    ///
    /// # Panics
    ///
    /// Panics if arm widths differ from the default's width.
    pub fn select(&mut self, arms: &[(NetId, Signal)], default: &Signal) -> Signal {
        let mut acc = default.clone();
        for (cond, value) in arms.iter().rev() {
            acc = self.mux(*cond, value, &acc);
        }
        acc
    }

    /// Single-bit priority selector.
    pub fn select_bit(&mut self, arms: &[(NetId, NetId)], default: NetId) -> NetId {
        let mut acc = default;
        for (cond, value) in arms.iter().rev() {
            acc = self.nl.mux2(*cond, *value, acc);
        }
        acc
    }

    /// Logical shift left by a constant amount (zero fill).
    pub fn shl_const(&mut self, a: &Signal, amount: usize) -> Signal {
        let w = a.width();
        let bits = (0..w)
            .map(|i| {
                if i >= amount {
                    a.bit(i - amount)
                } else {
                    self.nl.const0()
                }
            })
            .collect();
        Signal::from_bits(bits)
    }

    /// Logical shift right by a constant amount (zero fill).
    pub fn shr_const(&mut self, a: &Signal, amount: usize) -> Signal {
        let w = a.width();
        let bits = (0..w)
            .map(|i| {
                if i + amount < w {
                    a.bit(i + amount)
                } else {
                    self.nl.const0()
                }
            })
            .collect();
        Signal::from_bits(bits)
    }

    /// Rotate left by one bit.
    pub fn rol1(&mut self, a: &Signal) -> Signal {
        let w = a.width();
        let bits = (0..w).map(|i| a.bit((i + w - 1) % w)).collect();
        Signal::from_bits(bits)
    }

    /// Rotate right by one bit.
    pub fn ror1(&mut self, a: &Signal) -> Signal {
        let w = a.width();
        let bits = (0..w).map(|i| a.bit((i + 1) % w)).collect();
        Signal::from_bits(bits)
    }

    /// Declares a register of `width` bits with power-on value `init`.
    pub fn reg(&mut self, name: impl Into<String>, width: usize, init: u64) -> Reg {
        let name = name.into();
        let mut qs = Vec::with_capacity(width);
        let mut handles = Vec::with_capacity(width);
        for i in 0..width {
            let (q, h) = self
                .nl
                .dff_placeholder(format!("{name}[{i}]"), (init >> i) & 1 == 1);
            qs.push(q);
            handles.push(h);
        }
        Reg {
            q: Signal::from_bits(qs),
            handles,
            name,
        }
    }

    /// Connects a register's data input unconditionally.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn connect(&mut self, reg: Reg, d: &Signal) {
        assert_eq!(
            reg.width(),
            d.width(),
            "width mismatch connecting {}",
            reg.name
        );
        for (h, &bit) in reg.handles.into_iter().zip(d.bits()) {
            self.nl.dff_connect(h, bit);
        }
    }

    /// Connects a register that loads `d` when `en` is high and holds its
    /// value otherwise.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn connect_en(&mut self, reg: Reg, en: NetId, d: &Signal) {
        let q = reg.q().clone();
        let next = self.mux(en, d, &q);
        self.connect(reg, &next);
    }

    /// Instantiates a RAM block.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the netlist builder.
    pub fn ram(
        &mut self,
        name: impl Into<String>,
        addr: &Signal,
        din: &Signal,
        we: NetId,
        init: &[u64],
    ) -> Result<Signal, NetlistError> {
        let dout = self
            .nl
            .ram(name, addr.bits(), din.bits(), we, din.width(), init)?;
        Ok(Signal::from_bits(dout))
    }

    /// Instantiates a ROM block of the given word width.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the netlist builder.
    pub fn rom(
        &mut self,
        name: impl Into<String>,
        addr: &Signal,
        width: usize,
        init: &[u64],
    ) -> Result<Signal, NetlistError> {
        let dout = self.nl.rom(name, addr.bits(), width, init)?;
        Ok(Signal::from_bits(dout))
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// See [`NetlistBuilder::finish`].
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        self.nl.finish()
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fades_netlist::Simulator;

    fn eval_comb(b: RtlBuilder, inputs: &[(&str, u64, usize)], out: &str) -> u64 {
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (name, value, width) in inputs {
            let bits: Vec<bool> = (0..*width).map(|i| (value >> i) & 1 == 1).collect();
            sim.set_input(name, &bits).unwrap();
        }
        sim.settle();
        sim.output_u64(out).unwrap()
    }

    #[test]
    fn adder_adds() {
        let mut b = RtlBuilder::new("add");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let (sum, cout) = {
            let c0 = b.zero();
            b.addc(&x, &y, c0)
        };
        b.output("sum", &sum);
        b.output("cout", &Signal::from(cout));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (x, y) in [(3u64, 4u64), (200, 100), (255, 1), (0, 0)] {
            let xb: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
            let yb: Vec<bool> = (0..8).map(|i| (y >> i) & 1 == 1).collect();
            sim.set_input("x", &xb).unwrap();
            sim.set_input("y", &yb).unwrap();
            sim.settle();
            assert_eq!(sim.output_u64("sum").unwrap(), (x + y) & 0xFF);
            assert_eq!(sim.output_u64("cout").unwrap(), (x + y) >> 8);
        }
    }

    #[test]
    fn subb_matches_8051_convention() {
        let mut b = RtlBuilder::new("sub");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let bin = b.input("bin", 1);
        let (diff, borrow) = {
            let bi = bin.bit(0);
            b.subb(&x, &y, bi)
        };
        b.output("diff", &diff);
        b.output("borrow", &Signal::from(borrow));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (x, y, bin) in [(10u64, 3u64, 0u64), (3, 10, 0), (5, 5, 1), (0, 255, 1)] {
            let xb: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
            let yb: Vec<bool> = (0..8).map(|i| (y >> i) & 1 == 1).collect();
            sim.set_input("x", &xb).unwrap();
            sim.set_input("y", &yb).unwrap();
            sim.set_input("bin", &[bin == 1]).unwrap();
            sim.settle();
            let expect = x.wrapping_sub(y).wrapping_sub(bin) & 0xFF;
            assert_eq!(sim.output_u64("diff").unwrap(), expect);
            let expect_borrow = (x as i64 - y as i64 - bin as i64) < 0;
            assert_eq!(sim.output_u64("borrow").unwrap() == 1, expect_borrow);
        }
    }

    #[test]
    fn eq_const_matches() {
        let mut b = RtlBuilder::new("eqc");
        let x = b.input("x", 8);
        let hit = b.eq_const(&x, 0xA5);
        b.output("hit", &Signal::from(hit));
        assert_eq!(eval_comb(b, &[("x", 0xA5, 8)], "hit"), 1);

        let mut b = RtlBuilder::new("eqc2");
        let x = b.input("x", 8);
        let hit = b.eq_const(&x, 0xA5);
        b.output("hit", &Signal::from(hit));
        assert_eq!(eval_comb(b, &[("x", 0xA4, 8)], "hit"), 0);
    }

    #[test]
    fn select_is_priority_ordered() {
        let mut b = RtlBuilder::new("sel");
        let c = b.input("c", 2);
        let v1 = b.lit(0x11, 8);
        let v2 = b.lit(0x22, 8);
        let d = b.lit(0xFF, 8);
        let arms = vec![(c.bit(0), v1), (c.bit(1), v2)];
        let out = b.select(&arms, &d);
        b.output("out", &out);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (c, expect) in [(0b00u64, 0xFF), (0b01, 0x11), (0b10, 0x22), (0b11, 0x11)] {
            sim.set_input("c", &[(c & 1) == 1, (c >> 1) == 1]).unwrap();
            sim.settle();
            assert_eq!(sim.output_u64("out").unwrap(), expect);
        }
    }

    #[test]
    fn rotates_rotate() {
        let mut b = RtlBuilder::new("rot");
        let x = b.input("x", 8);
        let l = b.rol1(&x);
        let r = b.ror1(&x);
        b.output("l", &l);
        b.output("r", &r);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let x = 0b1000_0110u64;
        let xb: Vec<bool> = (0..8).map(|i| (x >> i) & 1 == 1).collect();
        sim.set_input("x", &xb).unwrap();
        sim.settle();
        assert_eq!(sim.output_u64("l").unwrap(), 0b0000_1101);
        assert_eq!(sim.output_u64("r").unwrap(), 0b0100_0011);
    }
}
