//! Property-based tests: RTL operators versus their `u8`/`u16` reference
//! semantics.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_netlist::Simulator;
use fades_rtl::{RtlBuilder, Signal};
use proptest::prelude::*;

fn bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Builds a 2-input 8-bit combinational circuit and evaluates it.
fn eval2(build: impl FnOnce(&mut RtlBuilder, &Signal, &Signal) -> Signal, x: u8, y: u8) -> u64 {
    let mut b = RtlBuilder::new("prop");
    let xs = b.input("x", 8);
    let ys = b.input("y", 8);
    let out = build(&mut b, &xs, &ys);
    b.output("out", &out);
    let nl = b.finish().unwrap();
    let mut sim = Simulator::new(&nl).unwrap();
    sim.set_input("x", &bits(x as u64, 8)).unwrap();
    sim.set_input("y", &bits(y as u64, 8)).unwrap();
    sim.settle();
    sim.output_u64("out").unwrap()
}

proptest! {
    #[test]
    fn add_matches_wrapping_add(x in any::<u8>(), y in any::<u8>()) {
        let got = eval2(fades_rtl::RtlBuilder::add, x, y);
        prop_assert_eq!(got, x.wrapping_add(y) as u64);
    }

    #[test]
    fn sub_matches_wrapping_sub(x in any::<u8>(), y in any::<u8>()) {
        let got = eval2(fades_rtl::RtlBuilder::sub, x, y);
        prop_assert_eq!(got, x.wrapping_sub(y) as u64);
    }

    #[test]
    fn subb_borrow_matches_comparison(x in any::<u8>(), y in any::<u8>(), cin in any::<bool>()) {
        let mut b = RtlBuilder::new("prop");
        let xs = b.input("x", 8);
        let ys = b.input("y", 8);
        let ci = b.input("ci", 1);
        let (diff, borrow) = {
            let c = ci.bit(0);
            b.subb(&xs, &ys, c)
        };
        b.output("diff", &diff);
        b.output("borrow", &Signal::from(borrow));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &bits(x as u64, 8)).unwrap();
        sim.set_input("y", &bits(y as u64, 8)).unwrap();
        sim.set_input("ci", &[cin]).unwrap();
        sim.settle();
        let expect = x.wrapping_sub(y).wrapping_sub(cin as u8);
        prop_assert_eq!(sim.output_u64("diff").unwrap(), expect as u64);
        let expect_borrow = (x as i32 - y as i32 - cin as i32) < 0;
        prop_assert_eq!(sim.output_u64("borrow").unwrap() == 1, expect_borrow);
    }

    #[test]
    fn bitwise_ops_match(x in any::<u8>(), y in any::<u8>()) {
        prop_assert_eq!(eval2(fades_rtl::RtlBuilder::and, x, y), (x & y) as u64);
        prop_assert_eq!(eval2(fades_rtl::RtlBuilder::or, x, y), (x | y) as u64);
        prop_assert_eq!(eval2(fades_rtl::RtlBuilder::xor, x, y), (x ^ y) as u64);
    }

    #[test]
    fn eq_const_matches(x in any::<u8>(), k in any::<u8>()) {
        let mut b = RtlBuilder::new("prop");
        let xs = b.input("x", 8);
        let hit = b.eq_const(&xs, k as u64);
        b.output("hit", &Signal::from(hit));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &bits(x as u64, 8)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_u64("hit").unwrap() == 1, x == k);
    }

    #[test]
    fn match_const_ignores_unmasked_bits(x in any::<u8>(), mask in any::<u8>(), v in any::<u8>()) {
        let mut b = RtlBuilder::new("prop");
        let xs = b.input("x", 8);
        let hit = b.match_const(&xs, mask as u64, v as u64);
        b.output("hit", &Signal::from(hit));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &bits(x as u64, 8)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_u64("hit").unwrap() == 1, x & mask == v & mask);
    }

    #[test]
    fn rotates_match(x in any::<u8>()) {
        let mut b = RtlBuilder::new("prop");
        let xs = b.input("x", 8);
        let l = b.rol1(&xs);
        let r = b.ror1(&xs);
        b.output("l", &l);
        b.output("r", &r);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &bits(x as u64, 8)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_u64("l").unwrap(), x.rotate_left(1) as u64);
        prop_assert_eq!(sim.output_u64("r").unwrap(), x.rotate_right(1) as u64);
    }

    #[test]
    fn parity_matches_count_ones(x in any::<u8>()) {
        let mut b = RtlBuilder::new("prop");
        let xs = b.input("x", 8);
        let p = b.parity(&xs);
        b.output("p", &Signal::from(p));
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &bits(x as u64, 8)).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_u64("p").unwrap(), (x.count_ones() & 1) as u64);
    }
}
