//! One benchmark per table and figure of the paper's evaluation.
//!
//! Each iteration regenerates a small slice (10 faults per campaign) of
//! the corresponding artefact, so `cargo bench` both exercises every
//! experiment path end-to-end and tracks the harness's own performance.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use criterion::{criterion_group, criterion_main, Criterion};
use fades_bench::{context, BENCH_FAULTS, BENCH_SEED};
use fades_experiments::{fig10, fig11, fig12, fig13, fig14, fig15, table2, table3, table4};

fn bench_figures(c: &mut Criterion) {
    let ctx = context();
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("table1_capability_matrix", |b| {
        b.iter(|| fades_experiments::table1::table().to_string());
    });
    group.bench_function("fig10_emulation_time", |b| {
        b.iter(|| fig10::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig10 runs"));
    });
    group.bench_function("table2_speedup", |b| {
        let f10 = fig10::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig10 runs");
        b.iter(|| table2::from_fig10(&ctx, &f10));
    });
    group.bench_function("fig11_bitflip", |b| {
        // Screening is part of the context cache; pre-warm it so each
        // iteration measures the campaign itself.
        let _ = ctx.sensitive_ffs(BENCH_SEED).expect("screening runs");
        b.iter(|| fig11::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig11 runs"));
    });
    group.bench_function("fig12_sequential", |b| {
        b.iter(|| fig12::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig12 runs"));
    });
    group.bench_function("fig13_pulse", |b| {
        b.iter(|| fig13::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig13 runs"));
    });
    group.bench_function("fig14_indetermination", |b| {
        b.iter(|| fig14::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig14 runs"));
    });
    group.bench_function("fig15_delay", |b| {
        b.iter(|| fig15::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("fig15 runs"));
    });
    group.bench_function("table3_fades_vs_vfit", |b| {
        let _ = ctx.sensitive_ffs(BENCH_SEED).expect("screening runs");
        b.iter(|| table3::run(&ctx, BENCH_FAULTS, BENCH_SEED).expect("table3 runs"));
    });
    group.bench_function("table4_multiple_bitflips", |b| {
        b.iter(|| table4::run(&ctx, BENCH_SEED).expect("table4 runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
