//! Substrate microbenchmarks: raw speed of the FPGA device, the netlist
//! simulator, the implementation flow and single reconfigurations.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fades_fpga::{ArchParams, Device, Mutation};
use fades_mcu8051::{build_soc, workloads};
use fades_netlist::Simulator;
use fades_pnr::implement;

fn bench_substrate(c: &mut Criterion) {
    let workload = workloads::bubblesort();
    let soc = build_soc(&workload.rom).expect("soc builds");
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).expect("implements");

    let mut group = c.benchmark_group("substrate");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("pnr_implement_8051", |b| {
        b.iter(|| implement(&soc.netlist, ArchParams::virtex1000_like()).expect("implements"));
    });
    group.bench_function("device_configure_8051", |b| {
        b.iter(|| Device::configure(imp.bitstream.clone()).expect("configures"));
    });

    const CYCLES: u64 = 256;
    group.throughput(Throughput::Elements(CYCLES));
    group.bench_function("device_run_256_cycles", |b| {
        let mut dev = Device::configure(imp.bitstream.clone()).expect("configures");
        b.iter(|| {
            dev.reset();
            dev.run(CYCLES);
        });
    });
    group.bench_function("netlist_sim_256_cycles", |b| {
        let mut sim = Simulator::new(&soc.netlist).expect("simulates");
        b.iter(|| {
            sim.reset();
            sim.run(CYCLES);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("reconfiguration");
    group.sample_size(10);
    let lut = imp.bitstream.used_luts()[0];
    let ff = imp.bitstream.used_ffs()[0];
    let mut dev = Device::configure(imp.bitstream.clone()).expect("configures");
    group.bench_function("set_lut_table", |b| {
        b.iter(|| {
            dev.apply(&Mutation::SetLutTable {
                cb: lut,
                table: 0xBEEF,
            })
            .expect("applies");
        });
    });
    group.bench_function("readback_ff", |b| {
        b.iter(|| dev.readback_ff(ff).expect("reads"));
    });
    group.bench_function("pulse_lsr", |b| {
        b.iter(|| dev.apply(&Mutation::PulseLsr { cb: ff }).expect("applies"));
    });
    group.bench_function("timing_reanalysis", |b| b.iter(|| dev.recompute_timing()));
    group.finish();
}

/// Interpreter cost with telemetry disabled vs enabled. The disabled
/// variant is the acceptance gate: the `sim` counters must be a single
/// relaxed load per settle, i.e. indistinguishable from the seed's
/// uninstrumented interpreter.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let workload = workloads::bubblesort();
    let soc = build_soc(&workload.rom).expect("soc builds");
    const CYCLES: u64 = 256;

    let mut group = c.benchmark_group("telemetry_overhead");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .throughput(Throughput::Elements(CYCLES));

    fades_telemetry::set_enabled(false);
    group.bench_function("sim_256_cycles_disabled", |b| {
        let mut sim = Simulator::new(&soc.netlist).expect("simulates");
        b.iter(|| {
            sim.reset();
            sim.run(CYCLES);
        });
    });
    fades_telemetry::set_enabled(true);
    group.bench_function("sim_256_cycles_enabled", |b| {
        let mut sim = Simulator::new(&soc.netlist).expect("simulates");
        b.iter(|| {
            sim.reset();
            sim.run(CYCLES);
        });
    });
    fades_telemetry::set_enabled(false);
    fades_telemetry::sim::reset();
    group.finish();
}

/// Checkpointed fast-forward path vs the reference full-simulation path:
/// identical experiments (same seeds, same outcomes, same modelled time),
/// different host wall-clock. The gap is the tentpole's payoff and should
/// stay well above 2x on the 8051.
fn bench_fastpath(c: &mut Criterion) {
    use fades_core::{Campaign, CampaignConfig, DurationRange, FaultLoad, TargetClass};
    use fades_mcu8051::OBSERVED_PORTS;

    let workload = workloads::bubblesort();
    let soc = build_soc(&workload.rom).expect("soc builds");
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).expect("implements");
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);

    let mut group = c.benchmark_group("campaign_path");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(5));
    for (name, fastpath) in [
        ("fastpath_4_experiments", true),
        ("full_sim_4_experiments", false),
    ] {
        let campaign = Campaign::with_config(
            &soc.netlist,
            imp.clone(),
            &OBSERVED_PORTS,
            1330,
            CampaignConfig {
                threads: 1,
                margin_cycles: 64,
                fastpath,
                batch: true,
                warmstart: true,
                sparse: true,
                static_preclassify: true,
            },
        )
        .expect("campaign");
        group.bench_function(name, |b| {
            b.iter(|| campaign.run_detailed(&load, 4, 7).expect("runs"));
        });
    }
    group.finish();
}

/// Interpreter settle cost with no forces versus one active force. The
/// per-net force index makes the zero-force hot path a single early-out,
/// so the no-force variant must match the uninstrumented interpreter and
/// one force must not reintroduce a per-LUT linear scan.
fn bench_settle_throughput(c: &mut Criterion) {
    use fades_netlist::{Force, NetId};

    let workload = workloads::bubblesort();
    let soc = build_soc(&workload.rom).expect("soc builds");
    const CYCLES: u64 = 256;

    let mut group = c.benchmark_group("settle_throughput");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .throughput(Throughput::Elements(CYCLES));

    group.bench_function("sim_256_cycles_no_forces", |b| {
        let mut sim = Simulator::new(&soc.netlist).expect("simulates");
        b.iter(|| {
            sim.reset();
            sim.run(CYCLES);
        });
    });
    group.bench_function("sim_256_cycles_one_force", |b| {
        let mut sim = Simulator::new(&soc.netlist).expect("simulates");
        b.iter(|| {
            sim.reset();
            sim.force(Force::flip(NetId::from_index(soc.netlist.net_count() / 2)));
            sim.run(CYCLES);
        });
    });
    group.finish();
}

/// Bit-parallel lane engine vs the scalar per-experiment path: the same
/// 64-fault single-thread FF bit-flip campaign (identical plan, identical
/// outcomes and modelled time), emulated 63 machines at a time instead of
/// one. The ratio is the tentpole's payoff and should stay above 4x.
fn bench_batch(c: &mut Criterion) {
    use fades_core::{Campaign, CampaignConfig, DurationRange, FaultLoad, TargetClass};
    use fades_mcu8051::OBSERVED_PORTS;

    let workload = workloads::bubblesort();
    let soc = build_soc(&workload.rom).expect("soc builds");
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).expect("implements");
    let load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    const N_FAULTS: usize = 64;

    let campaign = Campaign::with_config(
        &soc.netlist,
        imp,
        &OBSERVED_PORTS,
        1330,
        CampaignConfig {
            threads: 1,
            margin_cycles: 64,
            fastpath: true,
            batch: true,
            warmstart: true,
            sparse: true,
            static_preclassify: true,
        },
    )
    .expect("campaign");

    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(10))
        .throughput(Throughput::Elements(N_FAULTS as u64));
    group.bench_function("scalar_64_ff_flips", |b| {
        b.iter(|| campaign.run_detailed(&load, N_FAULTS, 7).expect("runs"));
    });
    group.bench_function("batched_64_ff_flips", |b| {
        b.iter(|| {
            campaign
                .run_batched_detailed(&load, N_FAULTS, 7)
                .expect("runs")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_substrate,
    bench_telemetry_overhead,
    bench_fastpath,
    bench_settle_throughput,
    bench_batch
);
criterion_main!(benches);
