//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! Each group compares two variants of one mechanism; the interesting
//! output is the *modelled emulation seconds* each variant accumulates
//! (printed once per group) as much as the host-side wall-clock Criterion
//! measures.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use criterion::{criterion_group, criterion_main, Criterion};
use fades_bench::{context, BENCH_FAULTS, BENCH_SEED};
use fades_core::{DurationRange, FaultLoad, TargetClass};
use fades_vfit::{VfitFaultLoad, VfitTargetClass};

fn bench_ablations(c: &mut Criterion) {
    let ctx = context();
    let campaign = ctx.fades_campaign().expect("campaign builds");
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    // --- GSR vs LSR bit-flip mechanism (paper §4.1) ----------------------
    let mut lsr = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let mut gsr = lsr.clone();
    lsr.use_gsr = false;
    gsr.use_gsr = true;
    let l = campaign.run(&lsr, 16, BENCH_SEED).expect("lsr runs");
    let g = campaign.run(&gsr, 16, BENCH_SEED).expect("gsr runs");
    println!(
        "[ablation] bit-flip mechanism: LSR {:.3} s/fault vs GSR {:.3} s/fault (modelled)",
        l.mean_seconds_per_fault(),
        g.mean_seconds_per_fault()
    );
    group.bench_function("gsr_vs_lsr/lsr", |b| {
        b.iter(|| campaign.run(&lsr, BENCH_FAULTS, BENCH_SEED).expect("runs"));
    });
    group.bench_function("gsr_vs_lsr/gsr", |b| {
        b.iter(|| campaign.run(&gsr, BENCH_FAULTS, BENCH_SEED).expect("runs"));
    });

    // --- Delay shipping: full configuration vs partial frames ------------
    let mut full = FaultLoad::delays(TargetClass::SequentialWires, DurationRange::SHORT);
    let mut partial = full.clone();
    full.delay_full_download = true;
    partial.delay_full_download = false;
    let f = campaign.run(&full, 16, BENCH_SEED).expect("full runs");
    let p = campaign
        .run(&partial, 16, BENCH_SEED)
        .expect("partial runs");
    println!(
        "[ablation] delay shipping: full-download {:.3} s/fault vs partial {:.3} s/fault (modelled)",
        f.mean_seconds_per_fault(),
        p.mean_seconds_per_fault()
    );
    group.bench_function("delay_shipping/full_download", |b| {
        b.iter(|| campaign.run(&full, BENCH_FAULTS, BENCH_SEED).expect("runs"));
    });
    group.bench_function("delay_shipping/partial", |b| {
        b.iter(|| {
            campaign
                .run(&partial, BENCH_FAULTS, BENCH_SEED)
                .expect("runs")
        });
    });

    // --- Oscillating vs fixed indetermination ---------------------------
    let fixed = FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::MEDIUM, false);
    let osc = FaultLoad::indeterminations(TargetClass::AllFfs, DurationRange::MEDIUM, true);
    group.bench_function("indetermination/fixed", |b| {
        b.iter(|| {
            campaign
                .run(&fixed, BENCH_FAULTS, BENCH_SEED)
                .expect("runs")
        });
    });
    group.bench_function("indetermination/oscillating", |b| {
        b.iter(|| campaign.run(&osc, BENCH_FAULTS, BENCH_SEED).expect("runs"));
    });

    // --- RTR emulation vs direct simulator commands (FADES vs VFIT) -----
    let vfit = ctx.vfit_campaign().expect("vfit builds");
    let fades_load = FaultLoad::bit_flips(TargetClass::AllFfs, DurationRange::SubCycle);
    let vfit_load = VfitFaultLoad::bit_flips(VfitTargetClass::AllFfs, DurationRange::SubCycle);
    group.bench_function("rtr_vs_direct/fades_device", |b| {
        b.iter(|| {
            campaign
                .run(&fades_load, BENCH_FAULTS, BENCH_SEED)
                .expect("runs")
        });
    });
    group.bench_function("rtr_vs_direct/vfit_simulator", |b| {
        b.iter(|| {
            vfit.run(&vfit_load, BENCH_FAULTS, BENCH_SEED)
                .expect("runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
