//! Shared fixtures for the benchmark suite.
//!
//! The benches regenerate (small slices of) every table and figure of the
//! paper — see `benches/figures.rs` — quantify the design-choice
//! ablations called out in `DESIGN.md` — `benches/ablations.rs` — and
//! measure the substrate's raw performance — `benches/microbench.rs`.

// Bench fixtures are test support: they have no error channel, so the
// workspace's library-code panic policy does not apply.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_experiments::ExperimentContext;

/// Builds the standard experimental context (8051 + Bubblesort,
/// implemented on the Virtex-1000-like device).
///
/// # Panics
///
/// Panics if the model fails to build — benches have no error channel.
pub fn context() -> ExperimentContext {
    ExperimentContext::new().expect("experimental context builds")
}

/// Faults per campaign inside a bench iteration: small, so one iteration
/// stays in the tens of milliseconds.
pub const BENCH_FAULTS: usize = 6;

/// Fixed bench seed.
pub const BENCH_SEED: u64 = 0xFADE5;
