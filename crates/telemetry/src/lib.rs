//! Zero-dependency observability for FADES campaigns.
//!
//! The paper's headline result is a *cost* claim — emulation time per
//! fault (Fig. 10, Table 2) — so the reproduction needs to see where
//! wall-clock time actually goes inside a campaign. This crate provides
//! the measurement substrate, built on `std` only (atomics, [`Instant`],
//! `mpsc`):
//!
//! * [`Counter`] / [`Gauge`] — lock-free `AtomicU64` metrics.
//! * [`Histogram`] — a fixed 64-bucket log₂ latency histogram with
//!   p50/p90/p99 readout, safe to hammer from many threads.
//! * [`span!`] — lightweight scope guards that feed per-phase wall-clock
//!   histograms (`let _s = span!("implement");`).
//! * [`Recorder`] — campaign workers send one [`ExperimentRecord`] per
//!   experiment over an `mpsc` channel; [`Recorder::finish`] aggregates
//!   them into a [`CampaignAggregate`].
//! * Two sinks: the human [`Summary`] table, and a JSONL run log (one
//!   line per experiment plus a trailing aggregate line) activated by
//!   `FADES_RUN_LOG=<path>`.
//! * [`write_bench_json`] — machine-readable `BENCH_campaign.json`
//!   aggregate (faults/sec, mean µs/fault) for tracking the performance
//!   trajectory across PRs.
//! * [`snapshot`] — a point-in-time capture of every counter, gauge and
//!   phase histogram, renderable as Prometheus text or JSON.
//! * [`trace`] — completed spans recorded into a bounded lock-free ring
//!   buffer and exported as Chrome `trace_event` JSON
//!   (`FADES_TRACE_OUT=<path>`), loadable in Perfetto.
//! * [`serve`] — a std-only background HTTP thread answering
//!   `GET /metrics` and `GET /status` (`FADES_METRICS_ADDR=<addr>`).
//! * [`monitor`] — live campaign progress ([`status_snapshot`]) and a
//!   watchdog thread flagging stalls, quarantine spikes and
//!   lane-occupancy collapse (`FADES_WATCHDOG_MS=<deadline>`).
//!
//! Campaign-independent hot paths (the netlist interpreter) report
//! through the [`sim`] counters, which compile to an `#[inline]` relaxed
//! load plus nothing when telemetry is disabled (the default).
//!
//! [`Instant`]: std::time::Instant

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod counter;
mod histogram;
pub mod json;
pub mod monitor;
mod record;
mod registry;
mod runlog;
pub mod serve;
mod snapshot;
mod span;
mod summary;
pub mod trace;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot};
pub use monitor::{
    report_anomaly, start_watchdog, start_watchdog_from_env, status_snapshot, StatusSnapshot,
    WatchdogConfig, WatchdogHandle,
};
pub use record::{CampaignAggregate, ExperimentRecord, OutcomeCounts, Recorder, RecorderHandle};
pub use registry::{
    atomic_write, drain_aggregates, peek_aggregates, push_aggregate, write_bench_json,
};
pub use runlog::{log_raw_line, run_log_path};
pub use serve::{
    http_get, http_post, metrics_router, HttpHandler, HttpRequest, HttpResponse, HttpServer,
    MetricsServer,
};
pub use snapshot::{register_counter, register_gauge, snapshot, MetricsSnapshot};
#[doc(hidden)]
pub use span::span_phase;
pub use span::{phase_snapshots, reset_phases, SpanGuard};
pub use summary::Summary;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables the optional hot-path instrumentation
/// (the [`sim`] counters). Campaign recorders and spans are always live —
/// their cost is per-experiment, not per-cycle.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether hot-path instrumentation is on. A single relaxed load —
/// callers on hot paths should branch on this and do nothing when it is
/// `false`.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Hot-path counters for the netlist interpreter and device emulation.
///
/// All increments are gated on [`enabled`], so the disabled cost is one
/// relaxed bool load per `settle` — unobservable next to evaluating
/// hundreds of LUTs (verified by `crates/bench`'s
/// `telemetry_overhead` microbench).
pub mod sim {
    use super::Counter;

    /// Clock cycles executed by netlist simulators.
    pub static CYCLES: Counter = Counter::new();
    /// Combinational cell evaluations performed during `settle`.
    pub static CELL_EVALS: Counter = Counter::new();

    /// Records one settle pass over `evals` combinational cells.
    /// No-op unless telemetry is enabled.
    #[inline(always)]
    pub fn record_settle(evals: u64) {
        if super::enabled() {
            CELL_EVALS.add(evals);
        }
    }

    /// Records one clock edge. No-op unless telemetry is enabled.
    #[inline(always)]
    pub fn record_clock_edge() {
        if super::enabled() {
            CYCLES.inc();
        }
    }

    /// Faulty-lane cycles executed by the bit-parallel lane engine
    /// (occupied lanes × batch cycles; the golden lane is not counted).
    pub static LANE_CYCLES: Counter = Counter::new();
    /// Cycles executed by the lane engine (each advances all 64 lanes).
    pub static BATCH_CYCLES: Counter = Counter::new();
    /// Lanes retired early after reconverging with the golden lane.
    pub static LANE_RETIREMENTS: Counter = Counter::new();

    /// Records one batch cycle over `occupied` faulty lanes
    /// (`LANE_CYCLES / BATCH_CYCLES` is the mean lane occupancy). Always
    /// live — two adds per batch *cycle*, not per lane.
    #[inline(always)]
    pub fn record_lane_cycle(occupied: u64) {
        LANE_CYCLES.add(occupied);
        BATCH_CYCLES.inc();
    }

    /// Records one lane retiring early on golden reconvergence.
    #[inline(always)]
    pub fn record_lane_retirement() {
        LANE_RETIREMENTS.inc();
    }

    /// Combinational node evaluations the sparse divergence-frontier
    /// settle skipped (nodes outside the changed fan-out).
    pub static EVALS_SKIPPED: Counter = Counter::new();
    /// Golden-prefix cycles cohort passes skipped by restoring a
    /// checkpoint instead of replaying from cycle 0.
    pub static WARM_SKIPPED_CYCLES: Counter = Counter::new();
    /// Sparse settles that ran entirely in the golden-uniform scalar
    /// fast path (no lane had touched configuration or state yet).
    pub static UNIFORM_CYCLES: Counter = Counter::new();

    /// Records one sparse settle that skipped `skipped` of the netlist's
    /// combinational nodes. Always live — one add per batch *settle*.
    #[inline(always)]
    pub fn record_sparse_settle(skipped: u64, uniform: bool) {
        EVALS_SKIPPED.add(skipped);
        if uniform {
            UNIFORM_CYCLES.inc();
        }
    }

    /// Records one cohort pass warm-started past `cycles` golden-prefix
    /// cycles. Always live — one add per cohort *pass*.
    #[inline(always)]
    pub fn record_warm_start(cycles: u64) {
        WARM_SKIPPED_CYCLES.add(cycles);
    }

    /// Resets all counters (between benchmark sections).
    pub fn reset() {
        CYCLES.reset();
        CELL_EVALS.reset();
        LANE_CYCLES.reset();
        BATCH_CYCLES.reset();
        LANE_RETIREMENTS.reset();
        EVALS_SKIPPED.reset();
        WARM_SKIPPED_CYCLES.reset();
        UNIFORM_CYCLES.reset();
    }
}

/// Process-wide counters for the checkpointed fast-forward experiment
/// path (golden-prefix skipping and early-stop convergence detection).
///
/// Unlike [`sim`], these are always live: they cost one atomic add per
/// *experiment*, not per cycle, and campaign-level visibility into how
/// much work the fast path avoided is wanted even when hot-path
/// instrumentation is off.
pub mod fastpath {
    use super::Counter;

    /// Experiments that fast-forwarded over the golden prefix by
    /// restoring a checkpoint.
    pub static FAST_FORWARDED: Counter = Counter::new();
    /// Experiments that stopped early on golden-state convergence.
    pub static EARLY_STOPPED: Counter = Counter::new();
    /// Golden-prefix cycles skipped via checkpoint restoration.
    pub static PREFIX_CYCLES_SKIPPED: Counter = Counter::new();
    /// Tail cycles skipped via early-stop convergence detection.
    pub static EARLY_STOP_CYCLES_SKIPPED: Counter = Counter::new();

    /// Records one finished experiment's fast-path savings (either count
    /// may be zero; zero-cycle components are not counted as engagement).
    pub fn record_experiment(prefix_skipped: u64, early_stop_skipped: u64) {
        if prefix_skipped > 0 {
            FAST_FORWARDED.inc();
            PREFIX_CYCLES_SKIPPED.add(prefix_skipped);
        }
        if early_stop_skipped > 0 {
            EARLY_STOPPED.inc();
            EARLY_STOP_CYCLES_SKIPPED.add(early_stop_skipped);
        }
    }

    /// Resets all four counters (between benchmark sections or tests).
    pub fn reset() {
        FAST_FORWARDED.reset();
        EARLY_STOPPED.reset();
        PREFIX_CYCLES_SKIPPED.reset();
        EARLY_STOP_CYCLES_SKIPPED.reset();
    }
}

/// Process-wide counters for the sharded/resumable campaign dispatcher
/// (`fades-dispatch`): how much work was retried after a contained
/// failure, set aside as unrunnable, or skipped because a journal
/// already recorded it.
///
/// Like [`fastpath`], these are always live — one atomic add per
/// retried/quarantined/skipped *experiment*, so visibility costs nothing
/// on the happy path.
pub mod dispatch {
    use super::Counter;

    /// Experiment attempts re-run after a contained panic or error.
    pub static RETRIES: Counter = Counter::new();
    /// Experiments quarantined after exhausting their attempts.
    pub static QUARANTINES: Counter = Counter::new();
    /// Experiments skipped on resume because the journal already held
    /// their outcome.
    pub static RESUME_SKIPPED: Counter = Counter::new();

    /// Resets all three counters (between runs or tests).
    pub fn reset() {
        RETRIES.reset();
        QUARANTINES.reset();
        RESUME_SKIPPED.reset();
    }
}

/// Process-wide counters for the pre-execution static analysis layer
/// (`fades-analysis`): how many planned experiments the cone-of-influence
/// pre-classifier proved Silent without running them, how many findings
/// the structural linter reported, and how often the lane engine refused
/// a design and fell back to scalar execution.
///
/// Always live — one atomic add per experiment/diagnostic/campaign, never
/// per cycle.
pub mod analysis {
    use super::Counter;

    /// Experiments classified Silent at plan time and skipped at
    /// execution (their modelled cost is still charged).
    pub static STATIC_SILENT: Counter = Counter::new();
    /// Diagnostics emitted by reporting lint passes.
    pub static LINT_DIAGNOSTICS: Counter = Counter::new();
    /// Campaigns that fell back to the scalar engine because the design
    /// cannot be lane-encoded (see the `lane-obstacle` lint rule).
    pub static LANE_FALLBACKS: Counter = Counter::new();

    /// Resets all three counters (between runs or tests).
    pub fn reset() {
        STATIC_SILENT.reset();
        LINT_DIAGNOSTICS.reset();
        LANE_FALLBACKS.reset();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_flag_round_trips() {
        assert!(!super::enabled());
        super::set_enabled(true);
        assert!(super::enabled());
        super::sim::record_clock_edge();
        super::sim::record_settle(10);
        assert!(super::sim::CYCLES.get() >= 1);
        assert!(super::sim::CELL_EVALS.get() >= 10);
        super::set_enabled(false);
        super::sim::reset();
    }
}
