//! Completed-span trace recording and Chrome `trace_event` export.
//!
//! When tracing is enabled (`FADES_TRACE_OUT=<path>`), every finished
//! [`SpanGuard`](crate::SpanGuard) deposits one event — phase name,
//! start, duration, thread, and the experiment index the worker was
//! running — into a bounded lock-free ring buffer. At process end the
//! CLI exports the ring as Chrome `trace_event` JSON, loadable in
//! Perfetto or `chrome://tracing`, so where campaign wall-clock goes can
//! be *seen* instead of inferred from percentiles.
//!
//! Recording is wait-free for writers: a slot is claimed with one
//! `fetch_add`, fields are plain relaxed stores, and a sequence stamp
//! (release-stored last) lets the exporter skip slots that were mid-write
//! when the snapshot was taken. When the ring wraps, the oldest events
//! are overwritten — a bounded-memory trade the ring makes explicit via
//! [`events_recorded`] vs [`capacity`]. With tracing disabled (the
//! default) the span path pays one relaxed atomic load and nothing else.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{array, JsonObject};

/// Default ring capacity (events). Override with `FADES_TRACE_CAP`.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Sentinel "no experiment" index carried by events recorded outside an
/// experiment scope (golden runs, setup, merge).
pub const NO_EXPERIMENT: u64 = u64::MAX;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<Ring> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static CURRENT_EXP: Cell<u64> = const { Cell::new(NO_EXPERIMENT) };
}

/// One ring slot. `seq` is 0 while empty or mid-write and `claim + 1`
/// once the payload is fully published; the exporter re-checks it after
/// reading the payload and discards torn slots.
struct Slot {
    seq: AtomicU64,
    name_id: AtomicU64,
    tid: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    experiment: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            name_id: AtomicU64::new(0),
            tid: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            experiment: AtomicU64::new(NO_EXPERIMENT),
        }
    }
}

struct Ring {
    slots: Vec<Slot>,
    head: AtomicU64,
}

/// The process-wide span epoch: trace timestamps (and the monitor's
/// activity clock) are microseconds since this instant, pinned on first
/// use so all threads share one timebase.
pub fn epoch_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// Whether span tracing is on. A single relaxed load — the
/// disabled-path cost added to every span drop.
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Enables or disables tracing, allocating the ring (with `capacity`
/// slots, rounded up to 1) on first enable. Capacity is fixed at first
/// allocation; later calls reuse the existing ring.
pub fn set_enabled_with_capacity(on: bool, capacity: usize) {
    if on {
        let _ = epoch_us(); // pin the timebase before the first event
        RING.get_or_init(|| Ring {
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        });
    }
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// The trace destination from `FADES_TRACE_OUT`, if set non-empty.
pub fn trace_out_path() -> Option<PathBuf> {
    match std::env::var("FADES_TRACE_OUT") {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Enables tracing iff `FADES_TRACE_OUT` is set (ring capacity from
/// `FADES_TRACE_CAP`, default [`DEFAULT_CAPACITY`]). Returns whether
/// tracing is now on.
pub fn init_from_env() -> bool {
    if trace_out_path().is_none() {
        return false;
    }
    let cap = std::env::var("FADES_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c >= 1)
        .unwrap_or(DEFAULT_CAPACITY);
    set_enabled_with_capacity(true, cap);
    true
}

/// Ring capacity in events (0 before the ring is allocated).
pub fn capacity() -> usize {
    RING.get().map_or(0, |r| r.slots.len())
}

/// Events recorded since enabling — may exceed [`capacity`], in which
/// case the ring wrapped and only the newest `capacity()` survive.
pub fn events_recorded() -> u64 {
    RING.get().map_or(0, |r| r.head.load(Ordering::Relaxed))
}

/// Tags the calling worker thread with the experiment index it is about
/// to run; spans finishing on this thread carry the index into the
/// trace. Cleared with [`clear_current_experiment`].
pub fn set_current_experiment(index: u64) {
    CURRENT_EXP.with(|c| c.set(index));
}

/// Clears the calling thread's experiment tag (back to
/// [`NO_EXPERIMENT`]).
pub fn clear_current_experiment() {
    CURRENT_EXP.with(|c| c.set(NO_EXPERIMENT));
}

/// A small dense id per thread (Chrome traces want integer `tid`s;
/// `std::thread::ThreadId` has no stable integer form).
fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

fn name_id(name: &'static str) -> u64 {
    let mut names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i as u64;
    }
    names.push(name);
    (names.len() - 1) as u64
}

/// Records one completed span. No-op unless tracing is [`enabled`].
/// Called from [`SpanGuard::drop`](crate::SpanGuard) with the span's
/// start offset (µs since [`epoch_us`]'s epoch) and duration.
pub fn record_span(name: &'static str, start_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    let Some(ring) = RING.get() else { return };
    let claim = ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &ring.slots[(claim % ring.slots.len() as u64) as usize];
    // Invalidate, publish payload, then stamp: a concurrent exporter
    // either sees the old complete event, or seq==0 and skips the slot.
    slot.seq.store(0, Ordering::Release);
    slot.name_id.store(name_id(name), Ordering::Relaxed);
    slot.tid.store(thread_tid(), Ordering::Relaxed);
    slot.start_us.store(start_us, Ordering::Relaxed);
    slot.dur_us.store(dur_us, Ordering::Relaxed);
    slot.experiment
        .store(CURRENT_EXP.with(Cell::get), Ordering::Relaxed);
    slot.seq.store(claim + 1, Ordering::Release);
}

/// One exported trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Phase name (the `span!` literal).
    pub name: &'static str,
    /// Start, µs since the process trace epoch.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Dense per-thread id.
    pub tid: u64,
    /// Experiment index, or [`NO_EXPERIMENT`].
    pub experiment: u64,
}

/// Snapshots every complete event currently in the ring, sorted by
/// start timestamp (ties broken by thread then duration, so the export
/// order — and the Chrome `ts` sequence — is monotonic and stable).
pub fn snapshot_events() -> Vec<TraceEvent> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let names = NAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut events = Vec::new();
    for slot in &ring.slots {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 {
            continue;
        }
        let ev = TraceEvent {
            name: names
                .get(slot.name_id.load(Ordering::Relaxed) as usize)
                .copied()
                .unwrap_or("?"),
            ts_us: slot.start_us.load(Ordering::Relaxed),
            dur_us: slot.dur_us.load(Ordering::Relaxed),
            tid: slot.tid.load(Ordering::Relaxed),
            experiment: slot.experiment.load(Ordering::Relaxed),
        };
        if slot.seq.load(Ordering::Acquire) == seq {
            events.push(ev);
        }
    }
    events.sort_by_key(|e| (e.ts_us, e.tid, e.dur_us));
    events
}

/// Exports the ring as Chrome `trace_event` JSON (the
/// `{"traceEvents":[...]}` object form, complete `"X"` events with µs
/// timestamps) to `path`, atomically. Returns the number of events
/// written.
///
/// # Errors
///
/// Propagates I/O errors from the atomic write.
pub fn export_chrome(path: &std::path::Path) -> std::io::Result<usize> {
    let events = snapshot_events();
    let items: Vec<String> = events
        .iter()
        .map(|e| {
            let mut obj = JsonObject::new()
                .str("name", e.name)
                .str("cat", "fades")
                .str("ph", "X")
                .u64("ts", e.ts_us)
                .u64("dur", e.dur_us)
                .u64("pid", 1)
                .u64("tid", e.tid);
            if e.experiment != NO_EXPERIMENT {
                obj = obj.raw(
                    "args",
                    &JsonObject::new().u64("experiment", e.experiment).finish(),
                );
            }
            obj.finish()
        })
        .collect();
    let doc = JsonObject::new()
        .raw("traceEvents", &array(&items))
        .str("displayTimeUnit", "ms")
        .finish();
    crate::registry::atomic_write(path, &format!("{doc}\n"))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    // Tracing state is process-global, so the ring tests share one ring:
    // they use a generous capacity and assert relatively.

    #[test]
    fn record_export_round_trip_with_monotonic_ts() {
        set_enabled_with_capacity(true, 4096);
        set_current_experiment(42);
        record_span("trace-test-phase", 10, 5);
        record_span("trace-test-phase", 30, 7);
        clear_current_experiment();
        record_span("trace-test-other", 20, 1);

        let events = snapshot_events();
        assert!(events.len() >= 3);
        for pair in events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us, "export is ts-sorted");
        }
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "trace-test-phase")
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine.iter().all(|e| e.experiment == 42));
        assert!(events
            .iter()
            .any(|e| e.name == "trace-test-other" && e.experiment == NO_EXPERIMENT));

        let path = std::env::temp_dir().join(format!("fades-trace-{}.json", std::process::id()));
        let n = export_chrome(&path).expect("exports");
        assert!(n >= 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = parse(text.trim()).expect("valid JSON");
        let evs = match doc.get("traceEvents") {
            Some(JsonValue::Array(evs)) => evs,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(evs.len(), n);
        let mut last_ts = 0.0;
        for ev in evs {
            assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"));
            let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
            assert!(ts >= last_ts, "ts monotone");
            last_ts = ts;
        }
        let _ = std::fs::remove_file(&path);
        set_enabled_with_capacity(false, 0);
    }

    #[test]
    fn wrapping_keeps_only_newest_capacity_events() {
        set_enabled_with_capacity(true, 4096);
        let before = events_recorded();
        let cap = capacity() as u64;
        for i in 0..cap + 16 {
            record_span("trace-wrap-phase", 1_000_000 + i, 1);
        }
        assert_eq!(events_recorded(), before + cap + 16);
        let events = snapshot_events();
        assert!(events.len() <= capacity(), "ring is bounded");
        // The newest events survive the wrap.
        assert!(events
            .iter()
            .any(|e| e.name == "trace-wrap-phase" && e.ts_us == 1_000_000 + cap + 15));
        set_enabled_with_capacity(false, 0);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        set_enabled_with_capacity(false, 0);
        let before = events_recorded();
        record_span("trace-disabled-phase", 1, 1);
        assert_eq!(events_recorded(), before);
    }
}
