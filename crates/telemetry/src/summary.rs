//! The human-readable telemetry summary table.

use std::fmt;

use crate::record::CampaignAggregate;

/// Renders campaign aggregates, phase histograms and interpreter counters
/// as a plain-text table for the experiments CLI.
///
/// Construct with [`Summary::collect`] after campaigns finish, then
/// `print!("{summary}")`.
#[derive(Debug)]
pub struct Summary {
    aggregates: Vec<CampaignAggregate>,
    phases: Vec<(&'static str, crate::HistogramSnapshot)>,
    sim_cycles: u64,
    sim_cell_evals: u64,
}

impl Summary {
    /// Snapshots the current telemetry state (without draining the
    /// aggregate registry).
    pub fn collect() -> Self {
        Summary {
            aggregates: crate::registry::peek_aggregates(),
            phases: crate::phase_snapshots(),
            sim_cycles: crate::sim::CYCLES.get(),
            sim_cell_evals: crate::sim::CELL_EVALS.get(),
        }
    }

    /// Builds a summary over an explicit set of aggregates (used by the
    /// CLI after draining the registry).
    pub fn of(aggregates: Vec<CampaignAggregate>) -> Self {
        Summary {
            aggregates,
            phases: crate::phase_snapshots(),
            sim_cycles: crate::sim::CYCLES.get(),
            sim_cell_evals: crate::sim::CELL_EVALS.get(),
        }
    }

    /// True when there is nothing to print.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
            && self.phases.iter().all(|(_, s)| s.count() == 0)
            && self.sim_cycles == 0
            && self.sim_cell_evals == 0
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── telemetry ───────────────────────────────────────────────"
        )?;
        if !self.aggregates.is_empty() {
            let name_w = self
                .aggregates
                .iter()
                .map(|a| a.name.len())
                .max()
                .unwrap_or(8)
                .max(8);
            writeln!(
                f,
                "{:name_w$}  {:>6}  {:>4}  {:>6} {:>6} {:>6}  {:>10}  {:>9}  {:>8}",
                "campaign", "n", "thr", "fail%", "lat%", "sil%", "model s/f", "µs/f", "faults/s"
            )?;
            for a in &self.aggregates {
                writeln!(
                    f,
                    "{:name_w$}  {:>6}  {:>4}  {:>6.1} {:>6.1} {:>6.1}  {:>10.4}  {:>9.1}  {:>8.1}",
                    a.name,
                    a.n,
                    a.threads,
                    a.outcomes.failure_pct(),
                    a.outcomes.latent_pct(),
                    a.outcomes.silent_pct(),
                    a.mean_modelled_s_per_fault(),
                    a.mean_us_per_fault(),
                    a.faults_per_sec(),
                )?;
            }
        }
        let live_phases: Vec<_> = self.phases.iter().filter(|(_, s)| s.count() > 0).collect();
        if !live_phases.is_empty() {
            let name_w = live_phases
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(5)
                .max(5);
            writeln!(
                f,
                "{:name_w$}  {:>8}  {:>8} {:>8} {:>8} {:>8}",
                "phase", "count", "p50µs", "p90µs", "p99µs", "maxµs"
            )?;
            for (name, s) in &live_phases {
                writeln!(
                    f,
                    "{:name_w$}  {:>8}  {:>8} {:>8} {:>8} {:>8}",
                    name,
                    s.count(),
                    s.p50(),
                    s.p90(),
                    s.p99(),
                    s.max()
                )?;
            }
        }
        if self.sim_cycles > 0 || self.sim_cell_evals > 0 {
            writeln!(
                f,
                "interpreter: {} clock cycles, {} cell evaluations",
                self.sim_cycles, self.sim_cell_evals
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OutcomeCounts, Recorder};

    #[test]
    fn summary_renders_aggregates_and_phases() {
        let recorder = Recorder::new("summary-test", 2, 2).with_run_log(None);
        let h = recorder.handle();
        h.record(crate::ExperimentRecord {
            index: 0,
            target: "all FFs".into(),
            strategy: "lsr".into(),
            outcome: "failure",
            modelled_s: 0.5,
            wall_us: 100,
            ..Default::default()
        });
        h.record(crate::ExperimentRecord {
            index: 1,
            target: "all FFs".into(),
            strategy: "lsr".into(),
            outcome: "silent",
            modelled_s: 0.5,
            wall_us: 200,
            ..Default::default()
        });
        drop(h); // finish() drains until every handle is gone
        let agg = recorder.finish();
        let _ = crate::registry::drain_aggregates();

        let text = Summary::of(vec![agg]).to_string();
        assert!(
            text.contains("summary-test"),
            "missing campaign row:\n{text}"
        );
        assert!(text.contains("50.0"), "missing 50% outcome split:\n{text}");
    }

    #[test]
    fn outcome_percentages() {
        let mut c = OutcomeCounts::default();
        c.record("failure");
        c.record("latent");
        c.record("silent");
        c.record("silent");
        assert_eq!(c.total(), 4);
        assert!((c.failure_pct() - 25.0).abs() < 1e-9);
        assert!((c.silent_pct() - 50.0).abs() < 1e-9);
    }
}
