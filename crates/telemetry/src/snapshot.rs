//! Point-in-time capture of every registered metric, with Prometheus
//! text and JSON renderings.
//!
//! [`snapshot`] gathers the built-in counter families ([`sim`](crate::sim),
//! [`fastpath`](crate::fastpath), [`dispatch`](crate::dispatch),
//! [`analysis`](crate::analysis), the monitor's anomaly counter), the
//! progress gauges, every phase
//! histogram, and anything applications registered through
//! [`register_counter`]/[`register_gauge`] — into one stable, serializable
//! [`MetricsSnapshot`]. The capture itself is just relaxed loads: safe to
//! take while campaigns hammer the counters, cheap enough to take per
//! HTTP request.

use std::sync::Mutex;

use crate::counter::{Counter, Gauge};
use crate::histogram::HistogramSnapshot;
use crate::json::{array, JsonObject};

/// Extra metrics registered at runtime. Statics only: registration is
/// for long-lived, crate-level metrics, mirroring the built-ins.
struct Extra {
    counters: Vec<(&'static str, &'static Counter)>,
    gauges: Vec<(&'static str, &'static Gauge)>,
}

static EXTRA: Mutex<Extra> = Mutex::new(Extra {
    counters: Vec::new(),
    gauges: Vec::new(),
});

/// Registers an application counter under `name` (a full Prometheus
/// metric name, e.g. `myapp_retries_total`). Re-registering the same
/// name replaces the previous entry.
pub fn register_counter(name: &'static str, counter: &'static Counter) {
    let mut extra = EXTRA
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    extra.counters.retain(|(n, _)| *n != name);
    extra.counters.push((name, counter));
}

/// Registers an application gauge under `name`. Re-registering the same
/// name replaces the previous entry.
pub fn register_gauge(name: &'static str, gauge: &'static Gauge) {
    let mut extra = EXTRA
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    extra.gauges.retain(|(n, _)| *n != name);
    extra.gauges.push((name, gauge));
}

/// A stable capture of every registered metric. Field vectors keep
/// registration order (built-ins first), so repeated snapshots render in
/// the same order — diffs of `/metrics` stay readable.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counters, `(prometheus_name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges, `(prometheus_name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Per-phase wall-clock histograms, `(phase_name, snapshot)`.
    pub phases: Vec<(String, HistogramSnapshot)>,
}

/// Captures every registered counter, gauge and phase histogram.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters: Vec<(String, u64)> = vec![
        ("fades_sim_cycles_total", crate::sim::CYCLES.get()),
        ("fades_sim_cell_evals_total", crate::sim::CELL_EVALS.get()),
        ("fades_sim_lane_cycles_total", crate::sim::LANE_CYCLES.get()),
        (
            "fades_sim_batch_cycles_total",
            crate::sim::BATCH_CYCLES.get(),
        ),
        (
            "fades_sim_lane_retirements_total",
            crate::sim::LANE_RETIREMENTS.get(),
        ),
        (
            "fades_sim_evals_skipped_total",
            crate::sim::EVALS_SKIPPED.get(),
        ),
        (
            "fades_sim_warm_skipped_cycles_total",
            crate::sim::WARM_SKIPPED_CYCLES.get(),
        ),
        (
            "fades_sim_uniform_cycles_total",
            crate::sim::UNIFORM_CYCLES.get(),
        ),
        (
            "fades_fastpath_fast_forwarded_total",
            crate::fastpath::FAST_FORWARDED.get(),
        ),
        (
            "fades_fastpath_early_stopped_total",
            crate::fastpath::EARLY_STOPPED.get(),
        ),
        (
            "fades_fastpath_prefix_cycles_skipped_total",
            crate::fastpath::PREFIX_CYCLES_SKIPPED.get(),
        ),
        (
            "fades_fastpath_early_stop_cycles_skipped_total",
            crate::fastpath::EARLY_STOP_CYCLES_SKIPPED.get(),
        ),
        (
            "fades_dispatch_retries_total",
            crate::dispatch::RETRIES.get(),
        ),
        (
            "fades_dispatch_quarantines_total",
            crate::dispatch::QUARANTINES.get(),
        ),
        (
            "fades_dispatch_resume_skipped_total",
            crate::dispatch::RESUME_SKIPPED.get(),
        ),
        (
            "fades_analysis_static_silent_total",
            crate::analysis::STATIC_SILENT.get(),
        ),
        (
            "fades_analysis_lint_diagnostics_total",
            crate::analysis::LINT_DIAGNOSTICS.get(),
        ),
        (
            "fades_analysis_lane_fallbacks_total",
            crate::analysis::LANE_FALLBACKS.get(),
        ),
        ("fades_anomalies_total", crate::monitor::ANOMALIES.get()),
        (
            "fades_trace_events_recorded_total",
            crate::trace::events_recorded(),
        ),
    ]
    .into_iter()
    .map(|(n, v)| (n.to_string(), v))
    .collect();

    let progress = crate::monitor::progress();
    let mut gauges: Vec<(String, u64)> = vec![
        ("fades_campaigns", progress.campaigns()),
        ("fades_experiments_total", progress.total()),
        ("fades_experiments_done", progress.done()),
    ]
    .into_iter()
    .map(|(n, v)| (n.to_string(), v))
    .collect();

    {
        let extra = EXTRA
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.extend(extra.counters.iter().map(|(n, c)| (n.to_string(), c.get())));
        gauges.extend(extra.gauges.iter().map(|(n, g)| (n.to_string(), g.get())));
    }

    let phases = crate::span::phase_snapshots()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s))
        .collect();

    MetricsSnapshot {
        counters,
        gauges,
        phases,
    }
}

/// Keeps only `[a-zA-Z0-9_]` label-safe characters, mapping the rest to
/// `_` (phase names are free-form span literals).
fn label_safe(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per family, counters and
    /// gauges as plain samples, phase histograms as summaries
    /// (`fades_phase_us{phase="...",quantile="0.5"}` plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        if !self.phases.is_empty() {
            out.push_str("# TYPE fades_phase_us summary\n");
            for (phase, snap) in &self.phases {
                let phase = label_safe(phase);
                for (q, v) in [
                    ("0.5", snap.p50()),
                    ("0.9", snap.p90()),
                    ("0.99", snap.p99()),
                ] {
                    out.push_str(&format!(
                        "fades_phase_us{{phase=\"{phase}\",quantile=\"{q}\"}} {v}\n"
                    ));
                }
                out.push_str(&format!(
                    "fades_phase_us_sum{{phase=\"{phase}\"}} {}\n",
                    snap.sum()
                ));
                out.push_str(&format!(
                    "fades_phase_us_count{{phase=\"{phase}\"}} {}\n",
                    snap.count()
                ));
            }
        }
        out
    }

    /// Renders the snapshot as one JSON object: `counters` and `gauges`
    /// maps plus a `phases` array of per-phase quantile objects.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters = counters.u64(name, *value);
        }
        let mut gauges = JsonObject::new();
        for (name, value) in &self.gauges {
            gauges = gauges.u64(name, *value);
        }
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, s)| {
                JsonObject::new()
                    .str("phase", name)
                    .u64("count", s.count())
                    .u64("sum_us", s.sum())
                    .u64("p50_us", s.p50())
                    .u64("p90_us", s.p90())
                    .u64("p99_us", s.p99())
                    .u64("max_us", s.max())
                    .finish()
            })
            .collect();
        JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("phases", &array(&phases))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new();
    static TEST_GAUGE: Gauge = Gauge::new();

    #[test]
    fn snapshot_captures_builtins_and_registered_extras() {
        register_counter("fades_test_extra_total", &TEST_COUNTER);
        register_gauge("fades_test_extra_gauge", &TEST_GAUGE);
        TEST_COUNTER.add(7);
        TEST_GAUGE.set(3);
        let s = snapshot();
        let get =
            |v: &[(String, u64)], n: &str| v.iter().find(|(name, _)| name == n).map(|(_, v)| *v);
        assert!(get(&s.counters, "fades_anomalies_total").is_some());
        assert!(get(&s.counters, "fades_sim_cycles_total").is_some());
        assert!(get(&s.counters, "fades_test_extra_total").unwrap() >= 7);
        assert_eq!(get(&s.gauges, "fades_test_extra_gauge"), Some(3));
        assert!(get(&s.gauges, "fades_experiments_done").is_some());
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_samples() {
        crate::span::phase("snapshot-test-phase").record(100);
        let text = snapshot().to_prometheus();
        assert!(text.contains("# TYPE fades_anomalies_total counter"));
        assert!(text.contains("# TYPE fades_experiments_done gauge"));
        assert!(text.contains("# TYPE fades_phase_us summary"));
        assert!(text.contains("fades_phase_us{phase=\"snapshot_test_phase\",quantile=\"0.5\"}"));
        assert!(text.contains("fades_phase_us_count{phase=\"snapshot_test_phase\"}"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "sample value parses: {line}");
            assert!(parts.next().is_some(), "sample has a name: {line}");
        }
        crate::span::phase("snapshot-test-phase").reset();
    }

    #[test]
    fn json_rendering_parses_and_round_trips_counts() {
        let s = snapshot();
        let v = crate::json::parse(&s.to_json()).expect("snapshot JSON parses");
        let counters = v.get("counters").expect("counters object");
        assert!(counters.get("fades_anomalies_total").is_some());
        assert!(v.get("phases").is_some());
    }
}
