//! Process-global registry of finished campaign aggregates.
//!
//! Campaign runners ([`Recorder::finish`]) push here; the experiments CLI
//! drains at exit to print the [`Summary`](crate::Summary) table and to
//! write `BENCH_campaign.json`.
//!
//! [`Recorder::finish`]: crate::Recorder::finish

use std::sync::Mutex;

use crate::json::{array, JsonObject};
use crate::record::CampaignAggregate;

static AGGREGATES: Mutex<Vec<CampaignAggregate>> = Mutex::new(Vec::new());

/// Registers a finished campaign. Called by [`Recorder::finish`]; public
/// so external runners can feed the same sinks.
///
/// [`Recorder::finish`]: crate::Recorder::finish
pub fn push_aggregate(agg: CampaignAggregate) {
    AGGREGATES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(agg);
}

/// Clones the registered aggregates without clearing them.
pub fn peek_aggregates() -> Vec<CampaignAggregate> {
    AGGREGATES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Takes all registered aggregates, leaving the registry empty.
pub fn drain_aggregates() -> Vec<CampaignAggregate> {
    std::mem::take(
        &mut *AGGREGATES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// temporary file in the same directory (same filesystem, so the rename
/// cannot cross devices) which is then renamed over `path`. A reader —
/// or a run killed mid-write — therefore sees either the complete old
/// file or the complete new one, never a truncated hybrid.
///
/// # Errors
///
/// Propagates I/O errors; the temporary file is cleaned up on failure.
pub fn atomic_write(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic-write");
    // The temp file must live in the destination's own directory — not
    // the cwd — so the rename stays within one filesystem. A bare
    // file name has an empty parent, which means "here".
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(std::path::Path::new("."));
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Writes the machine-readable campaign benchmark file
/// (`BENCH_campaign.json`): overall faults/sec, mean µs/fault (real) and
/// mean modelled s/fault, the outcome mix, and one entry per campaign.
/// The write is [atomic](atomic_write) — a killed run never leaves a
/// truncated bench file.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_bench_json(
    path: &std::path::Path,
    aggregates: &[CampaignAggregate],
) -> std::io::Result<()> {
    let n: u64 = aggregates.iter().map(|a| a.n).sum();
    let wall_s: f64 = aggregates.iter().map(|a| a.wall_s).sum();
    let modelled_s: f64 = aggregates.iter().map(|a| a.modelled_s).sum();
    let wall_us_sum: u64 = aggregates.iter().map(|a| a.exp_wall.sum()).sum();
    let failures: u64 = aggregates.iter().map(|a| a.outcomes.failures).sum();
    let latents: u64 = aggregates.iter().map(|a| a.outcomes.latents).sum();
    let silents: u64 = aggregates.iter().map(|a| a.outcomes.silents).sum();

    let campaigns: Vec<String> = aggregates
        .iter()
        .map(|a| {
            JsonObject::new()
                .str("campaign", &a.name)
                .u64("n", a.n)
                .u64("threads", a.threads)
                .f64("wall_s", a.wall_s)
                .f64("faults_per_sec", a.faults_per_sec())
                .f64("mean_us_per_fault", a.mean_us_per_fault())
                .f64("mean_modelled_s_per_fault", a.mean_modelled_s_per_fault())
                .u64("failures", a.outcomes.failures)
                .u64("latents", a.outcomes.latents)
                .u64("silents", a.outcomes.silents)
                .finish()
        })
        .collect();

    let doc = JsonObject::new()
        .str("bench", "campaign")
        .u64("faults", n)
        .f64("wall_s", wall_s)
        .f64(
            "faults_per_sec",
            if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
        )
        .f64(
            "mean_us_per_fault",
            if n > 0 {
                wall_us_sum as f64 / n as f64
            } else {
                0.0
            },
        )
        .f64(
            "mean_modelled_s_per_fault",
            if n > 0 { modelled_s / n as f64 } else { 0.0 },
        )
        .u64("failures", failures)
        .u64("latents", latents)
        .u64("silents", silents)
        .raw("campaigns", &array(&campaigns))
        .finish();

    atomic_write(path, &format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_lands_its_temp_file_next_to_the_destination() {
        // A destination outside the cwd: the temp file (and hence the
        // rename) must stay inside the destination's directory, or a
        // temp-dir on another filesystem would make the rename fail
        // with EXDEV.
        let dir = std::env::temp_dir().join(format!("fades-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("out.json");
        atomic_write(&dest, "{\"ok\":true}\n").expect("atomic write outside cwd");
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "{\"ok\":true}\n");
        // No stray temp files left behind — here or in the cwd.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");
        assert!(!std::path::Path::new(&format!(".out.json.tmp.{}", std::process::id())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_accepts_a_bare_file_name() {
        let name = format!("fades-aw-bare-{}.json", std::process::id());
        atomic_write(std::path::Path::new(&name), "1\n").expect("bare name writes to cwd");
        assert_eq!(std::fs::read_to_string(&name).unwrap(), "1\n");
        let _ = std::fs::remove_file(&name);
    }
}
