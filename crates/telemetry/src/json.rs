//! Hand-rolled JSON writing and parsing.
//!
//! The build environment is offline, so instead of `serde` the run-log
//! sink serializes through [`JsonObject`] — append-only, insertion-ordered
//! fields, which gives the JSONL schema its stable field order — and the
//! tests validate output with the small recursive-descent [`parse`]r.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes an `f64` the way the run log wants it: finite shortest
/// round-trip, with NaN/inf mapped to `null` (JSON has no non-finite
/// numbers).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // Keep integers recognisably floats for schema stability.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":\"{}\"", escape(key), escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), number(value));
        self
    }

    /// Adds a pre-serialized JSON value (nested object/array).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "\"{}\":{}", escape(key), value);
        self
    }

    /// Finishes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes a slice of pre-serialized values as a JSON array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// A parsed JSON value (used by tests and the bench-file reader).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (sorted by key; field order is not preserved).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.num(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let Some(c) = s.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_round_trips_through_parser() {
        let line = JsonObject::new()
            .str("type", "experiment")
            .u64("index", 7)
            .f64("modelled_s", 0.25)
            .str("note", "quote \" and \\ and\nnewline")
            .raw("nested", &JsonObject::new().u64("x", 1).finish())
            .finish();
        let v = parse(&line).expect("parses");
        assert_eq!(
            v.get("type").and_then(JsonValue::as_str),
            Some("experiment")
        );
        assert_eq!(v.get("index").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("modelled_s").and_then(JsonValue::as_f64), Some(0.25));
        assert_eq!(
            v.get("note").and_then(JsonValue::as_str),
            Some("quote \" and \\ and\nnewline")
        );
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("x"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn field_order_is_insertion_order() {
        let line = JsonObject::new().u64("b", 1).u64("a", 2).finish();
        assert_eq!(line, "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn arrays_and_literals() {
        let v = parse("[1, 2.5, null, true, \"x\", {}]").expect("parses");
        match v {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2], JsonValue::Null);
                assert_eq!(items[3], JsonValue::Bool(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new().f64("x", f64::NAN).finish();
        assert_eq!(line, "{\"x\":null}");
    }
}
