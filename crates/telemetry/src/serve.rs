//! A std-only metrics endpoint: `GET /metrics` and `GET /status` over
//! plain `std::net::TcpListener`.
//!
//! Long campaigns are batch jobs; their health should be observable from
//! the outside while they run, without adding an HTTP framework to a
//! zero-dependency workspace. The server here speaks just enough
//! HTTP/1.1 for `curl`, Prometheus scrapes, and the smoke tests: it
//! reads the request line, routes two paths, writes one
//! `Connection: close` response. One background thread, non-blocking
//! accept with a 20 ms poll so shutdown is prompt, no keep-alive, no
//! chunking.
//!
//! Activated by `FADES_METRICS_ADDR=<host:port>` (port `0` picks a free
//! port; the bound address is written to `FADES_METRICS_ADDR_FILE` when
//! that is set, which is how tests discover it).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics server. Dropping the handle signals the thread to
/// stop (without blocking); [`shutdown`](MetricsServer::shutdown) stops
/// and joins it deterministically.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `/metrics` and `/status` on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration errors.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fades-metrics".into())
            .spawn(move || serve_loop(&listener, &stop_flag))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// Starts the server iff `FADES_METRICS_ADDR` is set non-empty.
    /// `None` when unset; `Some(Err)` when set but unusable (callers
    /// should surface that — a campaign asked for observability it is
    /// not getting). On success, writes the bound address to the path in
    /// `FADES_METRICS_ADDR_FILE` when that is set too.
    pub fn start_from_env() -> Option<std::io::Result<MetricsServer>> {
        let addr = match std::env::var("FADES_METRICS_ADDR") {
            Ok(v) if !v.is_empty() => v,
            _ => return None,
        };
        let server = match MetricsServer::start(&addr) {
            Ok(s) => s,
            Err(e) => return Some(Err(e)),
        };
        if let Ok(path) = std::env::var("FADES_METRICS_ADDR_FILE") {
            if !path.is_empty() {
                if let Err(e) = crate::registry::atomic_write(
                    std::path::Path::new(&path),
                    &format!("{}\n", server.addr),
                ) {
                    eprintln!("warning: could not write metrics addr file {path}: {e}");
                }
            }
        }
        Some(Ok(server))
    }

    /// The address the listener actually bound (relevant with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serving thread to exit and waits for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        // Signal only: the poll loop notices within one interval. Not
        // joining here keeps drops in panic paths cheap.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are tiny and scrapers are rare,
                // so one thread is plenty and keeps resources bounded.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or the buffer fills —
    // request bodies are ignored, these are GETs).
    let mut buf = [0u8; 2048];
    let mut len = 0;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let path = request_line.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                crate::snapshot::snapshot().to_prometheus(),
            ),
            "/status" => (
                "200 OK",
                "application/json",
                format!("{}\n", crate::monitor::status_snapshot().to_json()),
            ),
            "/" => (
                "200 OK",
                "text/plain",
                "fades-monitor: GET /metrics | GET /status\n".into(),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".into()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A minimal test/tooling HTTP client: fetches `path` from `addr` and
/// returns `(status_code, body)`. Just enough for the smoke gate to
/// scrape its own endpoints without external tools.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface as
/// `InvalidData`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_status_index_and_404() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();

        let (code, body) = http_get(&addr, "/metrics").expect("GET /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("fades_anomalies_total"));
        assert!(body.contains("# TYPE fades_sim_cycles_total counter"));

        let (code, body) = http_get(&addr, "/status").expect("GET /status");
        assert_eq!(code, 200);
        let v = crate::json::parse(body.trim()).expect("status is JSON");
        assert_eq!(v.get("type").and_then(|x| x.as_str()), Some("status"));
        assert!(v.get("experiments_done").and_then(|x| x.as_u64()).is_some());

        let (code, _) = http_get(&addr, "/").expect("GET /");
        assert_eq!(code, 200);
        let (code, _) = http_get(&addr, "/nope").expect("GET /nope");
        assert_eq!(code, 404);

        server.shutdown();
    }

    #[test]
    fn port_zero_binds_an_ephemeral_port() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }
}
