//! A std-only mini HTTP server: the `/metrics` + `/status` endpoint,
//! and the reusable listener the campaign service builds its API on.
//!
//! Long campaigns are batch jobs; their health should be observable from
//! the outside while they run, without adding an HTTP framework to a
//! zero-dependency workspace. [`HttpServer`] speaks just enough HTTP/1.1
//! for `curl`, Prometheus scrapes, the smoke tests and the
//! `fades-service` JSON API: it reads one request head (bounded), routes
//! it through a handler closure, writes one `Connection: close`
//! response. One background thread, non-blocking accept with a 20 ms
//! poll so shutdown is prompt, no keep-alive, no chunking.
//!
//! The read path is hardened against slow and oversized clients — a
//! public listener must not let one bad connection park the serving
//! thread forever:
//!
//! * the request head (request line + headers) is read into a fixed
//!   byte budget ([`HEAD_BUDGET`]); overflowing it is a `400`;
//! * a connection that goes silent before completing its head or body
//!   is abandoned with a `408` once [`READ_DEADLINE`] passes (each
//!   individual `read` also carries a short timeout so the thread is
//!   never parked);
//! * request bodies are accepted only up to [`BODY_BUDGET`] declared
//!   bytes; anything larger is a `413` and the body is not read.
//!
//! [`MetricsServer`] is the classic campaign endpoint on top of it,
//! activated by `FADES_METRICS_ADDR=<host:port>` (port `0` picks a free
//! port; the bound address is written to `FADES_METRICS_ADDR_FILE` when
//! that is set, which is how tests discover it).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum bytes of request line + headers the server reads. Anything
/// larger is answered `400` without further reading.
pub const HEAD_BUDGET: usize = 8 * 1024;

/// Maximum declared `Content-Length` the server accepts. Larger bodies
/// are answered `413` without reading the body.
pub const BODY_BUDGET: usize = 256 * 1024;

/// How long a connection may take to deliver its head (and then its
/// body) before the server gives up with `408`.
pub const READ_DEADLINE: Duration = Duration::from_secs(2);

/// Per-`read` socket timeout; keeps the serving thread from parking on
/// one silent peer while the overall [`READ_DEADLINE`] accumulates.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// One parsed request, as seen by an [`HttpServer`] handler.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path (`/campaigns/job-000001/results`).
    pub path: String,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: String,
}

/// The response a handler produces.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` JSON response (body should already be serialized).
    pub fn json(body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "application/json".into(),
            body,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain".into(),
            body: body.into(),
        }
    }

    /// A JSON error document `{"error": msg}` with the given status.
    pub fn error(status: u16, msg: &str) -> HttpResponse {
        HttpResponse {
            status: status.max(400),
            content_type: "application/json".into(),
            body: format!(
                "{}\n",
                crate::json::JsonObject::new().str("error", msg).finish()
            ),
        }
    }
}

/// The handler signature [`HttpServer`] routes every request through.
pub type HttpHandler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// A running mini HTTP server. Dropping the handle signals the thread to
/// stop; [`shutdown`](HttpServer::shutdown) stops and joins it
/// deterministically.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` and serves requests through `handler` on a
    /// background thread named `name`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration errors.
    pub fn start(addr: &str, name: &str, handler: Arc<HttpHandler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || serve_loop(&listener, &stop_flag, &handler))?;
        Ok(HttpServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address the listener actually bound (relevant with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serving thread to exit and waits for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool, handler: &Arc<HttpHandler>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: responses are small and clients are the
                // CLI / scrapers, so one thread is plenty and keeps
                // resources bounded. The hardened read path guarantees
                // one connection detains the thread for at most
                // ~2 × READ_DEADLINE.
                let _ = handle_connection(stream, handler);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Outcome of the bounded request read: a parsed request, or the
/// rejection to answer with.
enum ReadOutcome {
    Request(HttpRequest),
    Reject(u16, &'static str),
}

/// Reads one request head (and body, when `Content-Length` is present)
/// within the byte budgets and the read deadline.
fn read_request(stream: &mut TcpStream) -> std::io::Result<ReadOutcome> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    let started = Instant::now();
    let mut buf = vec![0u8; HEAD_BUDGET];
    let mut len = 0;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf[..len]) {
            break pos;
        }
        if len == buf.len() {
            // Budget exhausted without a complete head.
            return Ok(ReadOutcome::Reject(400, "request head too large"));
        }
        if started.elapsed() >= READ_DEADLINE {
            return Ok(ReadOutcome::Reject(408, "timed out reading request head"));
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => return Ok(ReadOutcome::Reject(400, "connection closed mid-request")),
            Ok(n) => len += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Per-read timeout: loop back and re-check the deadline.
            }
            Err(e) => return Err(e),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("").to_string();
    let path = request_line.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Ok(ReadOutcome::Reject(400, "malformed request line"));
    }

    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > BODY_BUDGET {
        return Ok(ReadOutcome::Reject(413, "request body too large"));
    }

    // Body bytes already read past the head terminator, then the rest.
    let mut body = buf[head_end + 4..len].to_vec();
    let mut chunk = [0u8; 4096];
    while body.len() < content_length {
        if started.elapsed() >= READ_DEADLINE * 2 {
            return Ok(ReadOutcome::Reject(408, "timed out reading request body"));
        }
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Ok(ReadOutcome::Reject(400, "connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);

    Ok(ReadOutcome::Request(HttpRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn handle_connection(mut stream: TcpStream, handler: &Arc<HttpHandler>) -> std::io::Result<()> {
    let response = match read_request(&mut stream)? {
        ReadOutcome::Request(request) => handler(&request),
        ReadOutcome::Reject(status, msg) => {
            // Discard (a bounded amount of) whatever else the client
            // already sent: closing with unread bytes in the socket
            // makes the kernel reset the connection, which would destroy
            // the error response we are about to write.
            drain_briefly(&mut stream);
            HttpResponse::text(status, format!("{msg}\n"))
        }
    };
    write_response(&mut stream, &response)
}

/// Reads and discards pending input until the peer pauses, closes, or a
/// small byte/time budget runs out. Best-effort politeness before a
/// reject; never blocks for long.
fn drain_briefly(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let started = Instant::now();
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 1024 * 1024 && started.elapsed() < Duration::from_millis(500) {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
}

fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let status_text = match response.status {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        408 => "408 Request Timeout",
        409 => "409 Conflict",
        413 => "413 Payload Too Large",
        503 => "503 Service Unavailable",
        other => return write_numeric_status(stream, other, response),
    };
    let head = format!(
        "HTTP/1.1 {status_text}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn write_numeric_status(
    stream: &mut TcpStream,
    status: u16,
    response: &HttpResponse,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} Status\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// The default observability router: `/metrics`, `/status`, `/`.
/// Exposed so composite servers (the campaign service) can serve the
/// same endpoints alongside their own routes.
pub fn metrics_router(request: &HttpRequest) -> HttpResponse {
    if request.method != "GET" {
        return HttpResponse::text(405, "GET only\n");
    }
    match request.path.as_str() {
        "/metrics" => HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4".into(),
            body: crate::snapshot::snapshot().to_prometheus(),
        },
        "/status" => {
            HttpResponse::json(format!("{}\n", crate::monitor::status_snapshot().to_json()))
        }
        "/" => HttpResponse::text(200, "fades-monitor: GET /metrics | GET /status\n"),
        _ => HttpResponse::text(404, "not found\n"),
    }
}

/// A running metrics server ([`HttpServer`] with the
/// [`metrics_router`]). Dropping the handle signals the thread to stop;
/// [`shutdown`](MetricsServer::shutdown) stops and joins it
/// deterministically.
#[derive(Debug)]
pub struct MetricsServer {
    server: HttpServer,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `/metrics` and `/status` on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration errors.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let server = HttpServer::start(addr, "fades-metrics", Arc::new(metrics_router))?;
        Ok(MetricsServer { server })
    }

    /// Starts the server iff `FADES_METRICS_ADDR` is set non-empty.
    /// `None` when unset; `Some(Err)` when set but unusable (callers
    /// should surface that — a campaign asked for observability it is
    /// not getting). On success, writes the bound address to the path in
    /// `FADES_METRICS_ADDR_FILE` when that is set too.
    pub fn start_from_env() -> Option<std::io::Result<MetricsServer>> {
        let addr = match std::env::var("FADES_METRICS_ADDR") {
            Ok(v) if !v.is_empty() => v,
            _ => return None,
        };
        let server = match MetricsServer::start(&addr) {
            Ok(s) => s,
            Err(e) => return Some(Err(e)),
        };
        if let Ok(path) = std::env::var("FADES_METRICS_ADDR_FILE") {
            if !path.is_empty() {
                if let Err(e) = crate::registry::atomic_write(
                    std::path::Path::new(&path),
                    &format!("{}\n", server.addr()),
                ) {
                    eprintln!("warning: could not write metrics addr file {path}: {e}");
                }
            }
        }
        Some(Ok(server))
    }

    /// The address the listener actually bound (relevant with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Signals the serving thread to exit and waits for it.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// A minimal test/tooling HTTP client: fetches `path` from `addr` and
/// returns `(status_code, body)`. Just enough for the smoke gates and
/// the service CLI to talk to their own endpoints without external
/// tools.
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface as
/// `InvalidData`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "GET", path, None)
}

/// Like [`http_get`], but issues a `POST` with `body` (sent with a
/// `Content-Length` header).
///
/// # Errors
///
/// Propagates connection and read errors; malformed responses surface as
/// `InvalidData`.
pub fn http_post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    http_request(addr, "POST", path, Some(body))
}

fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let body = body.unwrap_or("");
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_status_index_and_404() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();

        let (code, body) = http_get(&addr, "/metrics").expect("GET /metrics");
        assert_eq!(code, 200);
        assert!(body.contains("fades_anomalies_total"));
        assert!(body.contains("# TYPE fades_sim_cycles_total counter"));

        let (code, body) = http_get(&addr, "/status").expect("GET /status");
        assert_eq!(code, 200);
        let v = crate::json::parse(body.trim()).expect("status is JSON");
        assert_eq!(v.get("type").and_then(|x| x.as_str()), Some("status"));
        assert!(v
            .get("experiments_done")
            .and_then(super::super::json::JsonValue::as_u64)
            .is_some());

        let (code, _) = http_get(&addr, "/").expect("GET /");
        assert_eq!(code, 200);
        let (code, _) = http_get(&addr, "/nope").expect("GET /nope");
        assert_eq!(code, 404);

        server.shutdown();
    }

    #[test]
    fn port_zero_binds_an_ephemeral_port() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }

    #[test]
    fn custom_handler_sees_method_path_and_body() {
        let server = HttpServer::start(
            "127.0.0.1:0",
            "test-echo",
            Arc::new(|req: &HttpRequest| {
                HttpResponse::json(format!("{} {} [{}]", req.method, req.path, req.body))
            }),
        )
        .expect("bind");
        let addr = server.addr().to_string();
        let (code, body) = http_post(&addr, "/echo", "hello body").expect("POST");
        assert_eq!(code, 200);
        assert_eq!(body, "POST /echo [hello body]");
        let (code, body) = http_get(&addr, "/also").expect("GET");
        assert_eq!(code, 200);
        assert_eq!(body, "GET /also []");
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_is_rejected_400() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        // A request line that alone overflows the head budget, never
        // sending the terminator.
        let huge = format!("GET /{} HTTP/1.1\r\n", "x".repeat(HEAD_BUDGET + 512));
        stream.write_all(huge.as_bytes()).expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "oversized head answered 400: {response}"
        );
        server.shutdown();
    }

    #[test]
    fn silent_connection_times_out_408() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Half a request line, then silence: the server must answer 408
        // after READ_DEADLINE instead of parking its thread forever.
        stream.write_all(b"GET /metr").expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream
            .set_read_timeout(Some(READ_DEADLINE * 4))
            .expect("timeout");
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "silent head answered 408: {response}"
        );
        server.shutdown();
    }

    #[test]
    fn oversized_body_is_rejected_413_without_reading_it() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!(
                    "POST /campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    BODY_BUDGET + 1
                )
                .as_bytes(),
            )
            .expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 413"),
            "oversized body answered 413: {response}"
        );
        server.shutdown();
    }

    #[test]
    fn slow_body_times_out_408() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Complete head promising a body that never arrives.
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\nonly-part")
            .expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream
            .set_read_timeout(Some(READ_DEADLINE * 8))
            .expect("timeout");
        stream.read_to_string(&mut response).expect("read");
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "stalled body answered 408: {response}"
        );
        server.shutdown();
    }
}
