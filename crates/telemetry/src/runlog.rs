//! The JSONL run-log sink.
//!
//! Activated by `FADES_RUN_LOG=<path>`: each campaign appends one line per
//! experiment (type `"experiment"`) followed by one trailing aggregate
//! line (type `"aggregate"`). Field order is stable — see
//! [`ExperimentRecord::to_json`] and [`CampaignAggregate::to_json`] for
//! the schema.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::record::{CampaignAggregate, ExperimentRecord};

/// The run-log destination from the `FADES_RUN_LOG` environment variable,
/// if set to a non-empty value.
pub fn run_log_path() -> Option<PathBuf> {
    match std::env::var("FADES_RUN_LOG") {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

static WARNED_UNWRITABLE: AtomicBool = AtomicBool::new(false);

/// Appends one pre-serialized structured JSONL line (no trailing
/// newline) to the configured run log, best-effort: when `FADES_RUN_LOG`
/// is unset or the file cannot be written this is a no-op. Used for
/// out-of-band records such as lint diagnostics.
pub fn log_raw_line(line: &str) {
    if let Some(path) = run_log_path() {
        let _ = append_raw_line(&path, line);
    }
}

/// Verifies that `path` can actually be opened for appending. On failure
/// the run log degrades to disabled with a one-line stderr warning (once
/// per process) — an unwritable `FADES_RUN_LOG` must never panic a
/// campaign mid-flight.
pub fn open_checked(path: PathBuf) -> Option<PathBuf> {
    match OpenOptions::new().create(true).append(true).open(&path) {
        Ok(_) => Some(path),
        Err(e) => {
            if !WARNED_UNWRITABLE.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: run log {} is not writable ({e}); logging disabled",
                    path.display()
                );
            }
            None
        }
    }
}

/// Appends one pre-serialized JSONL line (no trailing newline expected)
/// to `path`. Used for out-of-band structured lines such as the
/// watchdog's `anomaly` records.
pub(crate) fn append_raw_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    file.write_all(buf.as_bytes())
}

/// Appends one campaign's records plus its aggregate line to `path`.
///
/// Appending (not truncating) lets a multi-campaign CLI run collect every
/// campaign in one file; the `campaign` field on each line keeps them
/// separable.
pub(crate) fn append(
    path: &std::path::Path,
    campaign: &str,
    records: &[ExperimentRecord],
    aggregate: &CampaignAggregate,
) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut w = BufWriter::new(file);
    for r in records {
        w.write_all(r.to_json(campaign).as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.write_all(aggregate.to_json().as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_checked_accepts_a_writable_path() {
        let path =
            std::env::temp_dir().join(format!("fades-runlog-ok-{}.jsonl", std::process::id()));
        assert_eq!(open_checked(path.clone()), Some(path.clone()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_checked_degrades_on_unwritable_path_without_panicking() {
        // A path whose parent directory does not exist cannot be opened
        // for append; the run log must shrug, not panic.
        let path = std::env::temp_dir()
            .join(format!("fades-no-such-dir-{}", std::process::id()))
            .join("nested")
            .join("run.jsonl");
        assert_eq!(open_checked(path), None);
    }
}
