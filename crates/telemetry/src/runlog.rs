//! The JSONL run-log sink.
//!
//! Activated by `FADES_RUN_LOG=<path>`: each campaign appends one line per
//! experiment (type `"experiment"`) followed by one trailing aggregate
//! line (type `"aggregate"`). Field order is stable — see
//! [`ExperimentRecord::to_json`] and [`CampaignAggregate::to_json`] for
//! the schema.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use crate::record::{CampaignAggregate, ExperimentRecord};

/// The run-log destination from the `FADES_RUN_LOG` environment variable,
/// if set to a non-empty value.
pub fn run_log_path() -> Option<PathBuf> {
    match std::env::var("FADES_RUN_LOG") {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Appends one campaign's records plus its aggregate line to `path`.
///
/// Appending (not truncating) lets a multi-campaign CLI run collect every
/// campaign in one file; the `campaign` field on each line keeps them
/// separable.
pub(crate) fn append(
    path: &std::path::Path,
    campaign: &str,
    records: &[ExperimentRecord],
    aggregate: &CampaignAggregate,
) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut w = BufWriter::new(file);
    for r in records {
        w.write_all(r.to_json(campaign).as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.write_all(aggregate.to_json().as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}
