//! Per-experiment records and their cross-thread aggregation.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::JsonObject;
use crate::runlog;

/// One fault-injection experiment, as seen by the observability layer.
///
/// Field order here is the JSONL field order (stable schema, see
/// `README.md` § Observability).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment index within its campaign (deterministic plan order).
    pub index: u64,
    /// Targeted element class (e.g. `"all FFs"`).
    pub target: String,
    /// Injection strategy or phase (e.g. `"lsr-bitflip"`).
    pub strategy: String,
    /// Classified outcome: `"failure"`, `"latent"` or `"silent"`.
    pub outcome: &'static str,
    /// Modelled emulation/simulation seconds (the paper's metric).
    pub modelled_s: f64,
    /// Configuration-port operations.
    pub ops: u64,
    /// Readback operations.
    pub readback_ops: u64,
    /// Partial-reconfiguration write operations.
    pub write_ops: u64,
    /// Bulk full-download operations.
    pub bulk_ops: u64,
    /// Global-pulse operations.
    pub pulse_ops: u64,
    /// Bytes read back.
    pub readback_bytes: u64,
    /// Bytes written by partial reconfiguration.
    pub write_bytes: u64,
    /// Bytes moved by bulk downloads.
    pub bulk_bytes: u64,
    /// Golden-prefix cycles skipped by checkpoint fast-forward (0 on the
    /// full-simulation path).
    pub skipped_cycles: u64,
    /// Tail cycles skipped by early-stop convergence detection (0 on the
    /// full-simulation path).
    pub early_stop_cycles: u64,
    /// Real wall-clock microseconds this experiment took to emulate.
    pub wall_us: u64,
    /// Execution attempts it took (1 = first try; >1 means the isolating
    /// executor retried after a contained panic or error).
    pub attempts: u64,
}

impl ExperimentRecord {
    /// Serializes the record as one JSONL line (without newline).
    pub fn to_json(&self, campaign: &str) -> String {
        JsonObject::new()
            .str("type", "experiment")
            .str("campaign", campaign)
            .u64("index", self.index)
            .str("target", &self.target)
            .str("strategy", &self.strategy)
            .str("outcome", self.outcome)
            .f64("modelled_s", self.modelled_s)
            .u64("ops", self.ops)
            .u64("readback_ops", self.readback_ops)
            .u64("write_ops", self.write_ops)
            .u64("bulk_ops", self.bulk_ops)
            .u64("pulse_ops", self.pulse_ops)
            .u64("readback_bytes", self.readback_bytes)
            .u64("write_bytes", self.write_bytes)
            .u64("bulk_bytes", self.bulk_bytes)
            .u64("skipped_cycles", self.skipped_cycles)
            .u64("early_stop_cycles", self.early_stop_cycles)
            .u64("wall_us", self.wall_us)
            .u64("attempts", self.attempts.max(1))
            .finish()
    }
}

/// Outcome counts, keyed by the record's outcome string.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// `"failure"` records.
    pub failures: u64,
    /// `"latent"` records.
    pub latents: u64,
    /// `"silent"` records.
    pub silents: u64,
}

impl OutcomeCounts {
    /// Records one outcome string (unknown strings count as failures so
    /// they are never silently dropped).
    pub fn record(&mut self, outcome: &str) {
        match outcome {
            "latent" => self.latents += 1,
            "silent" => self.silents += 1,
            _ => self.failures += 1,
        }
    }

    /// Total recorded.
    pub fn total(&self) -> u64 {
        self.failures + self.latents + self.silents
    }

    /// Percentage helper (0–100).
    fn pct(&self, n: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            n as f64 * 100.0 / self.total() as f64
        }
    }

    /// Failure percentage.
    pub fn failure_pct(&self) -> f64 {
        self.pct(self.failures)
    }

    /// Latent percentage.
    pub fn latent_pct(&self) -> f64 {
        self.pct(self.latents)
    }

    /// Silent percentage.
    pub fn silent_pct(&self) -> f64 {
        self.pct(self.silents)
    }
}

/// Progress state shared by all worker handles of one campaign.
#[derive(Debug)]
struct ProgressTicker {
    name: String,
    total: u64,
    every: u64,
    done: AtomicU64,
    enabled: bool,
}

impl ProgressTicker {
    fn tick(&self) {
        crate::monitor::progress().tick();
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled && self.every > 0 && done.is_multiple_of(self.every) && done < self.total {
            eprintln!("  [{}] {done}/{} experiments", self.name, self.total);
        }
    }
}

/// Whether the progress ticker should print: `FADES_PROGRESS=1` forces it
/// on, `FADES_PROGRESS=0` off; otherwise it prints only on interactive
/// stderr for campaigns big enough to feel slow.
fn progress_enabled(total: u64) -> bool {
    match std::env::var("FADES_PROGRESS") {
        Ok(v) if v == "0" => false,
        Ok(_) => true,
        Err(_) => total >= 500 && std::io::stderr().is_terminal(),
    }
}

/// Collects [`ExperimentRecord`]s from campaign worker threads and
/// aggregates them at campaign end.
///
/// Workers each get a cheap [`RecorderHandle`] (an `mpsc` sender plus the
/// shared progress ticker); [`finish`](Recorder::finish) drains the
/// channel, restores plan order, and produces the [`CampaignAggregate`] —
/// writing the JSONL run log on the way out when one is configured.
#[derive(Debug)]
pub struct Recorder {
    name: String,
    threads: u64,
    started: Instant,
    tx: mpsc::Sender<ExperimentRecord>,
    rx: mpsc::Receiver<ExperimentRecord>,
    progress: Arc<ProgressTicker>,
    run_log: Option<PathBuf>,
}

impl Recorder {
    /// Starts recording a campaign of `expected` experiments run on
    /// `threads` workers. The run-log path is taken from `FADES_RUN_LOG`
    /// (override with [`with_run_log`](Recorder::with_run_log)).
    pub fn new(name: impl Into<String>, expected: usize, threads: usize) -> Self {
        let name = name.into();
        let total = expected as u64;
        let progress = Arc::new(ProgressTicker {
            name: name.clone(),
            total,
            every: (total / 10).max(25),
            done: AtomicU64::new(0),
            enabled: progress_enabled(total),
        });
        let (tx, rx) = mpsc::channel();
        crate::monitor::progress().campaign_started(total);
        Recorder {
            name,
            threads: threads as u64,
            started: Instant::now(),
            tx,
            rx,
            progress,
            run_log: runlog::run_log_path().and_then(runlog::open_checked),
        }
    }

    /// Overrides the run-log destination (`None` disables it). Used by
    /// tests and by callers that manage the path themselves.
    pub fn with_run_log(mut self, path: Option<PathBuf>) -> Self {
        self.run_log = path;
        self
    }

    /// The campaign name records are logged under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A handle for one worker thread. Clone-cheap; handles may outlive
    /// worker loops but must be dropped before [`finish`](Recorder::finish)
    /// returns complete data (the campaign's thread scope guarantees it).
    pub fn handle(&self) -> RecorderHandle {
        RecorderHandle {
            tx: self.tx.clone(),
            progress: Arc::clone(&self.progress),
        }
    }

    /// Ends the campaign: drains all records, aggregates, writes the run
    /// log (when configured) and registers the aggregate for the CLI's
    /// summary/bench sinks.
    pub fn finish(self) -> CampaignAggregate {
        let Recorder {
            name,
            threads,
            started,
            tx,
            rx,
            progress: _,
            run_log,
        } = self;
        drop(tx);
        let mut records: Vec<ExperimentRecord> = rx.into_iter().collect();
        records.sort_by_key(|r| r.index);

        let wall = Histogram::new();
        let mut agg = CampaignAggregate {
            name: name.clone(),
            n: records.len() as u64,
            threads,
            outcomes: OutcomeCounts::default(),
            modelled_s: 0.0,
            wall_s: 0.0,
            ops: 0,
            readback_ops: 0,
            write_ops: 0,
            bulk_ops: 0,
            pulse_ops: 0,
            readback_bytes: 0,
            write_bytes: 0,
            bulk_bytes: 0,
            skipped_cycles: 0,
            early_stop_cycles: 0,
            retried: 0,
            exp_wall: HistogramSnapshot::empty(),
        };
        for r in &records {
            agg.outcomes.record(r.outcome);
            agg.modelled_s += r.modelled_s;
            agg.ops += r.ops;
            agg.readback_ops += r.readback_ops;
            agg.write_ops += r.write_ops;
            agg.bulk_ops += r.bulk_ops;
            agg.pulse_ops += r.pulse_ops;
            agg.readback_bytes += r.readback_bytes;
            agg.write_bytes += r.write_bytes;
            agg.bulk_bytes += r.bulk_bytes;
            agg.skipped_cycles += r.skipped_cycles;
            agg.early_stop_cycles += r.early_stop_cycles;
            agg.retried += r.attempts.saturating_sub(1);
            wall.record(r.wall_us);
        }
        agg.exp_wall = wall.snapshot();
        agg.wall_s = started.elapsed().as_secs_f64();

        if let Some(path) = &run_log {
            if let Err(e) = runlog::append(path, &name, &records, &agg) {
                eprintln!("warning: could not write run log {}: {e}", path.display());
            }
        }
        crate::registry::push_aggregate(agg.clone());
        agg
    }
}

/// A worker-side handle: records experiments into the campaign's channel.
#[derive(Debug, Clone)]
pub struct RecorderHandle {
    tx: mpsc::Sender<ExperimentRecord>,
    progress: Arc<ProgressTicker>,
}

impl RecorderHandle {
    /// Records one finished experiment.
    pub fn record(&self, record: ExperimentRecord) {
        self.progress.tick();
        // The receiver lives in the owning Recorder; a send can only fail
        // after finish(), which the campaign structure rules out. Drop
        // rather than panic in that case: telemetry must never take down
        // a campaign.
        let _ = self.tx.send(record);
    }
}

/// Aggregated telemetry of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignAggregate {
    /// Campaign name (figure/table label).
    pub name: String,
    /// Experiments recorded.
    pub n: u64,
    /// Worker threads actually used.
    pub threads: u64,
    /// Outcome mix.
    pub outcomes: OutcomeCounts,
    /// Total modelled seconds.
    pub modelled_s: f64,
    /// Real wall-clock seconds of the whole campaign.
    pub wall_s: f64,
    /// Total configuration-port operations.
    pub ops: u64,
    /// Readback operations.
    pub readback_ops: u64,
    /// Write operations.
    pub write_ops: u64,
    /// Bulk-download operations.
    pub bulk_ops: u64,
    /// Global-pulse operations.
    pub pulse_ops: u64,
    /// Bytes read back.
    pub readback_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Bulk bytes moved.
    pub bulk_bytes: u64,
    /// Total golden-prefix cycles skipped by checkpoint fast-forward.
    pub skipped_cycles: u64,
    /// Total tail cycles skipped by early-stop convergence detection.
    pub early_stop_cycles: u64,
    /// Total extra attempts spent retrying experiments (0 when no
    /// experiment needed more than one try).
    pub retried: u64,
    /// Per-experiment real wall-clock distribution (µs).
    pub exp_wall: HistogramSnapshot,
}

impl CampaignAggregate {
    /// Experiments per real second.
    pub fn faults_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.n as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Mean real microseconds per fault.
    pub fn mean_us_per_fault(&self) -> f64 {
        self.exp_wall.mean()
    }

    /// Mean modelled seconds per fault (the paper's Fig. 10 quantity).
    pub fn mean_modelled_s_per_fault(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.modelled_s / self.n as f64
        }
    }

    /// Serializes the trailing aggregate JSONL line (without newline).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("type", "aggregate")
            .str("campaign", &self.name)
            .u64("n", self.n)
            .u64("threads", self.threads)
            .u64("failures", self.outcomes.failures)
            .u64("latents", self.outcomes.latents)
            .u64("silents", self.outcomes.silents)
            .f64("modelled_s", self.modelled_s)
            .f64("wall_s", self.wall_s)
            .f64("faults_per_sec", self.faults_per_sec())
            .f64("mean_us_per_fault", self.mean_us_per_fault())
            .f64(
                "mean_modelled_s_per_fault",
                self.mean_modelled_s_per_fault(),
            )
            .u64("ops", self.ops)
            .u64("readback_ops", self.readback_ops)
            .u64("write_ops", self.write_ops)
            .u64("bulk_ops", self.bulk_ops)
            .u64("pulse_ops", self.pulse_ops)
            .u64("readback_bytes", self.readback_bytes)
            .u64("write_bytes", self.write_bytes)
            .u64("bulk_bytes", self.bulk_bytes)
            .u64("skipped_cycles", self.skipped_cycles)
            .u64("early_stop_cycles", self.early_stop_cycles)
            .u64("retried", self.retried)
            .u64("p50_us", self.exp_wall.p50())
            .u64("p90_us", self.exp_wall.p90())
            .u64("p99_us", self.exp_wall.p99())
            .u64("max_us", self.exp_wall.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64, outcome: &'static str, wall_us: u64) -> ExperimentRecord {
        ExperimentRecord {
            index,
            target: "all FFs".into(),
            strategy: "lsr-bitflip".into(),
            outcome,
            modelled_s: 0.25,
            ops: 2,
            readback_ops: 1,
            write_ops: 1,
            readback_bytes: 288,
            write_bytes: 288,
            wall_us,
            ..Default::default()
        }
    }

    #[test]
    fn aggregation_across_worker_threads() {
        let recorder = Recorder::new("test", 80, 4).with_run_log(None);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = recorder.handle();
                s.spawn(move || {
                    for i in 0..20u64 {
                        let idx = t * 20 + i;
                        let outcome = match idx % 4 {
                            0 => "failure",
                            1 => "latent",
                            _ => "silent",
                        };
                        h.record(record(idx, outcome, 100 + idx));
                    }
                });
            }
        });
        let agg = recorder.finish();
        assert_eq!(agg.n, 80);
        assert_eq!(agg.outcomes.failures, 20);
        assert_eq!(agg.outcomes.latents, 20);
        assert_eq!(agg.outcomes.silents, 40);
        assert_eq!(agg.ops, 160);
        assert_eq!(agg.readback_bytes, 80 * 288);
        assert!((agg.modelled_s - 20.0).abs() < 1e-9);
        assert_eq!(agg.exp_wall.count(), 80);
        assert!(agg.mean_us_per_fault() > 100.0);
        // Clean up the registry entry this finish() pushed.
        let _ = crate::registry::drain_aggregates();
    }

    #[test]
    fn mean_us_per_fault_times_n_equals_summed_wall() {
        // The per-experiment wall histogram carries an exact sum, so the
        // reported mean is sum/count exactly — `mean * n` must reproduce
        // the summed per-experiment `wall_us` (the invariant the
        // lane-engine wall-attribution fix is checked against).
        let recorder = Recorder::new("wall-consistency", 3, 1).with_run_log(None);
        let h = recorder.handle();
        for (index, wall_us) in [(0u64, 120u64), (1, 80), (2, 10_000)] {
            h.record(record(index, "silent", wall_us));
        }
        drop(h); // finish() drains until every sender is gone
        let agg = recorder.finish();
        assert_eq!(agg.exp_wall.sum(), 10_200);
        let reconstructed = agg.mean_us_per_fault() * agg.n as f64;
        assert!(
            (reconstructed - agg.exp_wall.sum() as f64).abs() < 1e-9,
            "mean*n = {reconstructed}, summed wall_us = {}",
            agg.exp_wall.sum()
        );
        let _ = crate::registry::drain_aggregates();
    }

    #[test]
    fn aggregate_json_is_parseable_and_ordered() {
        let recorder = Recorder::new("json-test", 1, 1).with_run_log(None);
        recorder.handle().record(record(0, "failure", 123));
        let agg = recorder.finish();
        let line = agg.to_json();
        assert!(line.starts_with("{\"type\":\"aggregate\",\"campaign\":\"json-test\""));
        let v = crate::json::parse(&line).expect("parses");
        assert_eq!(
            v.get("n").and_then(super::super::json::JsonValue::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("failures")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(1)
        );
        let _ = crate::registry::drain_aggregates();
    }
}
