//! Lightweight wall-clock spans feeding per-phase histograms.
//!
//! ```
//! # use fades_telemetry as telemetry;
//! # use telemetry::span;
//! {
//!     let _s = span!("implement");
//!     // ... timed work ...
//! }
//! let phases = telemetry::phase_snapshots();
//! assert!(phases.iter().any(|(name, _)| *name == "implement"));
//! # telemetry::reset_phases();
//! ```
//!
//! Each `span!("name")` call site resolves its phase histogram once (a
//! `OnceLock`), so the steady-state cost of a span is two `Instant`
//! reads plus one histogram record.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};

static PHASES: Mutex<Vec<(&'static str, Arc<Histogram>)>> = Mutex::new(Vec::new());

/// The histogram for a named phase, registering it on first use. Phase
/// names must be `'static` (string literals at `span!` call sites).
pub fn phase(name: &'static str) -> Arc<Histogram> {
    let mut phases = PHASES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((_, h)) = phases.iter().find(|(n, _)| *n == name) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::new());
    phases.push((name, Arc::clone(&h)));
    h
}

/// Snapshots every registered phase, in registration order.
pub fn phase_snapshots() -> Vec<(&'static str, HistogramSnapshot)> {
    PHASES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(n, h)| (*n, h.snapshot()))
        .collect()
}

/// Resets all phase histograms (the phases stay registered).
pub fn reset_phases() {
    for (_, h) in PHASES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
    {
        h.reset();
    }
}

/// An RAII guard that records elapsed microseconds into a phase histogram
/// when dropped — and, when tracing is on, deposits one completed-span
/// event into the [`trace`](crate::trace) ring buffer. Usually created
/// through [`span!`](crate::span!).
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    name: &'static str,
    started: Instant,
}

impl SpanGuard {
    /// Starts a span against an already-resolved phase histogram,
    /// carrying the phase name for the trace sink.
    pub fn with_name(name: &'static str, hist: Arc<Histogram>) -> Self {
        SpanGuard {
            hist,
            name,
            started: Instant::now(),
        }
    }

    /// Starts a span against an already-resolved phase histogram. Trace
    /// events from this guard carry the generic name `"span"` — prefer
    /// [`with_name`](SpanGuard::with_name) (or the [`span!`](crate::span!)
    /// macro, which caches the phase lookup).
    pub fn new(hist: Arc<Histogram>) -> Self {
        Self::with_name("span", hist)
    }

    /// Starts a span for a named phase (resolving the histogram).
    pub fn named(name: &'static str) -> Self {
        Self::with_name(name, phase(name))
    }

    /// Elapsed microseconds so far.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.elapsed_us();
        self.hist.record(dur_us);
        // One relaxed load when tracing is off — the span path stays as
        // cheap as PR 1 left it.
        if crate::trace::enabled() {
            let end = crate::trace::epoch_us();
            crate::trace::record_span(self.name, end.saturating_sub(dur_us), dur_us);
        }
    }
}

/// Starts a [`SpanGuard`] for the named phase, caching the phase lookup
/// per call site: `let _s = span!("implement");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static PHASE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::with_name(
            $name,
            ::std::sync::Arc::clone(PHASE.get_or_init(|| $crate::span_phase($name))),
        )
    }};
}

/// Implementation detail of [`span!`](crate::span!) — resolves a phase
/// histogram by name.
#[doc(hidden)]
pub fn span_phase(name: &'static str) -> Arc<Histogram> {
    phase(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_into_named_phase() {
        {
            let _s = crate::span!("test-phase");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = phase("test-phase").snapshot();
        assert_eq!(snap.count(), 1);
        assert!(snap.max() >= 1_000, "slept 2ms, recorded {}µs", snap.max());
        phase("test-phase").reset();
    }

    #[test]
    fn phases_register_once_and_snapshot_in_order() {
        let a1 = phase("alpha-phase");
        let a2 = phase("alpha-phase");
        assert!(Arc::ptr_eq(&a1, &a2));
        a1.record(5);
        let snaps = phase_snapshots();
        let found = snaps
            .iter()
            .find(|(n, _)| *n == "alpha-phase")
            .expect("registered");
        assert!(found.1.count() >= 1);
        reset_phases();
        let snaps = phase_snapshots();
        let found = snaps.iter().find(|(n, _)| *n == "alpha-phase").unwrap();
        assert_eq!(found.1.count(), 0);
    }

    #[test]
    fn guard_measures_elapsed() {
        let g = SpanGuard::named("elapsed-phase");
        std::thread::sleep(Duration::from_millis(1));
        assert!(g.elapsed_us() >= 500);
        drop(g);
        phase("elapsed-phase").reset();
    }
}
