//! Lock-free counters and gauges.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `AtomicU64` counter.
///
/// `const`-constructible so it can live in a `static`; all operations are
/// relaxed — counters are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (between campaigns or benchmark sections).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `AtomicU64` gauge (thread counts, pool sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Records the maximum of the current and given value.
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 8000);
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(5);
        g.max(3);
        assert_eq!(g.get(), 5);
        g.max(9);
        assert_eq!(g.get(), 9);
    }
}
