//! Live campaign health: the process-wide [`Progress`] handle, the
//! `/status` snapshot, and the stall/anomaly watchdog.
//!
//! Campaigns tick [`progress`] through their [`Recorder`](crate::Recorder)
//! (one `campaign_started` per campaign, one `tick` per finished
//! experiment), which is all the wiring a campaign needs: the metrics
//! server's `/status`, the ETA computation and the watchdog all read the
//! same handle. The watchdog is a background thread that samples progress
//! and the process counters on an interval and flags three anomaly
//! classes — **stall** (no experiment completion within a configurable
//! deadline), **lane-occupancy collapse** (the bit-parallel engine's mean
//! occupancy dropping far below its peak while cycles still advance) and
//! **quarantine-rate** (too large a fraction of experiments set aside) —
//! as structured `anomaly` lines in the run log plus the
//! `fades_anomalies_total` counter, so a crashed or hung worker becomes
//! visible instead of silently indistinguishable from a slow one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::counter::Counter;
use crate::json::JsonObject;

/// Anomalies flagged by the watchdog (and by external monitors such as
/// the `status --watch` journal poller) since process start. Exported as
/// `fades_anomalies_total`.
pub static ANOMALIES: Counter = Counter::new();

/// Process-wide campaign progress, ticked by every
/// [`Recorder`](crate::Recorder). All fields are relaxed atomics; one
/// handle aggregates every campaign the process runs (the `all`
/// regeneration pass is many campaigns back-to-back).
#[derive(Debug)]
pub struct Progress {
    campaigns: AtomicU64,
    total: AtomicU64,
    done: AtomicU64,
    first_activity_us: AtomicU64,
    last_done_us: AtomicU64,
}

static PROGRESS: Progress = Progress {
    campaigns: AtomicU64::new(0),
    total: AtomicU64::new(0),
    done: AtomicU64::new(0),
    first_activity_us: AtomicU64::new(u64::MAX),
    last_done_us: AtomicU64::new(0),
};

/// The process-wide progress handle.
pub fn progress() -> &'static Progress {
    &PROGRESS
}

impl Progress {
    /// Registers a campaign of `expected` experiments starting now.
    pub fn campaign_started(&self, expected: u64) {
        self.campaigns.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(expected, Ordering::Relaxed);
        let now = crate::trace::epoch_us();
        self.first_activity_us.fetch_min(now, Ordering::Relaxed);
        // A fresh campaign re-arms the stall clock even before its first
        // completion (planning and golden capture are legitimate work).
        self.last_done_us.fetch_max(now, Ordering::Relaxed);
    }

    /// Ticks one finished experiment.
    pub fn tick(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.last_done_us
            .fetch_max(crate::trace::epoch_us(), Ordering::Relaxed);
    }

    /// Experiments finished so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Experiments expected across every campaign started so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Campaigns started.
    pub fn campaigns(&self) -> u64 {
        self.campaigns.load(Ordering::Relaxed)
    }

    /// Microseconds (trace-epoch clock) of the last completion or
    /// campaign start — the watchdog's stall reference.
    pub fn last_activity_us(&self) -> u64 {
        self.last_done_us.load(Ordering::Relaxed)
    }
}

/// A derived point-in-time view of campaign health — the `/status`
/// payload.
#[derive(Debug, Clone)]
pub struct StatusSnapshot {
    /// Campaigns started in this process.
    pub campaigns: u64,
    /// Experiments expected.
    pub total: u64,
    /// Experiments finished.
    pub done: u64,
    /// Mean completion rate since the first campaign started (0 until
    /// the first completion).
    pub faults_per_sec: f64,
    /// Estimated seconds to finish the remaining experiments at the mean
    /// rate (`None` before a rate exists or when already done).
    pub eta_s: Option<f64>,
    /// Mean occupied faulty lanes per batch cycle of the lane engine
    /// (0 when the engine has not run).
    pub lane_occupancy: f64,
    /// Fraction of golden-equivalent cycles the fast path skipped:
    /// `skipped / (skipped + executed)`, best-effort (executed cycles
    /// only count while hot-path telemetry is enabled).
    pub fastpath_skip_ratio: f64,
    /// Experiments the static pre-classifier settled without simulation.
    pub static_silent: u64,
    /// Structural lint diagnostics emitted by reporting lint passes.
    pub lint_diagnostics: u64,
    /// Experiments quarantined.
    pub quarantined: u64,
    /// Anomalies flagged.
    pub anomalies: u64,
    /// Seconds since the first campaign activity.
    pub uptime_s: f64,
}

/// Computes the current [`StatusSnapshot`] from [`progress`] and the
/// process counters.
pub fn status_snapshot() -> StatusSnapshot {
    let p = progress();
    let done = p.done();
    let total = p.total();
    let now = crate::trace::epoch_us();
    let first = p.first_activity_us.load(Ordering::Relaxed);
    let elapsed_s = if first == u64::MAX {
        0.0
    } else {
        now.saturating_sub(first) as f64 / 1e6
    };
    let faults_per_sec = if elapsed_s > 0.0 && done > 0 {
        done as f64 / elapsed_s
    } else {
        0.0
    };
    let remaining = total.saturating_sub(done);
    let eta_s = (faults_per_sec > 0.0 && remaining > 0).then(|| remaining as f64 / faults_per_sec);

    let batch_cycles = crate::sim::BATCH_CYCLES.get();
    let lane_occupancy = if batch_cycles > 0 {
        crate::sim::LANE_CYCLES.get() as f64 / batch_cycles as f64
    } else {
        0.0
    };
    let skipped = crate::fastpath::PREFIX_CYCLES_SKIPPED.get()
        + crate::fastpath::EARLY_STOP_CYCLES_SKIPPED.get();
    let executed = crate::sim::CYCLES.get() + batch_cycles;
    let fastpath_skip_ratio = if skipped > 0 {
        skipped as f64 / (skipped + executed) as f64
    } else {
        0.0
    };

    StatusSnapshot {
        campaigns: p.campaigns(),
        total,
        done,
        faults_per_sec,
        eta_s,
        lane_occupancy,
        fastpath_skip_ratio,
        static_silent: crate::analysis::STATIC_SILENT.get(),
        lint_diagnostics: crate::analysis::LINT_DIAGNOSTICS.get(),
        quarantined: crate::dispatch::QUARANTINES.get(),
        anomalies: ANOMALIES.get(),
        uptime_s: elapsed_s,
    }
}

impl StatusSnapshot {
    /// Serializes the snapshot as the `/status` JSON document (stable
    /// field order, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("type", "status")
            .u64("campaigns", self.campaigns)
            .u64("experiments_total", self.total)
            .u64("experiments_done", self.done)
            .f64("faults_per_sec", self.faults_per_sec);
        obj = match self.eta_s {
            Some(eta) => obj.f64("eta_s", eta),
            None => obj.raw("eta_s", "null"),
        };
        obj.f64("lane_occupancy", self.lane_occupancy)
            .f64("fastpath_skip_ratio", self.fastpath_skip_ratio)
            .u64("static_silent", self.static_silent)
            .u64("lint_diagnostics", self.lint_diagnostics)
            .u64("quarantined", self.quarantined)
            .u64("anomalies", self.anomalies)
            .f64("uptime_s", self.uptime_s)
            .finish()
    }
}

/// Reports one anomaly: bumps [`ANOMALIES`], prints one stderr line, and
/// appends a structured `anomaly` line to the run log when
/// `FADES_RUN_LOG` is configured (best-effort — a failing run log never
/// suppresses the in-process signal).
///
/// `kind` is a stable machine-readable tag (`"stall"`,
/// `"lane-occupancy-collapse"`, `"quarantine-rate"`, ...); `detail` is
/// the human explanation.
pub fn report_anomaly(kind: &str, detail: &str) {
    ANOMALIES.inc();
    eprintln!("[fades-monitor] anomaly {kind}: {detail}");
    if let Some(path) = crate::runlog::run_log_path() {
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let line = JsonObject::new()
            .str("type", "anomaly")
            .str("kind", kind)
            .str("detail", detail)
            .u64("done", progress().done())
            .u64("total", progress().total())
            .u64("at_ms", at_ms)
            .finish();
        let _ = crate::runlog::append_raw_line(&path, &line);
    }
}

/// Watchdog tunables.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// No experiment completion for this long (while work remains) flags
    /// a `stall` anomaly.
    pub deadline: Duration,
    /// Sampling interval (defaults to `deadline / 4`, clamped to
    /// [10 ms, 1 s]).
    pub interval: Duration,
    /// Quarantined experiments above this percentage of settled
    /// experiments (and at least 3 absolute) flag a `quarantine-rate`
    /// anomaly.
    pub max_quarantine_pct: f64,
    /// Windowed lane occupancy below this fraction of its observed peak
    /// (while batch cycles still advance) flags a
    /// `lane-occupancy-collapse` anomaly.
    pub occupancy_collapse: f64,
}

impl WatchdogConfig {
    /// A config with the given stall deadline and default thresholds.
    pub fn with_deadline(deadline: Duration) -> Self {
        let interval = (deadline / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        WatchdogConfig {
            deadline,
            interval,
            max_quarantine_pct: 10.0,
            occupancy_collapse: 0.25,
        }
    }

    /// Builds the config from the environment: `FADES_WATCHDOG_MS`
    /// (stall deadline, presence enables the watchdog),
    /// `FADES_WATCHDOG_QUAR_PCT` and `FADES_WATCHDOG_OCC` overriding the
    /// thresholds. Returns `None` when `FADES_WATCHDOG_MS` is unset,
    /// empty or unparsable.
    pub fn from_env() -> Option<Self> {
        let ms: u64 = std::env::var("FADES_WATCHDOG_MS").ok()?.parse().ok()?;
        let mut cfg = Self::with_deadline(Duration::from_millis(ms.max(1)));
        if let Some(pct) = std::env::var("FADES_WATCHDOG_QUAR_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_quarantine_pct = pct;
        }
        if let Some(occ) = std::env::var("FADES_WATCHDOG_OCC")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.occupancy_collapse = occ;
        }
        Some(cfg)
    }
}

/// A running watchdog thread. Dropping the handle stops the thread (the
/// next sample notices and exits); [`stop`](WatchdogHandle::stop) stops
/// and joins it deterministically.
#[derive(Debug)]
pub struct WatchdogHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogHandle {
    /// Signals the watchdog to exit and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the watchdog thread with `cfg`. The watchdog is best-effort
/// observability: if the OS refuses the thread, the returned handle is
/// inert rather than the campaign failing.
pub fn start_watchdog(cfg: WatchdogConfig) -> WatchdogHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("fades-watchdog".into())
        .spawn(move || watchdog_loop(cfg, &stop_flag))
        .ok();
    WatchdogHandle { stop, thread }
}

/// [`start_watchdog`] from [`WatchdogConfig::from_env`]; `None` when the
/// environment does not enable it.
pub fn start_watchdog_from_env() -> Option<WatchdogHandle> {
    WatchdogConfig::from_env().map(start_watchdog)
}

fn watchdog_loop(cfg: WatchdogConfig, stop: &AtomicBool) {
    let deadline_us = cfg.deadline.as_micros() as u64;
    let mut stall_flagged = false;
    let mut quarantine_flagged = false;
    let mut occupancy_flagged = false;
    let mut last_done = progress().done();
    let mut last_lane = crate::sim::LANE_CYCLES.get();
    let mut last_batch = crate::sim::BATCH_CYCLES.get();
    let mut peak_window_occupancy = 0.0f64;

    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(cfg.interval);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let p = progress();
        let done = p.done();
        let total = p.total();

        // Stall: work remains but nothing completed within the deadline.
        if done != last_done {
            last_done = done;
            stall_flagged = false;
        } else if !stall_flagged && total > done && p.last_activity_us() > 0 {
            let idle_us = crate::trace::epoch_us().saturating_sub(p.last_activity_us());
            if idle_us >= deadline_us {
                report_anomaly(
                    "stall",
                    &format!(
                        "no experiment completion for {:.1}s ({done}/{total} done)",
                        idle_us as f64 / 1e6
                    ),
                );
                stall_flagged = true;
            }
        }

        // Quarantine rate: too much of the campaign is being set aside.
        let quarantined = crate::dispatch::QUARANTINES.get();
        let settled = done + quarantined;
        if !quarantine_flagged
            && quarantined >= 3
            && settled > 0
            && quarantined as f64 * 100.0 > cfg.max_quarantine_pct * settled as f64
        {
            report_anomaly(
                "quarantine-rate",
                &format!(
                    "{quarantined} of {settled} settled experiments quarantined \
                     (> {:.1}% threshold)",
                    cfg.max_quarantine_pct
                ),
            );
            quarantine_flagged = true;
        }

        // Lane occupancy collapse: the engine still cycles but its lanes
        // have emptied out far below the peak of this run.
        let lane = crate::sim::LANE_CYCLES.get();
        let batch = crate::sim::BATCH_CYCLES.get();
        let (d_lane, d_batch) = (lane - last_lane, batch - last_batch);
        last_lane = lane;
        last_batch = batch;
        if d_batch > 0 {
            let occupancy = d_lane as f64 / d_batch as f64;
            if occupancy > peak_window_occupancy {
                peak_window_occupancy = occupancy;
                occupancy_flagged = false;
            } else if !occupancy_flagged
                && peak_window_occupancy >= 4.0
                && occupancy < cfg.occupancy_collapse * peak_window_occupancy
            {
                report_anomaly(
                    "lane-occupancy-collapse",
                    &format!(
                        "mean lane occupancy {occupancy:.1} fell below {:.0}% of peak {:.1}",
                        cfg.occupancy_collapse * 100.0,
                        peak_window_occupancy
                    ),
                );
                occupancy_flagged = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Progress and the counters are process-global (other tests tick
    // them too), so every assertion here is relative.

    #[test]
    fn progress_ticks_feed_status_snapshot() {
        let before = status_snapshot();
        progress().campaign_started(10);
        for _ in 0..4 {
            progress().tick();
        }
        let after = status_snapshot();
        assert_eq!(after.total, before.total + 10);
        assert_eq!(after.done, before.done + 4);
        assert!(after.campaigns > before.campaigns);
        let v = crate::json::parse(&after.to_json()).expect("status JSON parses");
        assert_eq!(
            v.get("experiments_done")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(after.done)
        );
        assert_eq!(v.get("type").and_then(|x| x.as_str()), Some("status"));
    }

    #[test]
    fn watchdog_flags_a_stall_within_the_deadline() {
        // Leave work outstanding, then give the watchdog a tiny deadline.
        progress().campaign_started(1_000_000);
        let before = ANOMALIES.get();
        let cfg = WatchdogConfig::with_deadline(Duration::from_millis(30));
        let handle = start_watchdog(cfg);
        let t0 = std::time::Instant::now();
        while ANOMALIES.get() == before && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        assert!(ANOMALIES.get() > before, "stall anomaly flagged");
    }

    #[test]
    fn watchdog_config_from_env_requires_the_deadline() {
        // Does not touch the real environment: just the default shape.
        let cfg = WatchdogConfig::with_deadline(Duration::from_secs(2));
        assert_eq!(cfg.interval, Duration::from_millis(500));
        assert!(cfg.max_quarantine_pct > 0.0);
        assert!(cfg.occupancy_collapse > 0.0 && cfg.occupancy_collapse < 1.0);
    }
}
