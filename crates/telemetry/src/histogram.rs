//! Fixed-bucket log₂ histogram for latency-style values.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `b` holds values whose bit width is `b`,
/// i.e. `[2^(b-1), 2^b)` (bucket 0 holds exactly the value 0). Covers the
/// full `u64` range.
pub const BUCKETS: usize = 65;

/// A lock-free latency histogram with logarithmic buckets.
///
/// `record` is a handful of relaxed atomic RMWs, safe to call from many
/// threads concurrently; percentile readout happens on a cheap
/// [`HistogramSnapshot`]. Values are typically microseconds but the
/// histogram is unit-agnostic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of a value: its bit width.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the histogram to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for readout. (Individual loads
    /// are relaxed; concurrent recording can skew a snapshot by the few
    /// in-flight values, which is irrelevant for reporting.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, with percentile readout.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, resolved to the midpoint of the
    /// containing log₂ bucket and clamped to the observed min/max. Within
    /// a factor of √2 of the true quantile, which is the trade the
    /// fixed-bucket design makes for lock-freedom.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if b == 0 {
                    0
                } else {
                    // Bucket b covers [2^(b-1), 2^b): midpoint 1.5·2^(b-1).
                    let lo = 1u64 << (b - 1);
                    lo + lo / 2
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another snapshot into this one (cross-thread aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_width() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        // log2 buckets: estimates are within a factor of 2 of truth.
        let p50 = s.p50() as f64;
        assert!((250.0..=1000.0).contains(&p50), "p50 estimate {p50}");
        assert!(s.p90() >= s.p50());
        assert!(s.p99() >= s.p90());
        assert!(s.p99() <= 1000);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn quantiles_of_point_mass() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.snapshot();
        // Clamped to observed min == max == 42: exact.
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p99(), 42);
        assert_eq!(s.max(), 42);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 8000);
    }

    #[test]
    fn exact_log2_boundaries_split_into_adjacent_buckets() {
        // Bucket b covers [2^(b-1), 2^b): a power of two starts a new
        // bucket, and the value one below it ends the previous one.
        for k in 1..63 {
            let pow = 1u64 << k;
            assert_eq!(
                Histogram::bucket_of(pow),
                k + 1,
                "2^{k} opens bucket {}",
                k + 1
            );
            assert_eq!(
                Histogram::bucket_of(pow - 1),
                k,
                "2^{k}-1 closes bucket {k}"
            );
        }
        let h = Histogram::new();
        h.record(1 << 10); // bucket 11
        h.record((1 << 10) - 1); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), 1023);
        assert_eq!(s.max(), 1024);
    }

    #[test]
    fn u64_max_saturates_into_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        // The bucket midpoint would overflow naively; the clamp to the
        // observed extrema keeps the quantile exact here.
        assert_eq!(s.p50(), u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p90(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn quantiles_on_single_sample_return_that_sample() {
        for v in [0u64, 1, 7, 4096, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.p50(), v, "p50 of single sample {v}");
            assert_eq!(s.p90(), v, "p90 of single sample {v}");
            assert_eq!(s.p99(), v, "p99 of single sample {v}");
            assert_eq!(s.min(), v);
            assert_eq!(s.max(), v);
        }
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.sum(), 1010);
    }
}
