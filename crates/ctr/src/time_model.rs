//! CTR execution-time model.

use fades_netlist::Netlist;

/// Models the wall-clock cost of compile-time-reconfiguration fault
/// emulation.
///
/// The on-the-fly part of CTR is nearly free (activating a saboteur is a
/// pin wiggle); the cost is the synthesis-and-implementation run required
/// for every instrumented model version (paper §7.3). Vendor
/// implementation time scales with design size; the default constant
/// models the several minutes a 2006-era flow took for a design of the
/// 8051's size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrTimeModel {
    /// Implementation (synthesis + map + place-and-route) seconds per
    /// netlist cell.
    pub implement_s_per_cell: f64,
    /// Bitstream download seconds per instrumented version.
    pub download_s: f64,
    /// FPGA clock period in seconds (workload execution).
    pub clock_period_s: f64,
}

impl CtrTimeModel {
    /// Default calibration: a ~1850-cell model implements in roughly two
    /// minutes, as 2006-era vendor flows did.
    pub fn paper_era() -> Self {
        CtrTimeModel {
            implement_s_per_cell: 0.065,
            download_s: 0.4,
            clock_period_s: 80e-9,
        }
    }

    /// Seconds to produce one instrumented implementation.
    pub fn implementation_seconds(&self, netlist: &Netlist) -> f64 {
        netlist.cell_count() as f64 * self.implement_s_per_cell + self.download_s
    }

    /// Seconds to execute one experiment once the version is implemented.
    pub fn execution_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.clock_period_s
    }
}
