//! CTR campaign runner: instrument → implement → execute, per target.

use std::collections::HashMap;

use fades_core::{CoreError, DurationRange, Outcome, OutcomeStats};
use fades_fpga::{ArchParams, Device};
use fades_netlist::{Cell, NetId, Netlist, OutputTrace};
use fades_pnr::implement;
use fades_telemetry::{span, ExperimentRecord, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::saboteur::{instrument, SABOTEUR_PORT};
use crate::time_model::CtrTimeModel;

/// Aggregated results of a CTR campaign.
#[derive(Debug, Clone, Default)]
pub struct CtrStats {
    /// Outcome counts.
    pub outcomes: OutcomeStats,
    /// Modelled implementation time (the dominant CTR cost).
    pub implementation_seconds: f64,
    /// Modelled on-device execution time.
    pub execution_seconds: f64,
    /// Distinct instrumented versions implemented.
    pub versions: usize,
    /// Experiments executed.
    pub n: usize,
}

impl CtrStats {
    /// Total modelled seconds.
    pub fn total_seconds(&self) -> f64 {
        self.implementation_seconds + self.execution_seconds
    }

    /// Mean modelled seconds per fault.
    pub fn mean_seconds_per_fault(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_seconds() / self.n as f64
        }
    }
}

/// A compile-time-reconfiguration campaign over an HDL model.
///
/// Pulse faults only (the saboteur is an inverter): each distinct target
/// requires its own instrumented implementation, which is exactly the
/// cost structure the paper's §7.3 argues against for large systems.
#[derive(Debug)]
pub struct CtrCampaign<'n> {
    netlist: &'n Netlist,
    arch: ArchParams,
    ports: Vec<String>,
    run_cycles: u64,
    golden_trace: OutputTrace,
    golden_state_len: usize,
    time_model: CtrTimeModel,
}

impl<'n> CtrCampaign<'n> {
    /// Prepares a campaign: implements the *uninstrumented* design once
    /// and captures its golden run.
    ///
    /// # Errors
    ///
    /// Propagates implementation and configuration errors.
    pub fn new(
        netlist: &'n Netlist,
        arch: ArchParams,
        observed_ports: &[&str],
        workload_cycles: u64,
    ) -> Result<Self, CoreError> {
        let ports: Vec<String> = observed_ports
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let run_cycles = workload_cycles + 64;
        let imp = implement(netlist, arch).map_err(|e| CoreError::Implementation(e.to_string()))?;
        let mut dev = Device::configure(imp.bitstream)?;
        let mut trace = OutputTrace::new(ports.clone());
        for _ in 0..run_cycles {
            dev.settle();
            let mut row = Vec::with_capacity(ports.len());
            for p in &ports {
                row.push(
                    dev.output_u64(p)
                        .map_err(|_| CoreError::UnknownPort(p.clone()))?,
                );
            }
            trace.push_cycle(row);
            dev.clock_edge();
        }
        let golden_state_len = dev.state_snapshot().len();
        Ok(CtrCampaign {
            netlist,
            arch,
            ports,
            run_cycles,
            golden_trace: trace,
            golden_state_len,
            time_model: CtrTimeModel::paper_era(),
        })
    }

    /// The time model used for reporting.
    pub fn time_model(&self) -> &CtrTimeModel {
        &self.time_model
    }

    /// Runs `n_faults` pulse experiments on combinational signals.
    ///
    /// Distinct targets are instrumented and implemented once each and the
    /// version is reused for repeated hits — the most charitable CTR cost
    /// accounting.
    ///
    /// # Errors
    ///
    /// Propagates instrumentation, implementation and execution errors.
    pub fn run(
        &self,
        duration: DurationRange,
        n_faults: usize,
        seed: u64,
    ) -> Result<CtrStats, CoreError> {
        let targets: Vec<NetId> = self
            .netlist
            .cells()
            .iter()
            .filter(|c| matches!(c, Cell::Lut(_)))
            .flat_map(fades_netlist::Cell::outputs)
            .collect();
        if targets.is_empty() {
            return Err(CoreError::EmptyTargetSet("combinational signals".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = CtrStats {
            n: n_faults,
            ..Default::default()
        };
        // CTR is inherently sequential: each new target blocks on its
        // instrumented implementation before any experiment can run.
        let recorder = Recorder::new("ctr saboteur", n_faults, 1);
        let handle = recorder.handle();
        // Cache of instrumented versions: target net -> configured device.
        let mut versions: HashMap<NetId, Device> = HashMap::new();
        for i in 0..n_faults {
            let started = std::time::Instant::now();
            let mut modelled = 0.0;
            let target = targets[rng.gen_range(0..targets.len())];
            let inject_at = rng.gen_range(0..self.run_cycles - 64);
            let dur = duration.sample(&mut rng).unwrap_or(self.run_cycles);
            if let std::collections::hash_map::Entry::Vacant(slot) = versions.entry(target) {
                let _implement_span = span!("ctr-implement");
                let inst = instrument(self.netlist, target)?;
                let imp = implement(&inst, self.arch)
                    .map_err(|e| CoreError::Implementation(e.to_string()))?;
                let impl_s = self.time_model.implementation_seconds(&inst);
                stats.implementation_seconds += impl_s;
                modelled += impl_s;
                stats.versions += 1;
                slot.insert(Device::configure(imp.bitstream)?);
            }
            let dev = versions
                .get_mut(&target)
                .unwrap_or_else(|| unreachable!("version cached above"));
            let outcome = {
                let _execute_span = span!("ctr-execute");
                self.run_one(dev, inject_at, dur)?
            };
            stats.outcomes.record(outcome);
            let exec_s = self.time_model.execution_seconds(self.run_cycles);
            stats.execution_seconds += exec_s;
            modelled += exec_s;
            handle.record(ExperimentRecord {
                index: i as u64,
                target: "combinational signals".to_string(),
                strategy: "ctr-saboteur-pulse".to_string(),
                outcome: outcome.as_str(),
                modelled_s: modelled,
                wall_us: started.elapsed().as_micros() as u64,
                ..Default::default()
            });
        }
        drop(handle);
        recorder.finish();
        Ok(stats)
    }

    fn run_one(
        &self,
        dev: &mut Device,
        inject_at: u64,
        duration: u64,
    ) -> Result<Outcome, CoreError> {
        dev.reset();
        let mut trace = OutputTrace::new(self.ports.clone());
        for cycle in 0..self.run_cycles {
            let active = cycle >= inject_at && cycle < inject_at + duration;
            dev.set_input(SABOTEUR_PORT, &[active])?;
            dev.settle();
            let mut row = Vec::with_capacity(self.ports.len());
            for p in &self.ports {
                row.push(
                    dev.output_u64(p)
                        .map_err(|_| CoreError::UnknownPort(p.clone()))?,
                );
            }
            trace.push_cycle(row);
            dev.clock_edge();
        }
        // The instrumented device has one extra FF-free LUT, so its raw
        // snapshot length matches the original's (saboteurs add no state);
        // compare lengths defensively anyway.
        let state = dev.state_snapshot();
        let outcome = if !trace.diff(&self.golden_trace).identical() {
            Outcome::Failure
        } else if state.len() != self.golden_state_len {
            Outcome::Latent
        } else {
            // Without a matching golden snapshot of the instrumented
            // variant, re-run the variant fault-free and compare.
            dev.reset();
            for _ in 0..self.run_cycles {
                dev.set_input(SABOTEUR_PORT, &[false])?;
                dev.step();
            }
            if dev.state_snapshot() == state {
                Outcome::Silent
            } else {
                Outcome::Latent
            }
        };
        Ok(outcome)
    }
}
