//! Compile-time-reconfiguration (CTR) baseline.
//!
//! The paper's §7.3 contrasts two FPGA-based fault-emulation techniques:
//!
//! * **RTR** (the paper's contribution, `fades-core`): one implementation
//!   of the model; each fault is injected by reconfiguring the running
//!   device. Reconfiguration is comparatively slow, implementation happens
//!   once.
//! * **CTR** (Civera et al.): the HDL model is *instrumented* with
//!   saboteur logic that can produce the fault, then synthesised and
//!   implemented. On-the-fly activation is nearly free — but every change
//!   of the instrumented fault set costs a full implementation run, "a
//!   great amount of time to implement instrumented versions".
//!
//! This crate implements the CTR technique honestly: [`instrument`]
//! splices an inversion saboteur into the netlist (a LUT XOR-ing the
//! target net with an enable port), [`CtrCampaign`] re-instruments,
//! re-implements and re-configures per target, and [`CtrTimeModel`]
//! accounts the per-variant implementation cost that dominates CTR. The
//! `ablation_rtr_vs_ctr` bench and the Table 2 discussion reproduce the
//! paper's conclusion: for fault emulation in large systems, RTR wins by
//! requiring only one implementation.
//!
//! # Example
//!
//! ```
//! use fades_ctr::{instrument, SABOTEUR_PORT};
//! use fades_netlist::{NetlistBuilder, Simulator};
//!
//! let mut b = NetlistBuilder::new("buf");
//! let a = b.input("a", 1)[0];
//! let n = b.not(a);
//! b.output("y", &[n]);
//! let netlist = b.finish()?;
//!
//! // Instrument the inverter's output with a saboteur.
//! let faulty = instrument(&netlist, n)?;
//! let mut sim = Simulator::new(&faulty)?;
//! sim.set_input("a", &[false])?;
//! sim.set_input(SABOTEUR_PORT, &[true])?; // activate the fault
//! sim.settle();
//! assert_eq!(sim.output_u64("y")?, 0); // inverted by the saboteur
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod campaign;
mod saboteur;
mod time_model;

pub use campaign::{CtrCampaign, CtrStats};
pub use saboteur::{instrument, SABOTEUR_PORT};
pub use time_model::CtrTimeModel;
