//! Saboteur instrumentation of netlists.

use fades_netlist::{NetId, Netlist, NetlistBuilder, NetlistError};

/// Name of the input port controlling the saboteur.
pub const SABOTEUR_PORT: &str = "ctr_saboteur_en";

/// Instruments a netlist with an inversion saboteur on `target`.
///
/// All readers of the target net are rewired to a new net computed as
/// `target XOR enable`, where `enable` is a fresh primary input named
/// [`SABOTEUR_PORT`]. While the enable is low the instrumented model is
/// functionally identical to the original (modulo one extra LUT delay on
/// the target path); raising it for the fault window emulates a pulse,
/// keeping it raised a stuck-at inversion.
///
/// # Errors
///
/// Propagates netlist reconstruction errors.
pub fn instrument(netlist: &Netlist, target: NetId) -> Result<Netlist, NetlistError> {
    let mut b = NetlistBuilder::from_netlist(netlist);
    let spliced = b.fresh_net();
    b.rewire_readers(target, spliced);
    let enable = b.input(SABOTEUR_PORT, 1)[0];
    // spliced = target XOR enable.
    b.lut_raw_into([Some(target), Some(enable), None, None], 0x6666, spliced);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fades_netlist::Simulator;

    #[test]
    fn disabled_saboteur_preserves_behaviour() {
        let mut b = NetlistBuilder::new("cnt");
        let (q0, h0) = b.dff_placeholder("c[0]", false);
        let d0 = b.not(q0);
        b.dff_connect(h0, d0);
        b.output("q", &[q0]);
        let nl = b.finish().unwrap();
        let faulty = instrument(&nl, d0).unwrap();

        let mut clean = Simulator::new(&nl).unwrap();
        let mut inst = Simulator::new(&faulty).unwrap();
        inst.set_input(SABOTEUR_PORT, &[false]).unwrap();
        for _ in 0..10 {
            clean.settle();
            inst.settle();
            assert_eq!(
                clean.output_u64("q").unwrap(),
                inst.output_u64("q").unwrap()
            );
            clean.clock_edge();
            inst.clock_edge();
        }
    }

    #[test]
    fn enabled_saboteur_inverts_the_target() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 1)[0];
        let n = b.not(a);
        let m = b.not(n);
        b.output("y", &[m]);
        let nl = b.finish().unwrap();
        let faulty = instrument(&nl, n).unwrap();
        let mut sim = Simulator::new(&faulty).unwrap();
        sim.set_input("a", &[true]).unwrap();
        sim.set_input(SABOTEUR_PORT, &[true]).unwrap();
        sim.settle();
        // y = !!a normally (=1); with n inverted, y = 0.
        assert_eq!(sim.output_u64("y").unwrap(), 0);
    }
}
