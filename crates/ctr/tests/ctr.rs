//! Integration tests for the CTR baseline.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_core::DurationRange;
use fades_ctr::{CtrCampaign, CtrTimeModel};
use fades_fpga::ArchParams;
use fades_rtl::RtlBuilder;

fn lfsr() -> fades_netlist::Netlist {
    let mut b = RtlBuilder::new("lfsr");
    let r = b.reg("lfsr", 8, 1);
    let q = r.q().clone();
    let t1 = b.xor_bit(q.bit(7), q.bit(5));
    let t2 = b.xor_bit(q.bit(4), q.bit(3));
    let tap = b.xor_bit(t1, t2);
    let mut bits = vec![tap];
    bits.extend((0..7).map(|i| q.bit(i)));
    let next = fades_rtl::Signal::from_bits(bits);
    b.connect(r, &next);
    b.output("q", &q);
    b.finish().unwrap()
}

#[test]
fn ctr_pulses_cause_failures_like_rtr_pulses() {
    let nl = lfsr();
    let campaign = CtrCampaign::new(&nl, ArchParams::small(), &["q"], 150).unwrap();
    let stats = campaign.run(DurationRange::SHORT, 12, 5).unwrap();
    assert_eq!(stats.n, 12);
    assert!(
        stats.outcomes.failures > 0,
        "pulses into LFSR feedback must cause failures: {:?}",
        stats.outcomes
    );
}

#[test]
fn ctr_implementation_time_dominates_and_scales_with_versions() {
    let nl = lfsr();
    let campaign = CtrCampaign::new(&nl, ArchParams::small(), &["q"], 100).unwrap();
    let stats = campaign.run(DurationRange::SubCycle, 10, 3).unwrap();
    assert!(stats.versions >= 2, "several distinct targets get hit");
    assert!(
        stats.implementation_seconds > 10.0 * stats.execution_seconds,
        "implementation dominates: {} vs {}",
        stats.implementation_seconds,
        stats.execution_seconds
    );
    // Repeated targets reuse versions: never more versions than faults.
    assert!(stats.versions <= stats.n);
}

#[test]
fn ctr_is_slower_than_rtr_for_this_model_size() {
    // The paper's §7.3 conclusion, quantified: per-fault CTR cost (an
    // implementation run for most faults) exceeds the per-fault RTR
    // reconfiguration cost by orders of magnitude.
    let nl = lfsr();
    let ctr_model = CtrTimeModel::paper_era();
    let per_version = ctr_model.implementation_seconds(&nl);
    // RTR pulse on the same model: about 3 operations at ~0.08 s plus a
    // few frames — well under a second (see fades-core's time model).
    assert!(
        per_version > 1.0,
        "implementation costs seconds: {per_version}"
    );
}
