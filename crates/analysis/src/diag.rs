//! Structured lint diagnostics.

use std::fmt;

use fades_telemetry::json::JsonObject;

/// How serious a [`Diagnostic`] is.
///
/// `Error` means the design should not be campaigned against (the
/// dispatch and service layers refuse such designs); `Warning` flags
/// structure that is almost certainly unintended but harmless to
/// emulate; `Info` is inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Inventory and statistics.
    Info,
    /// Suspicious structure; campaigns still run.
    Warning,
    /// Structurally broken design; campaign gates reject it.
    Error,
}

impl Severity {
    /// Stable lower-case name (`info` / `warning` / `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the structural linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// The site the finding anchors to (a CB coordinate, wire id, memory
    /// block name or `design` for whole-design findings).
    pub site: String,
    /// Stable machine-readable rule name (`comb-cycle`, `dead-ff`, ...).
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        severity: Severity,
        site: impl Into<String>,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            site: site.into(),
            rule,
            message: message.into(),
        }
    }

    /// Serializes the diagnostic as a JSON object (stable field order).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("severity", self.severity.as_str())
            .str("site", &self.site)
            .str("rule", self.rule)
            .str("message", &self.message)
            .finish()
    }

    /// Serializes the diagnostic as a structured run-log line
    /// (`{"type":"lint","design":...}`) so gates can surface findings in
    /// `FADES_RUN_LOG` next to experiment and anomaly records.
    pub fn to_runlog_json(&self, design: &str) -> String {
        JsonObject::new()
            .str("type", "lint")
            .str("design", design)
            .str("severity", self.severity.as_str())
            .str("site", &self.site)
            .str("rule", self.rule)
            .str("message", &self.message)
            .finish()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.site, self.message
        )
    }
}

/// The highest severity present in a diagnostic list, if any.
pub(crate) fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let d = Diagnostic::new(Severity::Warning, "cb(1,2)", "dead-ff", "never observed");
        assert_eq!(d.to_string(), "warning[dead-ff] cb(1,2): never observed");
        let parsed = fades_telemetry::json::parse(&d.to_json()).expect("diag JSON parses");
        assert_eq!(parsed.get("rule").and_then(|v| v.as_str()), Some("dead-ff"));
    }
}
