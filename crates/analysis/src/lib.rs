//! Static analysis over implemented FADES designs.
//!
//! Everything in this crate runs *before* any experiment executes, on the
//! pristine [`Bitstream`](fades_fpga::Bitstream) the implementation flow
//! produced:
//!
//! * [`lint`] — a structural linter over the placed design: combinational
//!   cycles, floating LUTs, dangling nets, constant truth tables, dead
//!   flip-flops, unused-site inventory and lane-engine obstacles, each
//!   reported as a structured [`Diagnostic`].
//! * [`ConeIndex`] — the cone-of-influence index behind the static fault
//!   pre-classifier: for every wire of the design it answers whether a
//!   value change on that wire can ever reach the observation frontier.
//!   `fades-core` uses it at plan time to mark faults in provably dead
//!   logic as statically Silent, so campaign engines can skip their
//!   simulation while still charging the exact modelled reconfiguration
//!   traffic a real execution would have produced.
//!
//! The crate is std-only and pure: no I/O, no randomness, deterministic
//! output for a given bitstream regardless of thread count.

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod cone;
mod diag;
mod lint;

pub use cone::ConeIndex;
pub use diag::{Diagnostic, Severity};
pub use lint::{lint, lint_quiet, worst};
