//! Cone-of-influence liveness over a configured bitstream.
//!
//! The index answers, per wire, "can a value change here ever reach the
//! observation frontier?" — computed once per design by backward
//! propagation from the frontier to a fixpoint, in two flavours:
//!
//! * **Combinational** ([`ConeIndex::combinational`]) — the frontier is
//!   the campaign's *observed* output ports plus every stateful capture
//!   point (any used flip-flop data input, any memory-block pin). This is
//!   the pre-classifier's notion of liveness: a wire that is dead here
//!   cannot alter an observed trace row *or* any sequential state, so a
//!   transient on it is provably Silent.
//! * **Sequential** ([`ConeIndex::sequential`]) — flip-flops pass
//!   liveness through (a D input only matters if that flip-flop's Q cone
//!   is itself live) and the frontier is every *declared* output port
//!   plus the memory blocks. This is the linter's notion of dead state:
//!   a register whose value can never, in any number of cycles, reach an
//!   output or a memory.
//!
//! Both are conservative in the safe direction: anything the analysis is
//! unsure about is treated as live (and therefore executed normally).

use fades_fpga::{Bitstream, CbCoord, FfDSrc, WireDriver, WireId, WireSink};

/// Per-design liveness index (see the module docs).
#[derive(Debug, Clone)]
pub struct ConeIndex {
    rows: u16,
    cols: u16,
    live: Vec<bool>,
    ff_dead: Vec<bool>,
    lut_dead: Vec<bool>,
}

impl ConeIndex {
    /// Builds the combinational index against the given observed output
    /// ports (port *names*; names that match no declared output are
    /// ignored — the campaign layer validates ports separately).
    pub fn combinational(bitstream: &Bitstream, observed_ports: &[String]) -> Self {
        let observed: Vec<u32> = bitstream
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, p)| observed_ports.contains(&p.name))
            .map(|(i, _)| i as u32)
            .collect();
        Self::build(bitstream, Some(&observed), false)
    }

    /// Builds the sequential (through-flip-flop) index against every
    /// declared output port.
    pub fn sequential(bitstream: &Bitstream) -> Self {
        Self::build(bitstream, None, true)
    }

    fn build(bitstream: &Bitstream, observed: Option<&[u32]>, through_ffs: bool) -> Self {
        let arch = bitstream.arch();
        let (rows, cols) = (arch.rows, arch.cols);
        let wires = bitstream.wires();
        let cbs = bitstream.cbs();
        let mut lut_out: Vec<Option<u32>> = vec![None; cbs.len()];
        let mut ff_out: Vec<Option<u32>> = vec![None; cbs.len()];
        for (i, w) in wires.iter().enumerate() {
            match w.driver {
                WireDriver::CbLut(cb) => lut_out[cb.flat_index(rows)] = Some(i as u32),
                WireDriver::CbFf(cb) => ff_out[cb.flat_index(rows)] = Some(i as u32),
                _ => {}
            }
        }

        let q_live =
            |flat: usize, live: &[bool]| -> bool { ff_out[flat].is_some_and(|q| live[q as usize]) };
        // Whether a capture into the flip-flop of `flat` counts as a hit:
        // combinationally every capture is one (it lands in the final
        // state snapshot); sequentially only if the captured value can
        // flow onwards through the register's output cone.
        let ff_capture_hits = |flat: usize, live: &[bool]| -> bool {
            if through_ffs {
                q_live(flat, live)
            } else {
                true
            }
        };

        let mut live = vec![false; wires.len()];
        loop {
            let mut changed = false;
            // Reverse order converges faster: output-side wires carry
            // lower... the direction is a heuristic only; the loop runs
            // to a fixpoint either way.
            for i in (0..wires.len()).rev() {
                if live[i] {
                    continue;
                }
                let this = WireId::from_index(i);
                let w = &wires[i];
                let mut hit = false;
                // Internal LUT → own-FF feed: reaches the block's FF data
                // input without a routed sink.
                if let WireDriver::CbLut(cb) = w.driver {
                    let flat = cb.flat_index(rows);
                    let cfg = &cbs[flat];
                    if cfg.ff_used
                        && matches!(cfg.ff_d_src, FfDSrc::LutOut)
                        && ff_capture_hits(flat, &live)
                    {
                        hit = true;
                    }
                }
                for sink in &w.sinks {
                    if hit {
                        break;
                    }
                    match *sink {
                        WireSink::LutPin { cb, pin } => {
                            let flat = cb.flat_index(rows);
                            let cfg = &cbs[flat];
                            // Stale sinks (a pin re-connected elsewhere)
                            // are ignored via the config cross-check.
                            if !cfg.lut_used
                                || usize::from(pin) >= cfg.lut_pins.len()
                                || cfg.lut_pins[usize::from(pin)] != Some(this)
                            {
                                continue;
                            }
                            if lut_out[flat].is_some_and(|o| live[o as usize])
                                || (cfg.ff_used
                                    && matches!(cfg.ff_d_src, FfDSrc::LutOut)
                                    && ff_capture_hits(flat, &live))
                            {
                                hit = true;
                            }
                        }
                        WireSink::FfDirect { cb } => {
                            let flat = cb.flat_index(rows);
                            let cfg = &cbs[flat];
                            if cfg.ff_used
                                && matches!(cfg.ff_d_src, FfDSrc::Direct(d) if d == this)
                                && ff_capture_hits(flat, &live)
                            {
                                hit = true;
                            }
                        }
                        WireSink::BramAddr { bram, .. }
                        | WireSink::BramDin { bram, .. }
                        | WireSink::BramWe { bram } => {
                            // Any memory pin is a frontier hit in both
                            // modes (memory contents are final state).
                            if bitstream.bram(bram).is_ok() {
                                hit = true;
                            }
                        }
                        WireSink::PrimaryOutput { port, .. } => {
                            if observed.is_none_or(|obs| obs.contains(&port)) {
                                hit = true;
                            }
                        }
                    }
                }
                if hit {
                    live[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut ff_dead = vec![false; cbs.len()];
        let mut lut_dead = vec![false; cbs.len()];
        for (flat, cfg) in cbs.iter().enumerate() {
            if cfg.ff_used {
                ff_dead[flat] = !q_live(flat, &live);
            }
            if cfg.lut_used {
                let out_live = lut_out[flat].is_some_and(|o| live[o as usize]);
                let feeds_own_ff = cfg.ff_used
                    && matches!(cfg.ff_d_src, FfDSrc::LutOut)
                    && ff_capture_hits(flat, &live);
                lut_dead[flat] = !out_live && !feeds_own_ff;
            }
        }

        ConeIndex {
            rows,
            cols,
            live,
            ff_dead,
            lut_dead,
        }
    }

    fn flat(&self, cb: CbCoord) -> Option<usize> {
        (cb.col < self.cols && cb.row < self.rows).then(|| cb.flat_index(self.rows))
    }

    /// True if a value change on this wire can never reach the frontier.
    /// Unknown wires report as live (safe direction).
    pub fn wire_dead(&self, wire: WireId) -> bool {
        self.live.get(wire.index()).is_some_and(|l| !l)
    }

    /// True if the flip-flop at `cb` is *provably* dead: its output cone
    /// never reaches the frontier. False for coordinates without a used
    /// flip-flop (nothing is proven about them).
    pub fn ff_dead(&self, cb: CbCoord) -> bool {
        self.flat(cb).is_some_and(|f| self.ff_dead[f])
    }

    /// True if the LUT at `cb` is provably dead: its output cone never
    /// reaches the frontier and it does not feed its own block's
    /// flip-flop. False for coordinates without a used LUT.
    pub fn lut_dead(&self, cb: CbCoord) -> bool {
        self.flat(cb).is_some_and(|f| self.lut_dead[f])
    }

    /// Count of used-but-dead flip-flops (linter inventory).
    pub fn dead_ff_count(&self) -> usize {
        self.ff_dead.iter().filter(|d| **d).count()
    }

    /// Dead flip-flop coordinates in column-major order.
    pub fn dead_ffs(&self) -> Vec<CbCoord> {
        self.ff_dead
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(f, _)| CbCoord::from_flat_index(f, self.rows))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fades_fpga::ArchParams;

    /// in → LUT(buf) → FF → out, plus a dead chain: in → FF_d1 → LUT →
    /// FF_d2 whose output drives nothing.
    fn two_chain_design() -> Bitstream {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 1);
        // Live path.
        let live_lut = bs
            .add_lut(
                CbCoord::new(0, 0),
                0xAAAA,
                [Some(input[0]), None, None, None],
            )
            .expect("lut");
        let live_q = bs
            .add_ff(CbCoord::new(0, 1), false, FfDSrc::Direct(live_lut))
            .expect("ff");
        bs.add_output("out", &[live_q]).expect("out");
        // Dead chain.
        let d1_q = bs
            .add_ff(CbCoord::new(1, 0), false, FfDSrc::Direct(input[0]))
            .expect("ff d1");
        let dead_lut = bs
            .add_lut(CbCoord::new(1, 1), 0xAAAA, [Some(d1_q), None, None, None])
            .expect("dead lut");
        let _d2_q = bs
            .add_ff(CbCoord::new(1, 2), false, FfDSrc::Direct(dead_lut))
            .expect("ff d2");
        bs
    }

    #[test]
    fn combinational_liveness_separates_the_chains() {
        let bs = two_chain_design();
        let cone = ConeIndex::combinational(&bs, &["out".to_string()]);
        // The live FF's Q reaches the observed output.
        assert!(!cone.ff_dead(CbCoord::new(0, 1)));
        // d1's Q feeds a LUT that feeds d2's D: combinationally a capture
        // hit, so d1 is NOT combinationally dead...
        assert!(!cone.ff_dead(CbCoord::new(1, 0)));
        // ...but the terminal register drives nothing at all.
        assert!(cone.ff_dead(CbCoord::new(1, 2)));
        assert!(!cone.lut_dead(CbCoord::new(0, 0)));
    }

    #[test]
    fn sequential_liveness_kills_the_whole_dead_chain() {
        let bs = two_chain_design();
        let cone = ConeIndex::sequential(&bs);
        assert!(!cone.ff_dead(CbCoord::new(0, 1)));
        // Through-FF propagation: d1 only feeds d2, and d2 goes nowhere.
        assert!(cone.ff_dead(CbCoord::new(1, 0)));
        assert!(cone.ff_dead(CbCoord::new(1, 2)));
        assert_eq!(cone.dead_ff_count(), 2);
        // The LUT between two dead registers is dead too.
        assert!(cone.lut_dead(CbCoord::new(1, 1)));
    }

    #[test]
    fn unobserved_ports_are_not_a_combinational_frontier() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 1);
        let q = bs
            .add_ff(CbCoord::new(0, 0), false, FfDSrc::Direct(input[0]))
            .expect("ff");
        bs.add_output("debug", &[q]).expect("out");
        let observed = ConeIndex::combinational(&bs, &["debug".to_string()]);
        assert!(!observed.ff_dead(CbCoord::new(0, 0)));
        let unobserved = ConeIndex::combinational(&bs, &[]);
        assert!(unobserved.ff_dead(CbCoord::new(0, 0)));
        // The sequential (lint) view counts every declared port.
        assert!(!ConeIndex::sequential(&bs).ff_dead(CbCoord::new(0, 0)));
    }

    #[test]
    fn bram_pins_are_a_frontier_in_both_modes() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 1);
        let q = bs
            .add_ff(CbCoord::new(0, 0), false, FfDSrc::Direct(input[0]))
            .expect("ff");
        bs.add_bram("m", &[q], &[], None, 4, &[]).expect("bram");
        assert!(!ConeIndex::combinational(&bs, &[]).ff_dead(CbCoord::new(0, 0)));
        assert!(!ConeIndex::sequential(&bs).ff_dead(CbCoord::new(0, 0)));
    }

    #[test]
    fn self_feeding_lut_ff_pair_is_live_only_if_its_q_escapes() {
        // LUT → own FF (LutOut), FF's Q feeds the LUT back: a classic
        // divider bit. With no escape, sequentially dead.
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(0, 0);
        let lut_out = bs.place_lut(cb, 0x5555).expect("lut");
        let q = bs.add_ff(cb, false, FfDSrc::LutOut).expect("ff");
        bs.connect_lut_pin(cb, 0, q).expect("pin");
        assert!(ConeIndex::sequential(&bs).ff_dead(cb));
        // Combinationally the LUT feeds a capture point (its own FF), so
        // the Q wire feeding the LUT pin is a capture hit.
        assert!(!ConeIndex::combinational(&bs, &[]).ff_dead(cb));
        // Give the Q an escape to an output: everything is live.
        let mut escaped = bs.clone();
        escaped.add_output("out", &[q]).expect("out");
        assert!(!ConeIndex::sequential(&escaped).ff_dead(cb));
        let _ = lut_out;
    }
}
