//! Structural linter over a placed-and-routed bitstream.
//!
//! Every rule is a pure function of the pristine configuration — no
//! simulation, no randomness — so two lint passes over the same design
//! always produce the same diagnostics in the same order, regardless of
//! thread count. Rules, in emission order:
//!
//! | rule | severity | finding |
//! |------|----------|---------|
//! | `comb-cycle` | Error | combinational feedback with no flip-flop on the path |
//! | `floating-lut` | Warning | used LUT with no connected input pin |
//! | `constant-lut` | Warning | truth table independent of every connected input |
//! | `insensitive-lut-input` | Info | one connected pin the truth table ignores |
//! | `dead-ff` | Warning | register state that can never reach an output or memory |
//! | `lane-obstacle` | Warning | configuration the lane engine refuses (scalar fallback) |
//! | `dangling-wire` | Info | routed net with no consuming sink |
//! | `unused-sites` | Info | whole-design resource inventory |

use fades_fpga::{lane_obstacles, Bitstream, CbCoord, FfDSrc, WireDriver, WireId, WireSink};

use crate::cone::ConeIndex;
use crate::diag::{Diagnostic, Severity};

/// Lints `bitstream` and records the finding count in
/// `fades_telemetry::analysis::LINT_DIAGNOSTICS`.
pub fn lint(bitstream: &Bitstream) -> Vec<Diagnostic> {
    let diags = lint_quiet(bitstream);
    fades_telemetry::analysis::LINT_DIAGNOSTICS.add(diags.len() as u64);
    diags
}

/// Lints `bitstream` without touching telemetry (for tests and repeated
/// gate checks that should not inflate the counters).
pub fn lint_quiet(bitstream: &Bitstream) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    comb_cycles(bitstream, &mut diags);
    lut_rules(bitstream, &mut diags);
    dead_ffs(bitstream, &mut diags);
    for ob in lane_obstacles(bitstream) {
        let bram = match &ob {
            fades_fpga::LaneObstacle::WordTooWide { bram, .. }
            | fades_fpga::LaneObstacle::StrayBits { bram, .. } => *bram,
        };
        diags.push(Diagnostic::new(
            Severity::Warning,
            format!("bram{}", bram.index()),
            "lane-obstacle",
            format!("{ob}; campaigns fall back to the scalar engine"),
        ));
    }
    dangling_wires(bitstream, &mut diags);
    unused_sites(bitstream, &mut diags);
    diags
}

/// Combinational graph node: a used LUT or a memory block's asynchronous
/// read path (address pins → data outputs, no clock edge in between).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Node {
    Lut(usize),
    Bram(usize),
}

fn comb_cycles(bs: &Bitstream, diags: &mut Vec<Diagnostic>) {
    let rows = bs.arch().rows;
    let cbs = bs.cbs();
    // Dense node numbering: used LUTs first, then memory blocks.
    let mut lut_node: Vec<Option<usize>> = vec![None; cbs.len()];
    let mut nodes: Vec<Node> = Vec::new();
    for (flat, cfg) in cbs.iter().enumerate() {
        if cfg.lut_used {
            lut_node[flat] = Some(nodes.len());
            nodes.push(Node::Lut(flat));
        }
    }
    let bram_base = nodes.len();
    for i in 0..bs.brams().len() {
        nodes.push(Node::Bram(i));
    }

    // Successor edges along combinational paths only. Flip-flop inputs and
    // the memory write pins (din / we) are synchronous and break the path.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let wire_succs = |out: WireId, from: usize, succs: &mut Vec<Vec<usize>>| {
        let Ok(w) = bs.wire(out) else { return };
        for sink in &w.sinks {
            match *sink {
                WireSink::LutPin { cb, pin } => {
                    let flat = cb.flat_index(rows);
                    let cfg = &cbs[flat];
                    if cfg.lut_used && cfg.lut_pins[usize::from(pin)] == Some(out) {
                        if let Some(n) = lut_node[flat] {
                            succs[from].push(n);
                        }
                    }
                }
                WireSink::BramAddr { bram, .. } if bram.index() < bs.brams().len() => {
                    succs[from].push(bram_base + bram.index());
                }
                _ => {}
            }
        }
    };
    for (i, w) in bs.wires().iter().enumerate() {
        let out = WireId::from_index(i);
        match w.driver {
            WireDriver::CbLut(cb) => {
                if let Some(n) = lut_node[cb.flat_index(rows)] {
                    wire_succs(out, n, &mut succs);
                }
            }
            WireDriver::BramDout { bram, .. } if bram.index() < bs.brams().len() => {
                wire_succs(out, bram_base + bram.index(), &mut succs);
            }
            _ => {}
        }
    }

    // Kahn elimination in both directions: nodes surviving the forward
    // pass have an ancestor on a cycle, nodes surviving the backward pass
    // have a descendant on one. The intersection pins the cycle itself.
    let on_cycle = {
        let fwd = kahn_leftover(&succs);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (from, ss) in succs.iter().enumerate() {
            for &to in ss {
                preds[to].push(from);
            }
        }
        let bwd = kahn_leftover(&preds);
        fwd.iter()
            .zip(&bwd)
            .map(|(f, b)| *f && *b)
            .collect::<Vec<bool>>()
    };
    for (n, node) in nodes.iter().enumerate() {
        if !on_cycle[n] {
            continue;
        }
        let site = match node {
            Node::Lut(flat) => {
                let c = CbCoord::from_flat_index(*flat, rows);
                format!("cb({},{})", c.col, c.row)
            }
            Node::Bram(i) => format!("bram{i}"),
        };
        diags.push(Diagnostic::new(
            Severity::Error,
            site,
            "comb-cycle",
            "on a combinational cycle (no flip-flop on the feedback path); \
             settle cannot reach a fixpoint",
        ));
    }
}

/// Kahn's algorithm; returns which nodes were *not* eliminated (i.e. sit
/// downstream of a cycle in the given edge direction).
fn kahn_leftover(succs: &[Vec<usize>]) -> Vec<bool> {
    let mut indeg = vec![0usize; succs.len()];
    for ss in succs {
        for &to in ss {
            indeg[to] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..succs.len()).filter(|&n| indeg[n] == 0).collect();
    let mut leftover = vec![true; succs.len()];
    while let Some(n) = queue.pop() {
        leftover[n] = false;
        for &to in &succs[n] {
            indeg[to] -= 1;
            if indeg[to] == 0 {
                queue.push(to);
            }
        }
    }
    leftover
}

fn lut_rules(bs: &Bitstream, diags: &mut Vec<Diagnostic>) {
    let rows = bs.arch().rows;
    for (flat, cfg) in bs.cbs().iter().enumerate() {
        if !cfg.lut_used {
            continue;
        }
        let c = CbCoord::from_flat_index(flat, rows);
        let site = format!("cb({},{})", c.col, c.row);
        let connected: Vec<usize> = (0..4).filter(|&p| cfg.lut_pins[p].is_some()).collect();
        if connected.is_empty() {
            diags.push(Diagnostic::new(
                Severity::Warning,
                site,
                "floating-lut",
                format!(
                    "used LUT has no connected input pin; output is constant {}",
                    cfg.eval_lut([false; 4])
                ),
            ));
            continue;
        }
        // Exhaust the connected-pin assignments (unconnected pins evaluate
        // false, matching the device model).
        let evals: Vec<bool> = (0..1usize << connected.len())
            .map(|idx| {
                let mut pins = [false; 4];
                for (k, &p) in connected.iter().enumerate() {
                    pins[p] = (idx >> k) & 1 == 1;
                }
                cfg.eval_lut(pins)
            })
            .collect();
        if evals.iter().all(|&v| v == evals[0]) {
            diags.push(Diagnostic::new(
                Severity::Warning,
                site,
                "constant-lut",
                format!(
                    "truth table 0x{:04x} is constant {} over its {} connected input(s)",
                    cfg.lut_table,
                    evals[0],
                    connected.len()
                ),
            ));
            continue;
        }
        for (k, &p) in connected.iter().enumerate() {
            let sensitive = (0..1usize << connected.len())
                .any(|idx| (idx >> k) & 1 == 0 && evals[idx] != evals[idx | (1 << k)]);
            if !sensitive {
                diags.push(Diagnostic::new(
                    Severity::Info,
                    site.clone(),
                    "insensitive-lut-input",
                    format!(
                        "truth table 0x{:04x} ignores connected pin {p}",
                        cfg.lut_table
                    ),
                ));
            }
        }
    }
}

fn dead_ffs(bs: &Bitstream, diags: &mut Vec<Diagnostic>) {
    let cone = ConeIndex::sequential(bs);
    for c in cone.dead_ffs() {
        diags.push(Diagnostic::new(
            Severity::Warning,
            format!("cb({},{})", c.col, c.row),
            "dead-ff",
            "register state can never reach a declared output port or memory block",
        ));
    }
}

fn dangling_wires(bs: &Bitstream, diags: &mut Vec<Diagnostic>) {
    let rows = bs.arch().rows;
    let cbs = bs.cbs();
    for (i, w) in bs.wires().iter().enumerate() {
        let this = WireId::from_index(i);
        // A LUT output wire registered by the block's own flip-flop is
        // consumed without any routed sink.
        if let WireDriver::CbLut(cb) = w.driver {
            let cfg = &cbs[cb.flat_index(rows)];
            if cfg.ff_used && matches!(cfg.ff_d_src, FfDSrc::LutOut) {
                continue;
            }
        }
        let consumed = w.sinks.iter().any(|sink| match *sink {
            WireSink::LutPin { cb, pin } => {
                let cfg = &cbs[cb.flat_index(rows)];
                cfg.lut_used && cfg.lut_pins[usize::from(pin)] == Some(this)
            }
            WireSink::FfDirect { cb } => {
                let cfg = &cbs[cb.flat_index(rows)];
                cfg.ff_used && matches!(cfg.ff_d_src, FfDSrc::Direct(d) if d == this)
            }
            WireSink::BramAddr { bram, .. }
            | WireSink::BramDin { bram, .. }
            | WireSink::BramWe { bram } => bram.index() < bs.brams().len(),
            WireSink::PrimaryOutput { .. } => true,
        });
        if !consumed {
            diags.push(Diagnostic::new(
                Severity::Info,
                format!("wire{i}"),
                "dangling-wire",
                "routed net drives no consuming sink",
            ));
        }
    }
}

fn unused_sites(bs: &Bitstream, diags: &mut Vec<Diagnostic>) {
    let arch = bs.arch();
    let total = usize::from(arch.rows) * usize::from(arch.cols);
    let (luts, ffs, brams) = bs.utilisation();
    let unused = bs.unused_cbs().len();
    diags.push(Diagnostic::new(
        Severity::Info,
        "design",
        "unused-sites",
        format!(
            "{unused} of {total} blocks fully unused ({luts} LUTs, {ffs} FFs in use); \
             {brams} of {} memory blocks in use",
            arch.bram_blocks
        ),
    ));
}

/// The highest severity present in `diags`, if any (re-exported for the
/// campaign gates).
pub fn worst(diags: &[Diagnostic]) -> Option<Severity> {
    crate::diag::max_severity(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fades_fpga::ArchParams;

    fn find<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
        diags.iter().filter(|d| d.rule == rule).collect()
    }

    #[test]
    fn clean_design_has_no_errors() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 1);
        let q = bs
            .add_ff(CbCoord::new(0, 0), false, FfDSrc::Direct(input[0]))
            .expect("ff");
        bs.add_output("out", &[q]).expect("out");
        let diags = lint_quiet(&bs);
        assert_eq!(worst(&diags), Some(Severity::Info), "{diags:?}");
        assert_eq!(find(&diags, "unused-sites").len(), 1);
    }

    #[test]
    fn lut_feedback_without_ff_is_a_comb_cycle_error() {
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(2, 2);
        let out = bs.place_lut(cb, 0x5555).expect("lut");
        bs.connect_lut_pin(cb, 0, out).expect("pin");
        let diags = lint_quiet(&bs);
        let cycles = find(&diags, "comb-cycle");
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].severity, Severity::Error);
        assert_eq!(cycles[0].site, "cb(2,2)");
    }

    #[test]
    fn ff_feedback_is_not_a_comb_cycle() {
        let mut bs = Bitstream::new(ArchParams::small());
        let cb = CbCoord::new(0, 0);
        bs.place_lut(cb, 0x5555).expect("lut");
        let q = bs.add_ff(cb, false, FfDSrc::LutOut).expect("ff");
        bs.connect_lut_pin(cb, 0, q).expect("pin");
        bs.add_output("out", &[q]).expect("out");
        assert!(find(&lint_quiet(&bs), "comb-cycle").is_empty());
    }

    #[test]
    fn constant_and_insensitive_luts_are_flagged() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 2);
        // Table 0x0000: constant false whatever the pins do.
        let c = bs
            .add_lut(
                CbCoord::new(0, 0),
                0x0000,
                [Some(input[0]), None, None, None],
            )
            .expect("lut");
        // Table 0xAAAA: depends on pin 0 only; pin 1 is ignored.
        let s = bs
            .add_lut(
                CbCoord::new(0, 1),
                0xAAAA,
                [Some(input[0]), Some(input[1]), None, None],
            )
            .expect("lut");
        // A completely floating used LUT.
        let f = bs.place_lut(CbCoord::new(0, 2), 0xFFFF).expect("lut");
        bs.add_output("out", &[c, s, f]).expect("out");
        let diags = lint_quiet(&bs);
        assert_eq!(find(&diags, "constant-lut").len(), 1);
        assert_eq!(find(&diags, "constant-lut")[0].site, "cb(0,0)");
        assert_eq!(find(&diags, "insensitive-lut-input").len(), 1);
        assert_eq!(find(&diags, "insensitive-lut-input")[0].site, "cb(0,1)");
        assert_eq!(find(&diags, "floating-lut").len(), 1);
        assert_eq!(find(&diags, "floating-lut")[0].site, "cb(0,2)");
    }

    #[test]
    fn dead_ff_and_dangling_wire_are_reported() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 1);
        let q = bs
            .add_ff(CbCoord::new(1, 1), false, FfDSrc::Direct(input[0]))
            .expect("ff");
        let diags = lint_quiet(&bs);
        assert_eq!(find(&diags, "dead-ff").len(), 1);
        assert_eq!(find(&diags, "dead-ff")[0].site, "cb(1,1)");
        // q drives nothing.
        let dangling = find(&diags, "dangling-wire");
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].site, format!("wire{}", q.index()));
    }

    #[test]
    fn stray_bram_bits_surface_as_a_lane_obstacle_diagnostic() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("a", 2);
        let dout = bs
            .add_bram("m", &[input[0], input[1]], &[], None, 4, &[0x3, 0x1F, 0x2])
            .expect("bram");
        bs.add_output("out", &dout).expect("out");
        let diags = lint_quiet(&bs);
        let obstacles = find(&diags, "lane-obstacle");
        assert_eq!(obstacles.len(), 1);
        assert_eq!(obstacles[0].site, "bram0");
        assert!(
            obstacles[0].message.contains("[1]"),
            "names the offending word: {}",
            obstacles[0].message
        );
    }

    #[test]
    fn lint_is_deterministic() {
        let mut bs = Bitstream::new(ArchParams::small());
        let input = bs.add_input("in", 4);
        for k in 0..4u16 {
            bs.add_ff(
                CbCoord::new(k, 0),
                false,
                FfDSrc::Direct(input[usize::from(k)]),
            )
            .expect("ff");
        }
        let first = lint_quiet(&bs);
        for _ in 0..10 {
            assert_eq!(lint_quiet(&bs), first);
        }
    }
}
