//! Net identifiers and port directions.

use std::fmt;

/// Identifier of a single-bit net within a [`crate::Netlist`].
///
/// Nets connect cell outputs (or primary inputs) to cell inputs (or primary
/// outputs). Every net has exactly one driver; multi-bit signals are
/// represented as slices of `NetId` (least-significant bit first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the raw index of this net.
    ///
    /// Indices are dense: a netlist with `n` nets uses indices `0..n`, which
    /// makes `NetId` suitable as a key into flat side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NetId` from a raw index.
    ///
    /// This is intended for tools (place-and-route, fault locators) that
    /// build side tables indexed by net. Using an index that is out of range
    /// for the target netlist causes lookups to fail, not undefined
    /// behaviour.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of a primary port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside the circuit.
    Input,
    /// Observed from outside the circuit.
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::Input => f.write_str("input"),
            PortDir::Output => f.write_str("output"),
        }
    }
}
