//! LUT-level netlist intermediate representation.
//!
//! This crate is the "HDL model" substrate of the FADES reproduction. A
//! [`Netlist`] is a technology-mapped description of a digital circuit in
//! terms of the primitives a generic FPGA offers:
//!
//! * 4-input look-up tables ([`LutCell`]),
//! * D-type flip-flops ([`DffCell`]),
//! * RAM/ROM memory blocks ([`RamCell`]),
//! * primary input and output ports.
//!
//! Netlists are constructed through [`NetlistBuilder`], which synthesises
//! word-level logic operators down to LUTs on the fly, and can be
//!
//! * executed directly by the cycle-accurate [`Simulator`] (this is what the
//!   VFIT-analogue baseline does, and what golden runs use), or
//! * placed-and-routed onto the simulated FPGA by the `fades-pnr` crate and
//!   executed from its configuration memory (this is what FADES does).
//!
//! # Example
//!
//! ```
//! use fades_netlist::{NetlistBuilder, Simulator};
//!
//! let mut b = NetlistBuilder::new("majority");
//! let x = b.input("x", 1)[0];
//! let y = b.input("y", 1)[0];
//! let z = b.input("z", 1)[0];
//! let xy = b.and2(x, y);
//! let xz = b.and2(x, z);
//! let yz = b.and2(y, z);
//! let t = b.or2(xy, xz);
//! let m = b.or2(t, yz);
//! b.output("m", &[m]);
//! let netlist = b.finish()?;
//!
//! let mut sim = Simulator::new(&netlist)?;
//! sim.set_input("x", &[true])?;
//! sim.set_input("y", &[false])?;
//! sim.set_input("z", &[true])?;
//! sim.settle();
//! assert_eq!(sim.output_bits("m")?, vec![true]);
//! # Ok::<(), fades_netlist::NetlistError>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod batch;
mod builder;
mod cell;
mod error;
mod force;
mod interp;
mod levelize;
mod net;
mod netlist;
mod stats;
mod trace;
mod vcd;

pub use batch::{broadcast_lane0, BatchSimulator};
pub use builder::{DffHandle, NetlistBuilder};
pub use cell::{eval_table_word, Cell, CellId, DffCell, LutCell, RamCell, UnitTag};
pub use error::NetlistError;
pub use force::{Force, ForceKind, LaneForce};
pub use interp::{SimSnapshot, Simulator};
pub use levelize::{levelize, LevelizeResult};
pub use net::{NetId, PortDir};
pub use netlist::{Netlist, Port};
pub use stats::NetlistStats;
pub use trace::{OutputTrace, TraceDiff};
pub use vcd::VcdRecorder;
