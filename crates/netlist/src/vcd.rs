//! Value-change-dump (VCD) export of simulation traces.
//!
//! Lets users inspect golden and faulty executions in any waveform viewer
//! (GTKWave et al.). The writer records the netlist's ports each cycle and
//! emits a standard VCD 1.164-1995 text document.

use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::interp::Simulator;
use crate::net::PortDir;

/// Incremental VCD recorder over a simulator's ports.
///
/// # Example
///
/// ```
/// use fades_netlist::{NetlistBuilder, Simulator, VcdRecorder};
///
/// // A toggling flip-flop, observed as port `q`.
/// let mut b = NetlistBuilder::new("demo");
/// let (q, h) = b.dff_placeholder("q", false);
/// let d = b.not(q);
/// b.dff_connect(h, d);
/// b.output("q", &[q]);
/// let nl = b.finish()?;
///
/// let mut sim = Simulator::new(&nl)?;
/// let mut vcd = VcdRecorder::new(&sim, 100)?;
/// for _ in 0..4 {
///     sim.settle();
///     vcd.sample(&sim)?;
///     sim.clock_edge();
/// }
/// let text = vcd.finish();
/// assert!(text.contains("$enddefinitions"));
/// # Ok::<(), fades_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    header: String,
    body: String,
    /// (port name, width, identifier code) per observed port.
    ports: Vec<(String, usize, String)>,
    last: Vec<Option<u64>>,
    time: u64,
    period_ns: u64,
}

impl VcdRecorder {
    /// Creates a recorder over all output ports of the simulated netlist,
    /// with the given clock period in nanoseconds.
    ///
    /// # Errors
    ///
    /// Currently infallible; reserved for port-selection validation.
    pub fn new(sim: &Simulator<'_>, period_ns: u64) -> Result<Self, NetlistError> {
        let mut header = String::new();
        let netlist = sim.netlist();
        let _ = writeln!(header, "$date FADES reproduction $end");
        let _ = writeln!(header, "$version fades-netlist VCD writer $end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {} $end", netlist.name());
        let mut ports = Vec::new();
        for (i, port) in netlist
            .ports()
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .enumerate()
        {
            let id = ident(i);
            let _ = writeln!(
                header,
                "$var wire {} {} {} $end",
                port.bits.len(),
                id,
                port.name
            );
            ports.push((port.name.clone(), port.bits.len(), id));
        }
        let _ = writeln!(header, "$upscope $end");
        let _ = writeln!(header, "$enddefinitions $end");
        let last = vec![None; ports.len()];
        Ok(VcdRecorder {
            header,
            body: String::new(),
            ports,
            last,
            time: 0,
            period_ns,
        })
    }

    /// Records the current (settled) port values as one sample.
    ///
    /// # Errors
    ///
    /// Returns an error if a recorded port disappeared (cannot happen with
    /// an unmodified netlist).
    pub fn sample(&mut self, sim: &Simulator<'_>) -> Result<(), NetlistError> {
        let mut emitted_time = false;
        for (i, (name, width, id)) in self.ports.iter().enumerate() {
            let value = sim.output_u64(name)?;
            if self.last[i] == Some(value) {
                continue;
            }
            if !emitted_time {
                let _ = writeln!(self.body, "#{}", self.time);
                emitted_time = true;
            }
            if *width == 1 {
                let _ = writeln!(self.body, "{}{}", value & 1, id);
            } else {
                let _ = write!(self.body, "b");
                for bit in (0..*width).rev() {
                    let _ = write!(self.body, "{}", (value >> bit) & 1);
                }
                let _ = writeln!(self.body, " {id}");
            }
            self.last[i] = Some(value);
        }
        self.time += self.period_ns;
        Ok(())
    }

    /// Finalises and returns the VCD document.
    pub fn finish(mut self) -> String {
        let _ = writeln!(self.body, "#{}", self.time);
        format!("{}{}", self.header, self.body)
    }
}

/// VCD identifier codes: printable ASCII starting at `!`.
fn ident(index: usize) -> String {
    let mut s = String::new();
    let mut i = index;
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn vcd_records_value_changes() {
        let mut b = NetlistBuilder::new("t");
        let (q, h) = b.dff_placeholder("q", false);
        let d = b.not(q);
        b.dff_connect(h, d);
        b.output("q", &[q]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut vcd = VcdRecorder::new(&sim, 100).unwrap();
        for _ in 0..4 {
            sim.settle();
            vcd.sample(&sim).unwrap();
            sim.clock_edge();
        }
        let text = vcd.finish();
        assert!(text.contains("$var wire 1 ! q $end"));
        assert!(text.contains("#0\n0!"));
        assert!(text.contains("#100\n1!"));
        assert!(text.contains("#200\n0!"));
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.chars().all(|c| ('!'..='~').contains(&c))));
    }
}
