//! Construction of netlists with on-the-fly LUT mapping.

use crate::cell::{Cell, DffCell, LutCell, RamCell, UnitTag};
use crate::error::NetlistError;
use crate::net::{NetId, PortDir};
use crate::netlist::{Netlist, Port};

/// Handle to a declared flip-flop whose `D` input is connected later.
///
/// Registers in feedback paths (counters, FSM state) need their output
/// before their input logic exists; [`NetlistBuilder::dff_placeholder`]
/// returns the `Q` net immediately and this handle, which must be completed
/// with [`NetlistBuilder::dff_connect`] before [`NetlistBuilder::finish`].
#[derive(Debug)]
#[must_use = "the flip-flop's D input must be connected with dff_connect"]
pub struct DffHandle {
    cell: usize,
}

/// Incremental netlist builder.
///
/// Word-level operators (`and2`, `xor2`, `mux2`, ...) synthesise directly to
/// 4-input LUT cells. Constant folding is performed for the two constant
/// nets so that tied-off logic does not bloat the netlist.
///
/// See the crate-level documentation for an example.
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    n_nets: u32,
    cells: Vec<Cell>,
    units: Vec<UnitTag>,
    ports: Vec<Port>,
    current_unit: UnitTag,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            n_nets: 0,
            cells: Vec::new(),
            units: Vec::new(),
            ports: Vec::new(),
            current_unit: UnitTag::Glue,
            const0: None,
            const1: None,
        }
    }

    /// Sets the unit tag applied to all subsequently created cells.
    ///
    /// Used by the 8051 model to label its ALU / MEM / FSM / register
    /// regions for placement and fault targeting.
    pub fn set_unit(&mut self, unit: UnitTag) {
        self.current_unit = unit;
    }

    /// The unit tag currently applied to new cells.
    pub fn current_unit(&self) -> UnitTag {
        self.current_unit
    }

    /// Re-opens a finished netlist for modification (model
    /// instrumentation, e.g. compile-time-reconfiguration saboteurs).
    ///
    /// The returned builder contains identical nets, cells and ports; net
    /// and cell ids are preserved.
    pub fn from_netlist(netlist: &crate::Netlist) -> Self {
        let mut b = NetlistBuilder::new(netlist.name());
        b.n_nets = netlist.net_count() as u32;
        b.cells = netlist.cells().to_vec();
        b.units = (0..netlist.cell_count())
            .map(|i| netlist.unit(crate::CellId::from_index(i)))
            .collect();
        b.ports = netlist.ports().to_vec();
        b
    }

    /// Redirects every reader of `from` (cell inputs and output ports) to
    /// `to`. The driver of `from` is untouched; used to splice saboteurs
    /// into existing connections.
    pub fn rewire_readers(&mut self, from: NetId, to: NetId) {
        for cell in &mut self.cells {
            match cell {
                Cell::Lut(l) => {
                    for pin in l.inputs.iter_mut().flatten() {
                        if *pin == from {
                            *pin = to;
                        }
                    }
                }
                Cell::Dff(d) => {
                    if d.d == from {
                        d.d = to;
                    }
                }
                Cell::Ram(r) => {
                    for n in r
                        .addr
                        .iter_mut()
                        .chain(r.din.iter_mut())
                        .chain(r.write_enable.iter_mut())
                    {
                        if *n == from {
                            *n = to;
                        }
                    }
                }
            }
        }
        for port in &mut self.ports {
            if port.dir == PortDir::Output {
                for bit in &mut port.bits {
                    if *bit == from {
                        *bit = to;
                    }
                }
            }
        }
    }

    /// Allocates a fresh, yet-undriven net.
    ///
    /// The net must be driven (by `lut_raw_into`, a port, or a cell) before
    /// [`finish`](Self::finish), which validates that every net has exactly
    /// one driver.
    pub fn fresh_net(&mut self) -> NetId {
        let id = NetId(self.n_nets);
        self.n_nets += 1;
        id
    }

    fn push_cell(&mut self, cell: Cell) -> usize {
        self.cells.push(cell);
        self.units.push(self.current_unit);
        self.cells.len() - 1
    }

    /// Declares a primary input port of `width` bits; returns its nets.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let bits: Vec<NetId> = (0..width).map(|_| self.fresh_net()).collect();
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::Input,
            bits: bits.clone(),
        });
        bits
    }

    /// Declares a primary output port connected to the given nets.
    pub fn output(&mut self, name: impl Into<String>, bits: &[NetId]) {
        self.ports.push(Port {
            name: name.into(),
            dir: PortDir::Output,
            bits: bits.to_vec(),
        });
    }

    /// The constant-0 net (created on first use as an empty-input LUT).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            return n;
        }
        let n = self.lut_raw([None, None, None, None], 0x0000);
        self.const0 = Some(n);
        n
    }

    /// The constant-1 net (created on first use as an empty-input LUT).
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            return n;
        }
        let n = self.lut_raw([None, None, None, None], 0xFFFF);
        self.const1 = Some(n);
        n
    }

    /// True if `net` is the constant produced by [`const0`](Self::const0) /
    /// [`const1`](Self::const1); used for constant folding.
    fn as_const(&self, net: NetId) -> Option<bool> {
        if self.const0 == Some(net) {
            Some(false)
        } else if self.const1 == Some(net) {
            Some(true)
        } else {
            None
        }
    }

    /// Creates a raw LUT cell with explicit pins and truth table, returning
    /// its (fresh) output net.
    ///
    /// The table must be padded so the function ignores unused pins.
    pub fn lut_raw(&mut self, inputs: [Option<NetId>; 4], table: u16) -> NetId {
        let output = self.fresh_net();
        self.lut_raw_into(inputs, table, output);
        output
    }

    /// Creates a raw LUT cell driving an existing net.
    ///
    /// This is how feedback cycles would be formed; [`finish`](Self::finish)
    /// rejects combinational loops.
    pub fn lut_raw_into(&mut self, inputs: [Option<NetId>; 4], table: u16, output: NetId) {
        self.push_cell(Cell::Lut(LutCell {
            inputs,
            table,
            output,
        }));
    }

    /// Synthesises an arbitrary function of up to four nets.
    ///
    /// `f` receives the input values in pin order and the builder fills the
    /// truth table by enumeration. Constant inputs are folded away.
    ///
    /// # Panics
    ///
    /// Panics if more than four inputs are supplied.
    pub fn lut_fn(&mut self, inputs: &[NetId], f: impl Fn(&[bool]) -> bool) -> NetId {
        assert!(inputs.len() <= 4, "lut_fn supports at most 4 inputs");
        // Fold constants out of the input list.
        let mut live: Vec<NetId> = Vec::new();
        let mut fixed: Vec<Option<bool>> = Vec::new();
        for &n in inputs {
            match self.as_const(n) {
                Some(v) => fixed.push(Some(v)),
                None => {
                    fixed.push(None);
                    live.push(n);
                }
            }
        }
        let k = live.len();
        let mut table: u16 = 0;
        for combo in 0..(1u16 << k) {
            let mut vals = Vec::with_capacity(inputs.len());
            let mut li = 0;
            for fx in &fixed {
                match fx {
                    Some(v) => vals.push(*v),
                    None => {
                        vals.push((combo >> li) & 1 == 1);
                        li += 1;
                    }
                }
            }
            if f(&vals) {
                table |= 1 << combo;
            }
        }
        if k == 0 {
            return if table & 1 == 1 {
                self.const1()
            } else {
                self.const0()
            };
        }
        // Replicate the k-input table across unused upper pins.
        let used = 1u32 << k;
        let mut full: u16 = 0;
        for i in 0..16u32 {
            if (table >> (i % used)) & 1 == 1 {
                full |= 1 << i;
            }
        }
        let mut pins = [None; 4];
        for (i, &n) in live.iter().enumerate() {
            pins[i] = Some(n);
        }
        self.lut_raw(pins, full)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.lut_fn(&[a], |v| !v[0])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut_fn(&[a, b], |v| v[0] && v[1])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut_fn(&[a, b], |v| v[0] || v[1])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.lut_fn(&[a, b], |v| v[0] ^ v[1])
    }

    /// 2:1 multiplexer: returns `t` when `sel` is high, else `e`.
    pub fn mux2(&mut self, sel: NetId, t: NetId, e: NetId) -> NetId {
        self.lut_fn(&[sel, t, e], |v| if v[0] { v[1] } else { v[2] })
    }

    /// Reduction AND over arbitrarily many nets (LUT tree).
    pub fn and_all(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, true, NetlistBuilder::and2)
    }

    /// Reduction OR over arbitrarily many nets (LUT tree).
    pub fn or_all(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, false, NetlistBuilder::or2)
    }

    fn reduce(
        &mut self,
        nets: &[NetId],
        empty: bool,
        op: impl Fn(&mut Self, NetId, NetId) -> NetId + Copy,
    ) -> NetId {
        match nets.len() {
            0 => {
                if empty {
                    self.const1()
                } else {
                    self.const0()
                }
            }
            1 => nets[0],
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for pair in level.chunks(2) {
                        next.push(if pair.len() == 2 {
                            op(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// Creates a flip-flop whose `D` input is already known.
    pub fn dff(&mut self, name: impl Into<String>, d: NetId, init: bool) -> NetId {
        let q = self.fresh_net();
        self.push_cell(Cell::Dff(DffCell {
            d,
            q,
            init,
            name: name.into(),
        }));
        q
    }

    /// Declares a flip-flop whose `D` input is connected later with
    /// [`dff_connect`](Self::dff_connect); returns `(q, handle)`.
    pub fn dff_placeholder(&mut self, name: impl Into<String>, init: bool) -> (NetId, DffHandle) {
        let q = self.fresh_net();
        // Temporarily feed back q; dff_connect replaces it.
        let cell = self.push_cell(Cell::Dff(DffCell {
            d: q,
            q,
            init,
            name: name.into(),
        }));
        (q, DffHandle { cell })
    }

    /// Connects the `D` input of a placeholder flip-flop.
    pub fn dff_connect(&mut self, handle: DffHandle, d: NetId) {
        match &mut self.cells[handle.cell] {
            Cell::Dff(ff) => ff.d = d,
            _ => unreachable!("DffHandle always refers to a DFF"),
        }
    }

    /// Creates a RAM block.
    ///
    /// `init` supplies power-on contents (missing words are zero).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadMemoryShape`] if `width` is 0 or greater
    /// than 64, or `addr` is empty.
    pub fn ram(
        &mut self,
        name: impl Into<String>,
        addr: &[NetId],
        din: &[NetId],
        write_enable: NetId,
        width: usize,
        init: &[u64],
    ) -> Result<Vec<NetId>, NetlistError> {
        self.memory(name, addr, din, Some(write_enable), width, init)
    }

    /// Creates a ROM block (no write port).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadMemoryShape`] for unsupported shapes (see
    /// [`ram`](Self::ram)).
    pub fn rom(
        &mut self,
        name: impl Into<String>,
        addr: &[NetId],
        width: usize,
        init: &[u64],
    ) -> Result<Vec<NetId>, NetlistError> {
        self.memory(name, addr, &[], None, width, init)
    }

    fn memory(
        &mut self,
        name: impl Into<String>,
        addr: &[NetId],
        din: &[NetId],
        write_enable: Option<NetId>,
        width: usize,
        init: &[u64],
    ) -> Result<Vec<NetId>, NetlistError> {
        if width == 0 || width > 64 {
            return Err(NetlistError::BadMemoryShape(format!(
                "width {width} not in 1..=64"
            )));
        }
        if addr.is_empty() {
            return Err(NetlistError::BadMemoryShape("empty address bus".into()));
        }
        if write_enable.is_some() && din.len() != width {
            return Err(NetlistError::BadMemoryShape(format!(
                "din has {} bits, width is {width}",
                din.len()
            )));
        }
        let depth = 1usize << addr.len();
        if init.len() > depth {
            return Err(NetlistError::BadMemoryShape(format!(
                "init has {} words, depth is {depth}",
                init.len()
            )));
        }
        let dout: Vec<NetId> = (0..width).map(|_| self.fresh_net()).collect();
        let mut contents = init.to_vec();
        contents.resize(depth, 0);
        self.push_cell(Cell::Ram(RamCell {
            addr: addr.to_vec(),
            din: din.to_vec(),
            dout: dout.clone(),
            write_enable,
            init: contents,
            name: name.into(),
        }));
        Ok(dout)
    }

    /// Number of cells created so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates and freezes the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error if any net is undriven or multiply driven, a port
    /// name is duplicated, or the combinational logic contains a loop.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        Netlist::from_parts(self.name, self.n_nets, self.cells, self.units, self.ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_collapses_to_const_nets() {
        let mut b = NetlistBuilder::new("cf");
        let one = b.const1();
        let a = b.input("a", 1)[0];
        let n = b.and2(a, one);
        // AND with constant 1 still produces a buffer LUT of `a`, but an
        // AND of two constants folds to a constant net.
        let z = b.and2(one, one);
        assert_eq!(z, one);
        b.output("n", &[n]);
        b.finish().unwrap();
    }

    #[test]
    fn lut_fn_truth_table_is_padded() {
        let mut b = NetlistBuilder::new("pad");
        let a = b.input("a", 1)[0];
        let n = b.not(a);
        b.output("n", &[n]);
        let nl = b.finish().unwrap();
        let lut = match nl.cell(nl.lut_ids()[0]) {
            crate::Cell::Lut(l) => l.clone(),
            _ => unreachable!(),
        };
        // NOT(a): table bit must be identical for all values of unused pins.
        for hi in 0..8u16 {
            assert_eq!(lut.table >> (hi * 2) & 1, 1);
            assert_eq!(lut.table >> (hi * 2 + 1) & 1, 0);
        }
    }

    #[test]
    fn undriven_net_is_rejected() {
        let mut b = NetlistBuilder::new("undriven");
        let n = b.fresh_net();
        b.output("o", &[n]);
        assert!(matches!(b.finish(), Err(NetlistError::Undriven(_))));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = NetlistBuilder::new("md");
        let a = b.input("a", 1)[0];
        let n = b.not(a);
        b.lut_raw_into([Some(a), None, None, None], 0xFFFF, n);
        b.output("o", &[n]);
        assert!(matches!(b.finish(), Err(NetlistError::MultipleDrivers(_))));
    }
}
