//! Topological ordering of combinational cells.

use crate::cell::{Cell, CellId};
use crate::error::NetlistError;
use crate::net::NetId;
use crate::netlist::Netlist;

/// Result of levelizing a netlist.
#[derive(Debug, Clone)]
pub struct LevelizeResult {
    /// Combinational cells (LUTs and memory read ports) in an order where
    /// every cell appears after all cells driving its inputs.
    pub order: Vec<CellId>,
    /// Logic depth (in LUT levels) of each net, indexed by net index.
    /// Sequential outputs and primary inputs have depth 0; a memory's
    /// asynchronous read port adds one level like a LUT does.
    pub depth: Vec<u32>,
}

/// Computes a topological order of the combinational cells.
///
/// Flip-flop outputs and primary inputs are sources; flip-flop `D` pins and
/// primary outputs are sinks. LUTs and memory blocks (whose read ports are
/// asynchronous) are ordered so that evaluating them in sequence settles the
/// whole combinational fabric in one pass.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalLoop`] if the LUT network contains a
/// cycle that is not broken by a flip-flop.
pub fn levelize(netlist: &Netlist) -> Result<LevelizeResult, NetlistError> {
    let n_cells = netlist.cell_count();
    let n_nets = netlist.net_count();

    // Combinational cells only; DFFs break cycles.
    let comb: Vec<CellId> = (0..n_cells)
        .map(CellId::from_index)
        .filter(|&id| !matches!(netlist.cell(id), Cell::Dff(_)))
        .collect();

    // For each net, the combinational cells reading it.
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); n_nets];
    // Remaining unevaluated combinational fan-in per cell (indexed by
    // position within `comb`).
    let mut pending: Vec<u32> = vec![0; comb.len()];
    let mut comb_pos = vec![u32::MAX; n_cells];
    for (pos, &id) in comb.iter().enumerate() {
        comb_pos[id.index()] = pos as u32;
    }

    let comb_driver = |net: NetId| -> Option<CellId> {
        netlist
            .driver(net)
            .filter(|&c| !matches!(netlist.cell(c), Cell::Dff(_)))
    };

    // Combinational dependencies only: a memory's read port depends on its
    // address alone (data-in and write-enable are sampled at the clock
    // edge), so writes feeding back from read data are not loops.
    let comb_inputs = |id: CellId| -> Vec<NetId> {
        match netlist.cell(id) {
            Cell::Ram(r) => r.addr.clone(),
            cell => cell.inputs(),
        }
    };

    for (pos, &id) in comb.iter().enumerate() {
        for input in comb_inputs(id) {
            if comb_driver(input).is_some() {
                readers[input.index()].push(pos as u32);
                pending[pos] += 1;
            }
        }
    }

    let mut order = Vec::with_capacity(comb.len());
    let mut depth = vec![0u32; n_nets];
    let mut queue: Vec<u32> = pending
        .iter()
        .enumerate()
        .filter(|(_, &p)| p == 0)
        .map(|(i, _)| i as u32)
        .collect();

    while let Some(pos) = queue.pop() {
        let id = comb[pos as usize];
        let cell = netlist.cell(id);
        let in_depth = comb_inputs(id)
            .iter()
            .map(|n| depth[n.index()])
            .max()
            .unwrap_or(0);
        for out in cell.outputs() {
            depth[out.index()] = in_depth + 1;
            for &reader in &readers[out.index()] {
                pending[reader as usize] -= 1;
                if pending[reader as usize] == 0 {
                    queue.push(reader);
                }
            }
        }
        order.push(id);
    }

    // A cell that never reached zero pending fan-in sits on a cycle:
    // report one of its output nets for diagnosis.
    if let Some((_, &stuck)) = comb.iter().enumerate().find(|(pos, _)| pending[*pos] > 0) {
        let net = netlist.cell(stuck).outputs()[0];
        return Err(NetlistError::CombinationalLoop(net));
    }

    Ok(LevelizeResult { order, depth })
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    #[test]
    fn loop_is_rejected() {
        let mut b = NetlistBuilder::new("loop");
        let fwd = b.fresh_net();
        let out = b.lut_raw([Some(fwd), None, None, None], 0x5555);
        // Drive the forward net from the LUT's own output via another LUT.
        b.lut_raw_into([Some(out), None, None, None], 0x5555, fwd);
        assert!(b.finish().is_err());
    }

    #[test]
    fn depth_counts_lut_levels() {
        let mut b = NetlistBuilder::new("depth");
        let a = b.input("a", 1)[0];
        let x = b.not(a);
        let y = b.not(x);
        b.output("y", &[y]);
        let nl = b.finish().unwrap();
        let lv = crate::levelize(&nl).unwrap();
        assert_eq!(lv.depth[y.index()], 2);
    }
}
