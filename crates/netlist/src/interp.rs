//! Cycle-accurate netlist interpreter.
//!
//! This is the "HDL simulator" of the reproduction: it executes a
//! [`Netlist`] directly, one clock cycle at a time, and supports the
//! simulator-command style of fault injection (force / release / flip) that
//! the VFIT baseline uses.

use crate::cell::{Cell, CellId};
use crate::error::NetlistError;
use crate::force::{Force, ForceKind};
use crate::levelize::{levelize, LevelizeResult};
use crate::net::{NetId, PortDir};
use crate::netlist::Netlist;

/// A point-in-time snapshot of a [`Simulator`]'s state, taken with
/// [`Simulator::save_state`] and reapplied with
/// [`Simulator::restore_state`].
///
/// Snapshots are only meaningful on a simulator over the same netlist
/// they were taken from; restoring one elsewhere panics on a dimension
/// mismatch or silently corrupts state on a coincidental match.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    cycle: u64,
    values: Vec<bool>,
    ff_state: Vec<bool>,
    mem: Vec<Vec<u64>>,
    forces: Vec<Force>,
    mem_hash: u64,
}

impl SimSnapshot {
    /// The cycle counter at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// Finalising mix (splitmix64) for state digests.
#[inline]
fn hash_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// XOR-combinable hash of one memory word, so the simulator can keep a
/// whole-memory digest current in O(1) per write.
#[inline]
fn mem_cell_hash(cell: usize, addr: usize, word: u64) -> u64 {
    hash_mix(
        ((cell as u64) << 40 | addr as u64).rotate_left(17)
            ^ word.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    )
}

/// Cycle-accurate simulator over a netlist.
///
/// The simulator owns a value per net, flip-flop state, and memory
/// contents. A cycle consists of [`settle`](Self::settle) (combinational
/// propagation) followed by [`clock_edge`](Self::clock_edge) (sequential
/// update); [`step`](Self::step) performs both.
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    level: LevelizeResult,
    values: Vec<bool>,
    /// Flip-flop state, indexed by cell index (unused slots for non-DFFs).
    ff_state: Vec<bool>,
    /// Memory contents, indexed by cell index.
    mem: Vec<Vec<u64>>,
    /// Active simulator-command forces.
    forces: Vec<Force>,
    /// Per-net index into `forces` (`u32::MAX` = no force on that net),
    /// rebuilt on force/release so the per-LUT-output lookup in `settle`
    /// is O(1) instead of a linear scan of the force list.
    force_index: Vec<u32>,
    cycle: u64,
    /// Incremental digest of all memory contents (see [`mem_cell_hash`]),
    /// kept current on every write so [`state_hash`](Self::state_hash)
    /// never rescans memories.
    mem_hash: u64,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with all state at its power-on values.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized (it always can if
    /// it came from [`crate::NetlistBuilder::finish`]).
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        let level = levelize(netlist)?;
        let mut sim = Simulator {
            netlist,
            level,
            values: vec![false; netlist.net_count()],
            ff_state: vec![false; netlist.cell_count()],
            mem: vec![Vec::new(); netlist.cell_count()],
            forces: Vec::new(),
            force_index: vec![u32::MAX; netlist.net_count()],
            cycle: 0,
            mem_hash: 0,
        };
        sim.reset();
        Ok(sim)
    }

    /// Restores all flip-flops and memories to their power-on values and
    /// clears forces and the cycle counter. Input values are kept.
    pub fn reset(&mut self) {
        self.mem_hash = 0;
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell {
                Cell::Dff(d) => self.ff_state[i] = d.init,
                Cell::Ram(r) => {
                    self.mem[i] = r.init.clone();
                    for (addr, &word) in self.mem[i].iter().enumerate() {
                        self.mem_hash ^= mem_cell_hash(i, addr, word);
                    }
                }
                Cell::Lut(_) => {}
            }
        }
        self.clear_forces();
        self.cycle = 0;
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Current cycle count (number of clock edges since reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Returns an error if the port is unknown, is an output, or `bits` has
    /// the wrong width.
    pub fn set_input(&mut self, name: &str, bits: &[bool]) -> Result<(), NetlistError> {
        let port = self.netlist.port(name)?;
        if port.dir != PortDir::Input {
            return Err(NetlistError::PortDirection {
                name: name.to_string(),
                actual: port.dir,
            });
        }
        if port.bits.len() != bits.len() {
            return Err(NetlistError::WidthMismatch {
                name: name.to_string(),
                expected: port.bits.len(),
                actual: bits.len(),
            });
        }
        for (net, &v) in port.bits.clone().iter().zip(bits) {
            self.values[net.index()] = v;
        }
        Ok(())
    }

    /// Reads an output port as bits (LSB first). Call after
    /// [`settle`](Self::settle).
    ///
    /// # Errors
    ///
    /// Returns an error if the port is unknown or is an input.
    pub fn output_bits(&self, name: &str) -> Result<Vec<bool>, NetlistError> {
        let port = self.netlist.port(name)?;
        if port.dir != PortDir::Output {
            return Err(NetlistError::PortDirection {
                name: name.to_string(),
                actual: port.dir,
            });
        }
        Ok(port.bits.iter().map(|n| self.values[n.index()]).collect())
    }

    /// Reads an output port as an integer (at most 64 bits).
    ///
    /// # Errors
    ///
    /// Same conditions as [`output_bits`](Self::output_bits).
    pub fn output_u64(&self, name: &str) -> Result<u64, NetlistError> {
        let bits = self.output_bits(name)?;
        Ok(pack_bits(&bits))
    }

    /// Current value of an arbitrary net.
    pub fn net_value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Current state of a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a flip-flop.
    pub fn ff_value(&self, id: CellId) -> bool {
        assert!(
            matches!(self.netlist.cell(id), Cell::Dff(_)),
            "{id} is not a flip-flop"
        );
        self.ff_state[id.index()]
    }

    /// Overwrites the state of a flip-flop (takes effect at the next
    /// [`settle`](Self::settle)).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a flip-flop.
    pub fn set_ff(&mut self, id: CellId, value: bool) {
        assert!(
            matches!(self.netlist.cell(id), Cell::Dff(_)),
            "{id} is not a flip-flop"
        );
        self.ff_state[id.index()] = value;
    }

    /// Reads one word of a memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory or `addr` is out of range.
    pub fn mem_word(&self, id: CellId, addr: usize) -> u64 {
        self.mem[id.index()][addr]
    }

    /// Overwrites one word of a memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory or `addr` is out of range.
    pub fn set_mem_word(&mut self, id: CellId, addr: usize, word: u64) {
        self.mem_hash ^= mem_cell_hash(id.index(), addr, self.mem[id.index()][addr])
            ^ mem_cell_hash(id.index(), addr, word);
        self.mem[id.index()][addr] = word;
    }

    /// Flips a single stored bit of a memory.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory or the location is out of range.
    pub fn flip_mem_bit(&mut self, id: CellId, addr: usize, bit: usize) {
        let old = self.mem[id.index()][addr];
        self.mem[id.index()][addr] = old ^ (1 << bit);
        self.mem_hash ^= mem_cell_hash(id.index(), addr, old)
            ^ mem_cell_hash(id.index(), addr, old ^ (1 << bit));
    }

    /// Adds a simulator-command force; it applies until
    /// [`release`](Self::release) or [`clear_forces`](Self::clear_forces).
    pub fn force(&mut self, force: Force) {
        self.forces.push(force);
        // Later forces shadow earlier ones on the same net, so the index
        // always points at the newest entry.
        self.force_index[force.net.index()] = (self.forces.len() - 1) as u32;
    }

    /// Removes all forces on the given net.
    pub fn release(&mut self, net: NetId) {
        self.forces.retain(|f| f.net != net);
        self.force_index[net.index()] = u32::MAX;
        self.reindex_forces();
    }

    /// Removes every active force.
    pub fn clear_forces(&mut self) {
        for f in &self.forces {
            self.force_index[f.net.index()] = u32::MAX;
        }
        self.forces.clear();
    }

    /// Rewrites the per-net index entries for the current force list
    /// (positions shift after a removal). O(forces), and the force list is
    /// short — at most a handful of injected faults at a time.
    fn reindex_forces(&mut self) {
        for (i, f) in self.forces.iter().enumerate() {
            self.force_index[f.net.index()] = i as u32;
        }
    }

    /// Number of currently active forces.
    pub fn force_count(&self) -> usize {
        self.forces.len()
    }

    /// Propagates values through the combinational fabric.
    ///
    /// Flip-flop outputs present their stored state; LUTs and memory read
    /// ports are evaluated in topological order; forces are applied to their
    /// target nets both before and after evaluation so that downstream logic
    /// observes the forced value.
    pub fn settle(&mut self) {
        // Present sequential state on Q nets.
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if let Cell::Dff(d) = cell {
                self.values[d.q.index()] = self.ff_state[i];
            }
        }
        self.apply_forces();
        for idx in 0..self.level.order.len() {
            let id = self.level.order[idx];
            match self.netlist.cell(id) {
                Cell::Lut(l) => {
                    let mut vals = [false; 4];
                    for (pin, input) in l.inputs.iter().enumerate() {
                        if let Some(n) = input {
                            vals[pin] = self.values[n.index()];
                        }
                    }
                    let mut out = l.eval(vals);
                    if let Some(kind) = self.force_on(l.output) {
                        out = kind.apply(out);
                    }
                    self.values[l.output.index()] = out;
                }
                Cell::Ram(r) => {
                    let addr = self.read_addr(&r.addr);
                    let word = self.mem[id.index()][addr];
                    for (bit, out) in r.dout.iter().enumerate() {
                        let mut v = (word >> bit) & 1 == 1;
                        if let Some(kind) = self.force_on(*out) {
                            v = kind.apply(v);
                        }
                        self.values[out.index()] = v;
                    }
                }
                Cell::Dff(_) => unreachable!("levelize only yields combinational cells"),
            }
        }
        fades_telemetry::sim::record_settle(self.level.order.len() as u64);
    }

    /// Applies forces to nets that are *not* recomputed during LUT
    /// evaluation (primary inputs and flip-flop outputs). Nets driven by
    /// combinational cells are handled inline by [`Self::force_on`] so that
    /// `Flip` inverts the freshly computed value.
    fn apply_forces(&mut self) {
        for i in 0..self.forces.len() {
            let f = self.forces[i];
            let driven_by_comb = self
                .netlist
                .driver(f.net)
                .is_some_and(|c| !matches!(self.netlist.cell(c), Cell::Dff(_)));
            if !driven_by_comb {
                let v = f.value(self.values[f.net.index()]);
                self.values[f.net.index()] = v;
            }
        }
    }

    #[inline(always)]
    fn force_on(&self, net: NetId) -> Option<ForceKind> {
        // Early-out: the common case is a fault-free settle, which must not
        // pay a per-output lookup for an empty force list.
        if self.forces.is_empty() {
            return None;
        }
        let slot = self.force_index[net.index()];
        if slot == u32::MAX {
            None
        } else {
            Some(self.forces[slot as usize].kind)
        }
    }

    fn read_addr(&self, addr: &[NetId]) -> usize {
        let mut a = 0usize;
        for (bit, n) in addr.iter().enumerate() {
            if self.values[n.index()] {
                a |= 1 << bit;
            }
        }
        a
    }

    /// Applies the clock edge: flip-flops capture `D`, memories perform
    /// enabled writes. Values must be settled first.
    ///
    /// The update is single-phase with no per-cycle allocation: every
    /// capture and write reads only the settled combinational `values`
    /// (frozen during the edge) and mutates only `ff_state` / `mem`, so
    /// no staging buffers are needed to keep the edge atomic.
    pub fn clock_edge(&mut self) {
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell {
                Cell::Dff(d) => self.ff_state[i] = self.values[d.d.index()],
                Cell::Ram(r) => {
                    if let Some(we) = r.write_enable {
                        if self.values[we.index()] {
                            let addr = self.read_addr(&r.addr);
                            let mut word = 0u64;
                            for (bit, n) in r.din.iter().enumerate().take(64) {
                                word |= (self.values[n.index()] as u64) << bit;
                            }
                            self.mem_hash ^= mem_cell_hash(i, addr, self.mem[i][addr])
                                ^ mem_cell_hash(i, addr, word);
                            self.mem[i][addr] = word;
                        }
                    }
                }
                Cell::Lut(_) => {}
            }
        }
        self.cycle += 1;
        fades_telemetry::sim::record_clock_edge();
    }

    /// Runs one full cycle: settle then clock edge.
    pub fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// Runs `n` full cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Snapshot of all sequential state (flip-flops, then memory words),
    /// used by outcome classification to detect latent faults.
    pub fn state_snapshot(&self) -> Vec<u64> {
        let mut snap = Vec::new();
        let mut acc = 0u64;
        let mut nbits = 0;
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if matches!(cell, Cell::Dff(_)) {
                if self.ff_state[i] {
                    acc |= 1 << nbits;
                }
                nbits += 1;
                if nbits == 64 {
                    snap.push(acc);
                    acc = 0;
                    nbits = 0;
                }
            }
        }
        if nbits > 0 {
            snap.push(acc);
        }
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if matches!(cell, Cell::Ram(_)) {
                snap.extend_from_slice(&self.mem[i]);
            }
        }
        snap
    }

    /// Snapshots the full simulator state (cycle counter, net values,
    /// flip-flop state, memory contents, active forces) for later
    /// [`restore_state`](Self::restore_state).
    pub fn save_state(&self) -> SimSnapshot {
        SimSnapshot {
            cycle: self.cycle,
            values: self.values.clone(),
            ff_state: self.ff_state.clone(),
            mem: self.mem.clone(),
            forces: self.forces.clone(),
            mem_hash: self.mem_hash,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) on a
    /// simulator over the same netlist.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's dimensions do not match this netlist.
    pub fn restore_state(&mut self, snap: &SimSnapshot) {
        self.cycle = snap.cycle;
        self.values.copy_from_slice(&snap.values);
        self.ff_state.copy_from_slice(&snap.ff_state);
        assert_eq!(snap.mem.len(), self.mem.len(), "snapshot matches netlist");
        for (dst, src) in self.mem.iter_mut().zip(&snap.mem) {
            dst.copy_from_slice(src);
        }
        self.clear_forces();
        self.forces.extend_from_slice(&snap.forces);
        self.reindex_forces();
        self.mem_hash = snap.mem_hash;
    }

    /// Digest of everything that determines the simulation's evolution
    /// from the top of the current cycle under constant inputs: the cycle
    /// counter, flip-flop state, memory contents (via the incremental
    /// write digest — no rescan), and active forces.
    ///
    /// Two simulators over the same netlist with equal hashes at the same
    /// cycle produce identical behaviour for all subsequent cycles, which
    /// is the basis for early-stop convergence detection. Combinational
    /// net values are recomputed by [`settle`](Self::settle) and are not
    /// hashed; primary-input values are not hashed either, so the
    /// guarantee requires inputs to be held constant (true for the
    /// self-driving campaign workloads).
    pub fn state_hash(&self) -> u64 {
        let mut h = hash_mix(self.cycle ^ 0x5851_F42D_4C95_7F2D);
        let mut acc = 0u64;
        let mut n = 0u32;
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if matches!(cell, Cell::Dff(_)) {
                acc = (acc << 1) | self.ff_state[i] as u64;
                n += 1;
                if n == 64 {
                    h = hash_mix(h ^ acc);
                    acc = 0;
                    n = 0;
                }
            }
        }
        if n > 0 {
            h = hash_mix(h ^ acc ^ ((n as u64) << 56));
        }
        for f in &self.forces {
            let kind = match f.kind {
                ForceKind::Stuck(false) => 1u64,
                ForceKind::Stuck(true) => 2,
                ForceKind::Flip => 3,
            };
            h = hash_mix(h ^ ((f.net.index() as u64) << 2) ^ kind);
        }
        h ^ self.mem_hash
    }
}

/// Packs bits (LSB first) into a `u64`.
pub(crate) fn pack_bits(bits: &[bool]) -> u64 {
    let mut v = 0u64;
    for (i, &b) in bits.iter().enumerate().take(64) {
        if b {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("counter");
        let mut qs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..width {
            let (q, h) = b.dff_placeholder(format!("cnt[{i}]"), false);
            qs.push(q);
            handles.push(h);
        }
        // increment: d[i] = q[i] ^ carry, carry &= q[i]
        let mut carry = b.const1();
        for (i, h) in handles.into_iter().enumerate() {
            let d = b.xor2(qs[i], carry);
            carry = b.and2(carry, qs[i]);
            b.dff_connect(h, d);
        }
        b.output("q", &qs);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let nl = counter(4);
        let mut sim = Simulator::new(&nl).unwrap();
        for expect in 0..20u64 {
            sim.settle();
            assert_eq!(sim.output_u64("q").unwrap(), expect % 16);
            sim.clock_edge();
        }
    }

    #[test]
    fn ram_write_then_read() {
        let mut b = NetlistBuilder::new("ram");
        let addr = b.input("addr", 4);
        let din = b.input("din", 8);
        let we = b.input("we", 1)[0];
        let dout = b.ram("m", &addr, &din, we, 8, &[]).unwrap();
        b.output("dout", &dout);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("addr", &bits(5, 4)).unwrap();
        sim.set_input("din", &bits(0xAB, 8)).unwrap();
        sim.set_input("we", &[true]).unwrap();
        sim.step();
        sim.set_input("we", &[false]).unwrap();
        sim.settle();
        assert_eq!(sim.output_u64("dout").unwrap(), 0xAB);
    }

    #[test]
    fn force_overrides_lut_output() {
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a", 1)[0];
        let n = b.not(a);
        b.output("n", &[n]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", &[false]).unwrap();
        sim.settle();
        assert_eq!(sim.output_u64("n").unwrap(), 1);
        sim.force(Force::stuck(n, false));
        sim.settle();
        assert_eq!(sim.output_u64("n").unwrap(), 0);
        sim.release(n);
        sim.settle();
        assert_eq!(sim.output_u64("n").unwrap(), 1);
    }

    pub(crate) fn bits(value: u64, width: usize) -> Vec<bool> {
        (0..width).map(|i| (value >> i) & 1 == 1).collect()
    }

    #[test]
    fn force_index_shadows_and_survives_release() {
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a", 1)[0];
        let x = b.not(a);
        let y = b.not(x);
        b.output("x", &[x]);
        b.output("y", &[y]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", &[false]).unwrap();
        // Newest force on the same net wins (matches the old reverse scan).
        sim.force(Force::stuck(x, true));
        sim.force(Force::flip(x));
        sim.force(Force::stuck(y, true));
        sim.settle();
        assert_eq!(sim.output_u64("x").unwrap(), 0); // not(0)=1, flipped
        assert_eq!(sim.output_u64("y").unwrap(), 1); // stuck high
                                                     // Releasing one net re-points the index at the survivors.
        sim.release(x);
        sim.settle();
        assert_eq!(sim.output_u64("x").unwrap(), 1);
        assert_eq!(sim.output_u64("y").unwrap(), 1);
        sim.clear_forces();
        sim.settle();
        assert_eq!(sim.output_u64("y").unwrap(), 0);
    }

    #[test]
    fn save_restore_replays_identically() {
        let nl = counter(4);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(3);
        let snap = sim.save_state();
        assert_eq!(snap.cycle(), 3);
        let hash_at_snap = sim.state_hash();
        let mut hashes = Vec::new();
        let mut outs = Vec::new();
        for _ in 0..5 {
            sim.settle();
            outs.push(sim.output_u64("q").unwrap());
            sim.clock_edge();
            hashes.push(sim.state_hash());
        }
        sim.restore_state(&snap);
        assert_eq!(sim.cycle(), 3);
        assert_eq!(sim.state_hash(), hash_at_snap);
        for i in 0..5 {
            sim.settle();
            assert_eq!(sim.output_u64("q").unwrap(), outs[i]);
            sim.clock_edge();
            assert_eq!(sim.state_hash(), hashes[i]);
        }
    }

    #[test]
    fn state_hash_tracks_memory_and_forces() {
        let mut b = NetlistBuilder::new("ram");
        let addr = b.input("addr", 4);
        let din = b.input("din", 8);
        let we = b.input("we", 1)[0];
        let dout = b.ram("m", &addr, &din, we, 8, &[]).unwrap();
        b.output("dout", &dout);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let ram = nl
            .cells()
            .iter()
            .enumerate()
            .find_map(|(i, c)| matches!(c, Cell::Ram(_)).then(|| CellId::from_index(i)))
            .unwrap();
        let h0 = sim.state_hash();
        // A mem poke and its inverse cancel in the digest.
        sim.flip_mem_bit(ram, 7, 3);
        assert_ne!(sim.state_hash(), h0);
        sim.flip_mem_bit(ram, 7, 3);
        assert_eq!(sim.state_hash(), h0);
        sim.set_mem_word(ram, 2, 0xCC);
        assert_ne!(sim.state_hash(), h0);
        sim.set_mem_word(ram, 2, 0);
        assert_eq!(sim.state_hash(), h0);
        // Forces are part of the evolution-determining state.
        sim.force(Force::flip(dout[0]));
        assert_ne!(sim.state_hash(), h0);
        sim.release(dout[0]);
        assert_eq!(sim.state_hash(), h0);
        // A clocked write keeps the incremental digest consistent with a
        // fresh simulator brought to the same state.
        sim.set_input("addr", &bits(5, 4)).unwrap();
        sim.set_input("din", &bits(0xAB, 8)).unwrap();
        sim.set_input("we", &[true]).unwrap();
        sim.step();
        let mut twin = Simulator::new(&nl).unwrap();
        twin.set_input("addr", &bits(5, 4)).unwrap();
        twin.set_input("din", &bits(0xAB, 8)).unwrap();
        twin.set_input("we", &[true]).unwrap();
        twin.step();
        assert_eq!(sim.state_hash(), twin.state_hash());
    }
}
