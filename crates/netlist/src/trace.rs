//! Output traces and golden-run comparison.

use std::collections::BTreeMap;

/// A cycle-by-cycle record of the circuit's primary outputs.
///
/// Experiments capture one trace per run; comparing a faulty trace against
/// the golden (fault-free) trace is the basis of the paper's
/// Failure / Latent / Silent classification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutputTrace {
    /// Observed ports, in capture order.
    ports: Vec<String>,
    /// One row per cycle; each row holds one packed value per port.
    rows: Vec<Vec<u64>>,
}

impl OutputTrace {
    /// Creates an empty trace observing the given ports.
    pub fn new(ports: Vec<String>) -> Self {
        OutputTrace {
            ports,
            rows: Vec::new(),
        }
    }

    /// Ports observed by this trace.
    pub fn ports(&self) -> &[String] {
        &self.ports
    }

    /// Appends one cycle of observations (one value per port, in port
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have one entry per observed port.
    pub fn push_cycle(&mut self, values: Vec<u64>) {
        assert_eq!(
            values.len(),
            self.ports.len(),
            "one value per observed port"
        );
        self.rows.push(values);
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no cycles have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded value of `port` at `cycle`, if present.
    pub fn value_at(&self, cycle: usize, port: &str) -> Option<u64> {
        let col = self.ports.iter().position(|p| p == port)?;
        self.rows.get(cycle).map(|r| r[col])
    }

    /// All recorded port values at `cycle` (in port order), if present.
    ///
    /// This is the cheap per-cycle comparison the fast experiment path
    /// uses to track divergence from the golden trace without building a
    /// trace of its own.
    pub fn row(&self, cycle: usize) -> Option<&[u64]> {
        self.rows.get(cycle).map(std::vec::Vec::as_slice)
    }

    /// Compares this (faulty) trace against a golden trace.
    pub fn diff(&self, golden: &OutputTrace) -> TraceDiff {
        if self.ports != golden.ports {
            return TraceDiff {
                first_mismatch: Some(0),
                mismatching_cycles: self.rows.len().max(golden.rows.len()),
                per_port: BTreeMap::new(),
            };
        }
        let mut first = None;
        let mut count = 0usize;
        let mut per_port: BTreeMap<String, usize> = BTreeMap::new();
        let n = self.rows.len().max(golden.rows.len());
        for cycle in 0..n {
            let (a, b) = (self.rows.get(cycle), golden.rows.get(cycle));
            let equal = a == b && a.is_some();
            if !equal {
                if first.is_none() {
                    first = Some(cycle);
                }
                count += 1;
                if let (Some(a), Some(b)) = (a, b) {
                    for (col, port) in self.ports.iter().enumerate() {
                        if a[col] != b[col] {
                            *per_port.entry(port.clone()).or_default() += 1;
                        }
                    }
                }
            }
        }
        TraceDiff {
            first_mismatch: first,
            mismatching_cycles: count,
            per_port,
        }
    }
}

/// Result of comparing a faulty trace with the golden trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// First cycle whose observations differ, if any.
    pub first_mismatch: Option<usize>,
    /// Total number of differing cycles.
    pub mismatching_cycles: usize,
    /// Differing-cycle count per port.
    pub per_port: BTreeMap<String, usize>,
}

impl TraceDiff {
    /// True if the traces were identical.
    pub fn identical(&self) -> bool {
        self.first_mismatch.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_have_no_diff() {
        let mut a = OutputTrace::new(vec!["p".into()]);
        a.push_cycle(vec![1]);
        a.push_cycle(vec![2]);
        let b = a.clone();
        assert!(a.diff(&b).identical());
    }

    #[test]
    fn diff_reports_first_mismatch_and_port() {
        let mut a = OutputTrace::new(vec!["p".into(), "q".into()]);
        let mut b = OutputTrace::new(vec!["p".into(), "q".into()]);
        a.push_cycle(vec![1, 1]);
        b.push_cycle(vec![1, 1]);
        a.push_cycle(vec![2, 1]);
        b.push_cycle(vec![3, 1]);
        let d = a.diff(&b);
        assert_eq!(d.first_mismatch, Some(1));
        assert_eq!(d.mismatching_cycles, 1);
        assert_eq!(d.per_port.get("p"), Some(&1));
        assert_eq!(d.per_port.get("q"), None);
    }

    #[test]
    fn length_mismatch_is_a_diff() {
        let mut a = OutputTrace::new(vec!["p".into()]);
        let mut b = OutputTrace::new(vec!["p".into()]);
        a.push_cycle(vec![1]);
        a.push_cycle(vec![1]);
        b.push_cycle(vec![1]);
        assert!(!a.diff(&b).identical());
    }
}
