//! Netlist resource statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::{Cell, UnitTag};
use crate::netlist::Netlist;

/// Resource usage summary of a netlist.
///
/// The paper reports its 8051 model at 637 FFs and 5310 LUTs on a
/// Virtex 1000; these statistics let experiments report the equivalent
/// figures for our model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of LUT cells.
    pub luts: usize,
    /// Number of flip-flops.
    pub ffs: usize,
    /// Number of memory blocks.
    pub rams: usize,
    /// Total memory capacity in bits.
    pub memory_bits: usize,
    /// Number of nets.
    pub nets: usize,
    /// LUT count per unit tag.
    pub luts_per_unit: BTreeMap<UnitTag, usize>,
    /// Flip-flop count per unit tag.
    pub ffs_per_unit: BTreeMap<UnitTag, usize>,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            nets: netlist.net_count(),
            ..Default::default()
        };
        for (i, cell) in netlist.cells().iter().enumerate() {
            let unit = netlist.unit(crate::CellId::from_index(i));
            match cell {
                Cell::Lut(_) => {
                    s.luts += 1;
                    *s.luts_per_unit.entry(unit).or_default() += 1;
                }
                Cell::Dff(_) => {
                    s.ffs += 1;
                    *s.ffs_per_unit.entry(unit).or_default() += 1;
                }
                Cell::Ram(r) => {
                    s.rams += 1;
                    s.memory_bits += r.capacity_bits();
                }
            }
        }
        s
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} LUTs, {} FFs, {} memories ({} bits), {} nets",
            self.luts, self.ffs, self.rams, self.memory_bits, self.nets
        )?;
        for (unit, n) in &self.luts_per_unit {
            let ffs = self.ffs_per_unit.get(unit).copied().unwrap_or(0);
            writeln!(f, "  {unit}: {n} LUTs, {ffs} FFs")?;
        }
        Ok(())
    }
}
