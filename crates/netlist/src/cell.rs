//! Netlist cells: LUTs, flip-flops and memory blocks.

use std::fmt;

use crate::net::NetId;

/// Identifier of a cell within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Returns the raw index of this cell (dense, `0..n_cells`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `CellId` from a raw index (see [`crate::NetId::from_index`]).
    pub fn from_index(index: usize) -> Self {
        CellId(index as u32)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Functional unit a cell belongs to, used for region-constrained placement
/// and for targeting fault-injection campaigns at a specific unit (the
/// paper's ALU / MEM / FSM / register-file split of the 8051 model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum UnitTag {
    /// No specific unit (glue logic).
    #[default]
    Glue,
    /// Register file and special-function registers.
    Registers,
    /// Arithmetic logic unit (purely combinational in the 8051 model).
    Alu,
    /// Memory control unit.
    MemCtl,
    /// Finite state machine / instruction sequencer.
    Fsm,
    /// Embedded memory blocks (internal RAM, ROM).
    Memory,
}

impl UnitTag {
    /// All unit tags, in a stable order.
    pub const ALL: [UnitTag; 6] = [
        UnitTag::Glue,
        UnitTag::Registers,
        UnitTag::Alu,
        UnitTag::MemCtl,
        UnitTag::Fsm,
        UnitTag::Memory,
    ];

    /// Short display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            UnitTag::Glue => "GLUE",
            UnitTag::Registers => "REG",
            UnitTag::Alu => "ALU",
            UnitTag::MemCtl => "MEM",
            UnitTag::Fsm => "FSM",
            UnitTag::Memory => "BRAM",
        }
    }
}

impl fmt::Display for UnitTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `k`-input look-up table with `k <= 4`.
///
/// The truth table is stored LSB-first: output for input combination
/// `(i3, i2, i1, i0)` is bit `i3*8 + i2*4 + i1*2 + i0` of `table`. Unused
/// input positions must be `None` and their table bits replicated so the
/// function is independent of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutCell {
    /// Input nets, up to four. `None` marks an unused pin.
    pub inputs: [Option<NetId>; 4],
    /// 16-bit truth table, LSB-first.
    pub table: u16,
    /// Output net (driven exclusively by this LUT).
    pub output: NetId,
}

impl LutCell {
    /// Number of connected inputs.
    pub fn arity(&self) -> usize {
        self.inputs.iter().filter(|i| i.is_some()).count()
    }

    /// Evaluates the truth table for the given input values.
    ///
    /// Values for unused pins are ignored (the table must be padded so the
    /// result does not depend on them; [`crate::NetlistBuilder`] guarantees
    /// this for the LUTs it creates).
    pub fn eval(&self, values: [bool; 4]) -> bool {
        let mut idx = 0usize;
        for (bit, value) in values.iter().enumerate() {
            if *value {
                idx |= 1 << bit;
            }
        }
        (self.table >> idx) & 1 == 1
    }

    /// Evaluates the truth table on four lane words at once: bit `l` of the
    /// result is `eval` applied to bit `l` of each input word. See
    /// [`eval_table_word`].
    pub fn eval_word(&self, values: [u64; 4]) -> u64 {
        eval_table_word(self.table, values[0], values[1], values[2], values[3])
    }
}

/// Broadcasts truth-table bit 0 of `bit` across all 64 lanes
/// (`0 → 0x0000…`, `1 → 0xFFFF…`).
#[inline(always)]
fn table_bit(bit: u16) -> u64 {
    0u64.wrapping_sub((bit & 1) as u64)
}

/// Evaluates a 16-bit LSB-first truth table on four 64-lane input words.
///
/// This is the bit-parallel (SIMD-within-a-register) form of
/// [`LutCell::eval`]: bit `l` of the returned word is the table output for
/// input combination `(d, c, b, a)` taken from bit `l` of each input word.
/// The table is expanded into a branch-free mux (Shannon) tree — eight
/// two-way muxes selected by `a`, four by `b`, two by `c`, one by `d` — so
/// one call evaluates the LUT for 64 independent experiments.
#[inline]
pub fn eval_table_word(table: u16, a: u64, b: u64, c: u64, d: u64) -> u64 {
    // Level 1: collapse the `a` axis — 8 muxes over adjacent table bits.
    let mut m = [0u64; 8];
    for (j, slot) in m.iter_mut().enumerate() {
        let lo = table_bit(table >> (2 * j));
        let hi = table_bit(table >> (2 * j + 1));
        *slot = (lo & !a) | (hi & a);
    }
    // Level 2: collapse `b`.
    let n0 = (m[0] & !b) | (m[1] & b);
    let n1 = (m[2] & !b) | (m[3] & b);
    let n2 = (m[4] & !b) | (m[5] & b);
    let n3 = (m[6] & !b) | (m[7] & b);
    // Level 3: collapse `c`; level 4: collapse `d`.
    let p0 = (n0 & !c) | (n1 & c);
    let p1 = (n2 & !c) | (n3 & c);
    (p0 & !d) | (p1 & d)
}

/// A D-type flip-flop, clocked by the single implicit global clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DffCell {
    /// Data input net.
    pub d: NetId,
    /// Output net (the stored state).
    pub q: NetId,
    /// Power-on / reset value.
    pub init: bool,
    /// Human-readable name (HDL register name plus bit index), used by the
    /// fault-location process to aim campaigns at specific registers.
    pub name: String,
}

/// A memory block (RAM or ROM).
///
/// Reads are asynchronous (`dout` follows `addr` combinationally), writes
/// are synchronous on the global clock edge when `write_enable` is high.
/// ROMs are RAMs whose `write_enable` is absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RamCell {
    /// Address input nets, LSB first; depth is `2^addr.len()`.
    pub addr: Vec<NetId>,
    /// Data input nets (write port), empty for ROMs.
    pub din: Vec<NetId>,
    /// Data output nets (read port), LSB first.
    pub dout: Vec<NetId>,
    /// Write-enable net; `None` for ROMs.
    pub write_enable: Option<NetId>,
    /// Initial contents, one word per address (LSB-first bit packing into
    /// `u64`; width is `dout.len()` and must be <= 64).
    pub init: Vec<u64>,
    /// Human-readable name.
    pub name: String,
}

impl RamCell {
    /// Number of addressable words.
    pub fn depth(&self) -> usize {
        1usize << self.addr.len()
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.dout.len()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.depth() * self.width()
    }

    /// True if this memory has no write port.
    pub fn is_rom(&self) -> bool {
        self.write_enable.is_none()
    }
}

/// A netlist cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// Combinational look-up table.
    Lut(LutCell),
    /// Sequential flip-flop.
    Dff(DffCell),
    /// Memory block.
    Ram(RamCell),
}

impl Cell {
    /// Nets driven by this cell.
    pub fn outputs(&self) -> Vec<NetId> {
        match self {
            Cell::Lut(l) => vec![l.output],
            Cell::Dff(d) => vec![d.q],
            Cell::Ram(r) => r.dout.clone(),
        }
    }

    /// Nets read by this cell.
    pub fn inputs(&self) -> Vec<NetId> {
        match self {
            Cell::Lut(l) => l.inputs.iter().flatten().copied().collect(),
            Cell::Dff(d) => vec![d.d],
            Cell::Ram(r) => {
                let mut v = r.addr.clone();
                v.extend_from_slice(&r.din);
                v.extend(r.write_enable);
                v
            }
        }
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Cell::Lut(_) => "LUT",
            Cell::Dff(_) => "DFF",
            Cell::Ram(_) => "RAM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_table_word_matches_scalar_eval_for_every_index() {
        // A spread of table shapes: and4, or4, xor4, mux-ish, constants.
        for table in [0x8000u16, 0xFFFE, 0x6996, 0xCACA, 0x0000, 0xFFFF, 0x1234] {
            let lut = LutCell {
                inputs: [None; 4],
                table,
                output: NetId::from_index(0),
            };
            // Drive each lane with a different input combination: lane l
            // gets combination (l % 16), so one word call covers the whole
            // truth table four times over.
            let mut w = [0u64; 4];
            for lane in 0..64u64 {
                for (pin, word) in w.iter_mut().enumerate() {
                    *word |= ((lane >> pin) & 1) << lane;
                }
            }
            let out = eval_table_word(table, w[0], w[1], w[2], w[3]);
            for lane in 0..64u64 {
                let vals = [
                    (lane & 1) != 0,
                    (lane >> 1) & 1 != 0,
                    (lane >> 2) & 1 != 0,
                    (lane >> 3) & 1 != 0,
                ];
                assert_eq!(
                    (out >> lane) & 1 == 1,
                    lut.eval(vals),
                    "table {table:#06x} lane {lane}"
                );
            }
        }
    }
}
