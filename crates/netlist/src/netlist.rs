//! The netlist container and its validation.

use std::collections::HashMap;

use crate::cell::{Cell, CellId, UnitTag};
use crate::error::NetlistError;
use crate::net::{NetId, PortDir};
use crate::stats::NetlistStats;

/// A primary port of the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within the netlist.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bit nets, LSB first.
    pub bits: Vec<NetId>,
}

/// A validated, technology-mapped netlist.
///
/// Construct with [`crate::NetlistBuilder`]; a `Netlist` is immutable once
/// built. See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    n_nets: u32,
    cells: Vec<Cell>,
    units: Vec<UnitTag>,
    ports: Vec<Port>,
    port_index: HashMap<String, usize>,
    driver: Vec<Option<CellId>>,
}

impl Netlist {
    pub(crate) fn from_parts(
        name: String,
        n_nets: u32,
        cells: Vec<Cell>,
        units: Vec<UnitTag>,
        ports: Vec<Port>,
    ) -> Result<Self, NetlistError> {
        let mut port_index = HashMap::new();
        for (i, p) in ports.iter().enumerate() {
            if port_index.insert(p.name.clone(), i).is_some() {
                return Err(NetlistError::DuplicatePort(p.name.clone()));
            }
        }
        let mut driver: Vec<Option<CellId>> = vec![None; n_nets as usize];
        let mut driven_by_input = vec![false; n_nets as usize];
        for p in &ports {
            if p.dir == PortDir::Input {
                for &b in &p.bits {
                    driven_by_input[b.index()] = true;
                }
            }
        }
        for (ci, cell) in cells.iter().enumerate() {
            for out in cell.outputs() {
                let slot = &mut driver[out.index()];
                if slot.is_some() || driven_by_input[out.index()] {
                    return Err(NetlistError::MultipleDrivers(out));
                }
                *slot = Some(CellId(ci as u32));
            }
        }
        for (ni, d) in driver.iter().enumerate() {
            if d.is_none() && !driven_by_input[ni] {
                return Err(NetlistError::Undriven(NetId(ni as u32)));
            }
        }
        let nl = Netlist {
            name,
            n_nets,
            cells,
            units,
            ports,
            port_index,
            driver,
        };
        // Reject combinational cycles up front so every consumer can assume
        // a valid topological order exists.
        crate::levelize(&nl)?;
        Ok(nl)
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets. Net indices are dense in `0..net_count()`.
    pub fn net_count(&self) -> usize {
        self.n_nets as usize
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The unit tag of the given cell.
    pub fn unit(&self, id: CellId) -> UnitTag {
        self.units[id.index()]
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Result<&Port, NetlistError> {
        self.port_index
            .get(name)
            .map(|&i| &self.ports[i])
            .ok_or_else(|| NetlistError::UnknownPort(name.to_string()))
    }

    /// The cell driving `net`, or `None` if the net is a primary input.
    pub fn driver(&self, net: NetId) -> Option<CellId> {
        self.driver.get(net.index()).copied().flatten()
    }

    /// Ids of all flip-flop cells.
    pub fn dff_ids(&self) -> Vec<CellId> {
        self.cells_of(|c| matches!(c, Cell::Dff(_)))
    }

    /// Ids of all LUT cells.
    pub fn lut_ids(&self) -> Vec<CellId> {
        self.cells_of(|c| matches!(c, Cell::Lut(_)))
    }

    /// Ids of all memory cells.
    pub fn ram_ids(&self) -> Vec<CellId> {
        self.cells_of(|c| matches!(c, Cell::Ram(_)))
    }

    fn cells_of(&self, pred: impl Fn(&Cell) -> bool) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| pred(c))
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }

    /// Finds a flip-flop by its register name.
    pub fn dff_by_name(&self, name: &str) -> Result<CellId, NetlistError> {
        self.cells
            .iter()
            .position(|c| matches!(c, Cell::Dff(d) if d.name == name))
            .map(CellId::from_index)
            .ok_or_else(|| NetlistError::UnknownRegister(name.to_string()))
    }

    /// Finds a memory by name.
    pub fn ram_by_name(&self, name: &str) -> Result<CellId, NetlistError> {
        self.cells
            .iter()
            .position(|c| matches!(c, Cell::Ram(r) if r.name == name))
            .map(CellId::from_index)
            .ok_or_else(|| NetlistError::UnknownMemory(name.to_string()))
    }

    /// Flip-flops whose register name starts with `prefix`, in bit order.
    ///
    /// Register bits are named `name[i]`, so `dffs_with_prefix("acc")`
    /// returns the accumulator's flip-flops.
    pub fn dffs_with_prefix(&self, prefix: &str) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Cell::Dff(d) if d.name.starts_with(prefix)))
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }

    /// Computes resource statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }
}
