//! Bit-parallel batch simulator: 64 experiments per `u64` word.
//!
//! Every net holds a `u64` in which **lane 0 is the golden run** and lanes
//! 1..=63 are independent faulty experiments. LUT evaluation is the
//! branch-free mux expansion of the truth table over four input words
//! ([`crate::cell::eval_table_word`]), flip-flop state and memory contents
//! are per-lane words, and forces carry a lane mask
//! ([`LaneForce`]) so each experiment's injection acts only on its own
//! lane. One `settle`/`clock_edge` pass therefore advances the golden run
//! *and* 63 faulty machines at the cost of one word-level sweep of the
//! netlist — the SIMD-within-a-register analogue of the autonomous-
//! emulation batching that gives FADES-class frameworks their throughput.
//!
//! Divergence detection is one XOR against a broadcast of lane 0 per
//! traced net ([`BatchSimulator::divergence`]); full sequential-state
//! divergence ([`BatchSimulator::state_divergence`]) supports the
//! retire-and-refill policy of the campaign layer: a lane whose state word
//! reconverges with lane 0 can be retired and reloaded with the next
//! pending experiment.

use crate::cell::{Cell, CellId};
use crate::error::NetlistError;
use crate::force::LaneForce;
use crate::levelize::{levelize, LevelizeResult};
use crate::net::{NetId, PortDir};
use crate::netlist::Netlist;

/// Broadcasts bit 0 (the golden lane) of `w` across all 64 lanes.
#[inline(always)]
pub fn broadcast_lane0(w: u64) -> u64 {
    0u64.wrapping_sub(w & 1)
}

/// True if all 64 lanes of `w` hold the same value.
#[inline(always)]
fn uniform(w: u64) -> bool {
    w == 0 || w == u64::MAX
}

/// Cycle-accurate bit-parallel simulator over a netlist.
///
/// The layout mirrors [`crate::Simulator`] exactly, with every `bool`
/// widened to a 64-lane `u64`; with no forces active all lanes compute
/// the identical golden run.
#[derive(Debug, Clone)]
pub struct BatchSimulator<'n> {
    netlist: &'n Netlist,
    level: LevelizeResult,
    /// Lane words per net.
    values: Vec<u64>,
    /// Flip-flop lane words, indexed by cell index.
    ff_state: Vec<u64>,
    /// Memory lane words, indexed by cell index then `addr * width + bit`.
    mem: Vec<Vec<u64>>,
    /// Active lane-masked forces, in application order (later forces
    /// shadow earlier ones on overlapping lanes of the same net).
    forces: Vec<LaneForce>,
    /// Per-net flag: at least one force targets this net.
    forced: Vec<bool>,
    cycle: u64,
}

impl<'n> BatchSimulator<'n> {
    /// Creates a batch simulator with all lanes at their power-on values.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized.
    pub fn new(netlist: &'n Netlist) -> Result<Self, NetlistError> {
        let level = levelize(netlist)?;
        let mut sim = BatchSimulator {
            netlist,
            level,
            values: vec![0; netlist.net_count()],
            ff_state: vec![0; netlist.cell_count()],
            mem: vec![Vec::new(); netlist.cell_count()],
            forces: Vec::new(),
            forced: vec![false; netlist.net_count()],
            cycle: 0,
        };
        sim.reset();
        Ok(sim)
    }

    /// Restores every lane's flip-flops and memories to their power-on
    /// values and clears forces and the cycle counter. Input values are
    /// kept.
    pub fn reset(&mut self) {
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell {
                Cell::Dff(d) => self.ff_state[i] = broadcast_lane0(d.init as u64),
                Cell::Ram(r) => {
                    let width = r.width();
                    let m = &mut self.mem[i];
                    m.clear();
                    m.resize(r.depth() * width, 0);
                    for (addr, &word) in r.init.iter().enumerate() {
                        for bit in 0..width {
                            m[addr * width + bit] = broadcast_lane0(word >> bit);
                        }
                    }
                }
                Cell::Lut(_) => {}
            }
        }
        self.clear_forces();
        self.cycle = 0;
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Current cycle count (number of clock edges since reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives an input port with the same value on every lane.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::Simulator::set_input`].
    pub fn set_input(&mut self, name: &str, bits: &[bool]) -> Result<(), NetlistError> {
        let port = self.netlist.port(name)?;
        if port.dir != PortDir::Input {
            return Err(NetlistError::PortDirection {
                name: name.to_string(),
                actual: port.dir,
            });
        }
        if port.bits.len() != bits.len() {
            return Err(NetlistError::WidthMismatch {
                name: name.to_string(),
                expected: port.bits.len(),
                actual: bits.len(),
            });
        }
        for (net, &v) in port.bits.clone().iter().zip(bits) {
            self.values[net.index()] = broadcast_lane0(v as u64);
        }
        Ok(())
    }

    /// Reads one lane of an output port as an integer (at most 64 bits).
    /// Call after [`settle`](Self::settle).
    ///
    /// # Errors
    ///
    /// Returns an error if the port is unknown or is an input.
    pub fn output_u64_lane(&self, name: &str, lane: usize) -> Result<u64, NetlistError> {
        let port = self.netlist.port(name)?;
        if port.dir != PortDir::Output {
            return Err(NetlistError::PortDirection {
                name: name.to_string(),
                actual: port.dir,
            });
        }
        let mut v = 0u64;
        for (i, n) in port.bits.iter().enumerate().take(64) {
            v |= ((self.values[n.index()] >> lane) & 1) << i;
        }
        Ok(v)
    }

    /// Lanes whose value on any of `nets` differs from the golden lane 0
    /// (bit `l` set = lane `l` diverged). One XOR per traced net.
    pub fn divergence(&self, nets: &[NetId]) -> u64 {
        let mut d = 0u64;
        for n in nets {
            let w = self.values[n.index()];
            d |= w ^ broadcast_lane0(w);
        }
        d
    }

    /// Lanes whose value on an output port differs from the golden lane 0.
    ///
    /// # Errors
    ///
    /// Returns an error if the port is unknown or is an input.
    pub fn port_divergence(&self, name: &str) -> Result<u64, NetlistError> {
        let port = self.netlist.port(name)?;
        if port.dir != PortDir::Output {
            return Err(NetlistError::PortDirection {
                name: name.to_string(),
                actual: port.dir,
            });
        }
        Ok(self.divergence(&port.bits))
    }

    /// Lanes whose sequential state (flip-flops and memories) differs from
    /// the golden lane 0. A zero bit means the lane has reconverged and
    /// can retire; this scans all state, so callers on hot paths should
    /// rate-limit it or track flip-flop words incrementally.
    pub fn state_divergence(&self) -> u64 {
        let mut d = 0u64;
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell {
                Cell::Dff(_) => {
                    let w = self.ff_state[i];
                    d |= w ^ broadcast_lane0(w);
                }
                Cell::Ram(_) => {
                    for &w in &self.mem[i] {
                        d |= w ^ broadcast_lane0(w);
                    }
                }
                Cell::Lut(_) => {}
            }
        }
        d
    }

    /// Current lane word of a flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a flip-flop.
    pub fn ff_word(&self, id: CellId) -> u64 {
        assert!(
            matches!(self.netlist.cell(id), Cell::Dff(_)),
            "{id} is not a flip-flop"
        );
        self.ff_state[id.index()]
    }

    /// Flips a flip-flop's stored bit on the given lanes (takes effect at
    /// the next [`settle`](Self::settle)).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a flip-flop.
    pub fn flip_ff_lanes(&mut self, id: CellId, lane_mask: u64) {
        assert!(
            matches!(self.netlist.cell(id), Cell::Dff(_)),
            "{id} is not a flip-flop"
        );
        self.ff_state[id.index()] ^= lane_mask;
    }

    /// Reads one memory word on one lane.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory or the location is out of range.
    pub fn mem_word_lane(&self, id: CellId, addr: usize, lane: usize) -> u64 {
        let Cell::Ram(r) = self.netlist.cell(id) else {
            panic!("{id} is not a memory");
        };
        let width = r.width();
        let mut v = 0u64;
        for bit in 0..width {
            v |= ((self.mem[id.index()][addr * width + bit] >> lane) & 1) << bit;
        }
        v
    }

    /// Flips one stored memory bit on the given lanes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory or the location is out of range.
    pub fn flip_mem_bit_lanes(&mut self, id: CellId, addr: usize, bit: usize, lane_mask: u64) {
        let Cell::Ram(r) = self.netlist.cell(id) else {
            panic!("{id} is not a memory");
        };
        let width = r.width();
        assert!(bit < width, "bit {bit} out of range for {id}");
        self.mem[id.index()][addr * width + bit] ^= lane_mask;
    }

    /// Adds a lane-masked force; it applies until
    /// [`release`](Self::release) or [`clear_forces`](Self::clear_forces).
    pub fn force(&mut self, force: LaneForce) {
        self.forced[force.net.index()] = true;
        self.forces.push(force);
    }

    /// Removes all forces on the given net, on every lane.
    pub fn release(&mut self, net: NetId) {
        self.forces.retain(|f| f.net != net);
        self.forced[net.index()] = false;
    }

    /// Removes forces on the given net only where they act on `lane_mask`
    /// lanes; a force whose mask becomes empty is dropped.
    pub fn release_lanes(&mut self, net: NetId, lane_mask: u64) {
        for f in &mut self.forces {
            if f.net == net {
                f.lane_mask &= !lane_mask;
            }
        }
        self.forces.retain(|f| f.lane_mask != 0);
        self.forced[net.index()] = self.forces.iter().any(|f| f.net == net);
    }

    /// Removes every active force.
    pub fn clear_forces(&mut self) {
        for f in &self.forces {
            self.forced[f.net.index()] = false;
        }
        self.forces.clear();
    }

    /// Number of currently active forces.
    pub fn force_count(&self) -> usize {
        self.forces.len()
    }

    /// Applies every force targeting `net` to the driven word, in
    /// application order: each force replaces the *driven* value on its
    /// lanes, so on overlapping lanes the newest force wins — the lane
    /// generalisation of the scalar simulator's newest-force-wins rule.
    #[inline]
    fn forced_word(&self, net: NetId, driven: u64) -> u64 {
        let mut out = driven;
        for f in &self.forces {
            if f.net == net {
                out = (out & !f.lane_mask) | (f.kind.apply_word(driven) & f.lane_mask);
            }
        }
        out
    }

    /// Applies forces to nets that are *not* recomputed during LUT
    /// evaluation (primary inputs and flip-flop outputs); combinational
    /// outputs are handled inline during [`settle`](Self::settle).
    fn apply_forces(&mut self) {
        for i in 0..self.forces.len() {
            let f = self.forces[i];
            let driven_by_comb = self
                .netlist
                .driver(f.net)
                .is_some_and(|c| !matches!(self.netlist.cell(c), Cell::Dff(_)));
            if !driven_by_comb {
                let w = self.values[f.net.index()];
                self.values[f.net.index()] =
                    (w & !f.lane_mask) | (f.kind.apply_word(w) & f.lane_mask);
            }
        }
    }

    /// Propagates values through the combinational fabric on all 64 lanes.
    pub fn settle(&mut self) {
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            if let Cell::Dff(d) = cell {
                self.values[d.q.index()] = self.ff_state[i];
            }
        }
        self.apply_forces();
        let any_forces = !self.forces.is_empty();
        for idx in 0..self.level.order.len() {
            let id = self.level.order[idx];
            match self.netlist.cell(id) {
                Cell::Lut(l) => {
                    let mut vals = [0u64; 4];
                    for (pin, input) in l.inputs.iter().enumerate() {
                        if let Some(n) = input {
                            vals[pin] = self.values[n.index()];
                        }
                    }
                    let mut out = l.eval_word(vals);
                    if any_forces && self.forced[l.output.index()] {
                        out = self.forced_word(l.output, out);
                    }
                    self.values[l.output.index()] = out;
                }
                Cell::Ram(r) => {
                    let width = r.width();
                    let m = &self.mem[id.index()];
                    if self.addr_is_uniform(&r.addr) {
                        // All lanes read the same address: the stored lane
                        // words are the outputs.
                        let addr = self.addr_lane(&r.addr, 0);
                        for (bit, out) in r.dout.iter().enumerate() {
                            let mut v = m[addr * width + bit];
                            if any_forces && self.forced[out.index()] {
                                v = self.forced_word(*out, v);
                            }
                            self.values[out.index()] = v;
                        }
                    } else {
                        // Per-lane gather: lanes have diverged on the
                        // address bus.
                        let mut words = [0u64; 64];
                        for (lane, w) in words.iter_mut().enumerate() {
                            let addr = self.addr_lane(&r.addr, lane);
                            for bit in 0..width {
                                *w |= ((m[addr * width + bit] >> lane) & 1) << bit;
                            }
                        }
                        for (bit, out) in r.dout.iter().enumerate() {
                            let mut v = 0u64;
                            for (lane, w) in words.iter().enumerate() {
                                v |= ((w >> bit) & 1) << lane;
                            }
                            if any_forces && self.forced[out.index()] {
                                v = self.forced_word(*out, v);
                            }
                            self.values[out.index()] = v;
                        }
                    }
                }
                Cell::Dff(_) => unreachable!("levelize only yields combinational cells"),
            }
        }
        fades_telemetry::sim::record_settle(self.level.order.len() as u64);
    }

    fn addr_is_uniform(&self, addr: &[NetId]) -> bool {
        addr.iter().all(|n| uniform(self.values[n.index()]))
    }

    fn addr_lane(&self, addr: &[NetId], lane: usize) -> usize {
        let mut a = 0usize;
        for (bit, n) in addr.iter().enumerate() {
            a |= (((self.values[n.index()] >> lane) & 1) as usize) << bit;
        }
        a
    }

    /// Applies the clock edge on all lanes: flip-flops capture `D`,
    /// memories perform lane-masked enabled writes. Values must be settled
    /// first. Like the scalar interpreter, the edge is single-phase: it
    /// reads only the frozen combinational `values` and mutates only
    /// `ff_state` / `mem`.
    pub fn clock_edge(&mut self) {
        for (i, cell) in self.netlist.cells().iter().enumerate() {
            match cell {
                Cell::Dff(d) => self.ff_state[i] = self.values[d.d.index()],
                Cell::Ram(r) => {
                    let Some(we) = r.write_enable else { continue };
                    let we_w = self.values[we.index()];
                    if we_w == 0 {
                        continue;
                    }
                    let width = r.width();
                    if we_w == u64::MAX && self.addr_is_uniform(&r.addr) {
                        // Every lane writes the same address.
                        let addr = self.addr_lane(&r.addr, 0);
                        for (bit, n) in r.din.iter().enumerate() {
                            self.mem[i][addr * width + bit] = self.values[n.index()];
                        }
                    } else {
                        let mut lanes = we_w;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let addr = self.addr_lane(&r.addr, lane);
                            let bit_mask = 1u64 << lane;
                            for (bit, n) in r.din.iter().enumerate() {
                                let din = (self.values[n.index()] >> lane) & 1;
                                let w = &mut self.mem[i][addr * width + bit];
                                *w = (*w & !bit_mask) | (din << lane);
                            }
                        }
                    }
                }
                Cell::Lut(_) => {}
            }
        }
        self.cycle += 1;
        fades_telemetry::sim::record_clock_edge();
    }

    /// Runs one full cycle: settle then clock edge.
    pub fn step(&mut self) {
        self.settle();
        self.clock_edge();
    }

    /// Runs `n` full cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::force::Force;
    use crate::interp::Simulator;
    use crate::NetlistBuilder;

    fn counter(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("counter");
        let mut qs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..width {
            let (q, h) = b.dff_placeholder(format!("cnt[{i}]"), false);
            qs.push(q);
            handles.push(h);
        }
        let mut carry = b.const1();
        for (i, h) in handles.into_iter().enumerate() {
            let d = b.xor2(qs[i], carry);
            carry = b.and2(carry, qs[i]);
            b.dff_connect(h, d);
        }
        b.output("q", &qs);
        b.finish().unwrap()
    }

    #[test]
    fn all_lanes_track_golden_without_forces() {
        let nl = counter(5);
        let mut batch = BatchSimulator::new(&nl).unwrap();
        let mut scalar = Simulator::new(&nl).unwrap();
        for _ in 0..40 {
            batch.settle();
            scalar.settle();
            assert_eq!(batch.port_divergence("q").unwrap(), 0);
            for lane in [0usize, 1, 17, 63] {
                assert_eq!(
                    batch.output_u64_lane("q", lane).unwrap(),
                    scalar.output_u64("q").unwrap()
                );
            }
            batch.clock_edge();
            scalar.clock_edge();
        }
        assert_eq!(batch.state_divergence(), 0);
    }

    #[test]
    fn lane_force_matches_per_lane_scalar_runs() {
        let nl = counter(4);
        let q2 = match nl.cells().iter().find_map(|c| match c {
            Cell::Dff(d) if d.name == "cnt[2]" => Some(d.q),
            _ => None,
        }) {
            Some(q) => q,
            None => panic!("cnt[2] not found"),
        };
        let mut batch = BatchSimulator::new(&nl).unwrap();
        // Lane 3: stuck-at-one on cnt[2]'s output; lane 9: flip it.
        // Injected at cycle 5, released at cycle 8.
        let mut scalars: Vec<Simulator> = (0..64).map(|_| Simulator::new(&nl).unwrap()).collect();
        for cycle in 0..20u64 {
            if cycle == 5 {
                batch.force(LaneForce::stuck(q2, true, 1 << 3));
                batch.force(LaneForce::flip(q2, 1 << 9));
                scalars[3].force(Force::stuck(q2, true));
                scalars[9].force(Force::flip(q2));
            }
            if cycle == 8 {
                batch.release_lanes(q2, (1 << 3) | (1 << 9));
                scalars[3].release(q2);
                scalars[9].release(q2);
            }
            batch.settle();
            let mut expect_div = 0u64;
            for (lane, s) in scalars.iter_mut().enumerate() {
                s.settle();
                assert_eq!(
                    batch.output_u64_lane("q", lane).unwrap(),
                    s.output_u64("q").unwrap(),
                    "cycle {cycle} lane {lane}"
                );
                if s.output_u64("q").unwrap() != scalars_golden(&batch) {
                    expect_div |= 1 << lane;
                }
            }
            assert_eq!(batch.port_divergence("q").unwrap(), expect_div);
            batch.clock_edge();
            for s in scalars.iter_mut() {
                s.clock_edge();
            }
        }

        fn scalars_golden(batch: &BatchSimulator) -> u64 {
            batch.output_u64_lane("q", 0).unwrap()
        }
    }

    #[test]
    fn lane_masked_ram_writes_stay_isolated() {
        let mut b = NetlistBuilder::new("ram");
        let addr = b.input("addr", 3);
        let din = b.input("din", 4);
        let we = b.input("we", 1)[0];
        let dout = b.ram("m", &addr, &din, we, 4, &[]).unwrap();
        b.output("dout", &dout);
        let nl = b.finish().unwrap();
        let ram = nl
            .cells()
            .iter()
            .enumerate()
            .find_map(|(i, c)| matches!(c, Cell::Ram(_)).then(|| CellId::from_index(i)))
            .unwrap();
        let mut batch = BatchSimulator::new(&nl).unwrap();
        let bits = |value: u64, width: usize| -> Vec<bool> {
            (0..width).map(|i| (value >> i) & 1 == 1).collect()
        };
        batch.set_input("addr", &bits(5, 3)).unwrap();
        batch.set_input("din", &bits(0xA, 4)).unwrap();
        batch.set_input("we", &[true]).unwrap();
        batch.step();
        batch.set_input("we", &[false]).unwrap();
        // Flip a stored bit on lane 7 only.
        batch.flip_mem_bit_lanes(ram, 5, 1, 1 << 7);
        batch.settle();
        assert_eq!(batch.output_u64_lane("dout", 0).unwrap(), 0xA);
        assert_eq!(batch.output_u64_lane("dout", 7).unwrap(), 0x8);
        assert_eq!(batch.port_divergence("dout").unwrap(), 1 << 7);
        assert_eq!(batch.state_divergence(), 1 << 7);
        assert_eq!(batch.mem_word_lane(ram, 5, 0), 0xA);
        assert_eq!(batch.mem_word_lane(ram, 5, 7), 0x8);
        // Write the same word again: the faulty lane reconverges.
        batch.set_input("we", &[true]).unwrap();
        batch.step();
        assert_eq!(batch.state_divergence(), 0);
    }
}
