//! Simulator-command forces (the VFIT injection mechanism).

use crate::net::NetId;

/// How a force alters the value of its target net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceKind {
    /// Hold the net at a fixed value.
    Stuck(bool),
    /// Invert whatever value the net's driver produces, every cycle.
    Flip,
}

impl ForceKind {
    /// Applies the force to a driven value.
    pub fn apply(self, driven: bool) -> bool {
        match self {
            ForceKind::Stuck(v) => v,
            ForceKind::Flip => !driven,
        }
    }

    /// Applies the force to all 64 lanes of a driven word at once
    /// (the bit-parallel analogue of [`apply`](Self::apply)).
    pub fn apply_word(self, driven: u64) -> u64 {
        match self {
            ForceKind::Stuck(false) => 0,
            ForceKind::Stuck(true) => u64::MAX,
            ForceKind::Flip => !driven,
        }
    }
}

/// A simulator-command force on a net.
///
/// This models the `force`/`release` commands VHDL simulators expose, which
/// is exactly how the VFIT baseline injects faults: the simulation is
/// stopped at the injection instant, the signal is forced, and the
/// simulation resumes; at fault expiry the signal is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Force {
    /// Target net.
    pub net: NetId,
    /// Effect on the target.
    pub kind: ForceKind,
}

impl Force {
    /// Force the net to a fixed value.
    pub fn stuck(net: NetId, value: bool) -> Self {
        Force {
            net,
            kind: ForceKind::Stuck(value),
        }
    }

    /// Invert the net's driven value.
    pub fn flip(net: NetId) -> Self {
        Force {
            net,
            kind: ForceKind::Flip,
        }
    }

    /// Value the net takes given what its driver produced.
    pub fn value(&self, driven: bool) -> bool {
        self.kind.apply(driven)
    }
}

/// A lane-masked force for the bit-parallel [`crate::BatchSimulator`].
///
/// Identical to [`Force`] except that it only acts on the lanes whose bit
/// is set in `lane_mask`, so each of the 63 concurrent faulty experiments
/// can inject on its own lane without disturbing the golden lane 0 or its
/// neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneForce {
    /// Target net.
    pub net: NetId,
    /// Effect on the target lanes.
    pub kind: ForceKind,
    /// Lanes the force applies to (bit `l` set = lane `l` forced).
    pub lane_mask: u64,
}

impl LaneForce {
    /// Force the net to a fixed value on the given lanes.
    pub fn stuck(net: NetId, value: bool, lane_mask: u64) -> Self {
        LaneForce {
            net,
            kind: ForceKind::Stuck(value),
            lane_mask,
        }
    }

    /// Invert the net's driven value on the given lanes.
    pub fn flip(net: NetId, lane_mask: u64) -> Self {
        LaneForce {
            net,
            kind: ForceKind::Flip,
            lane_mask,
        }
    }

    /// Word the net takes given the driven word: forced lanes see the
    /// force applied to the driven value, other lanes pass through.
    pub fn value_word(&self, driven: u64) -> u64 {
        (driven & !self.lane_mask) | (self.kind.apply_word(driven) & self.lane_mask)
    }
}
