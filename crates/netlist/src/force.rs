//! Simulator-command forces (the VFIT injection mechanism).

use crate::net::NetId;

/// How a force alters the value of its target net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForceKind {
    /// Hold the net at a fixed value.
    Stuck(bool),
    /// Invert whatever value the net's driver produces, every cycle.
    Flip,
}

impl ForceKind {
    /// Applies the force to a driven value.
    pub fn apply(self, driven: bool) -> bool {
        match self {
            ForceKind::Stuck(v) => v,
            ForceKind::Flip => !driven,
        }
    }
}

/// A simulator-command force on a net.
///
/// This models the `force`/`release` commands VHDL simulators expose, which
/// is exactly how the VFIT baseline injects faults: the simulation is
/// stopped at the injection instant, the signal is forced, and the
/// simulation resumes; at fault expiry the signal is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Force {
    /// Target net.
    pub net: NetId,
    /// Effect on the target.
    pub kind: ForceKind,
}

impl Force {
    /// Force the net to a fixed value.
    pub fn stuck(net: NetId, value: bool) -> Self {
        Force {
            net,
            kind: ForceKind::Stuck(value),
        }
    }

    /// Invert the net's driven value.
    pub fn flip(net: NetId) -> Self {
        Force {
            net,
            kind: ForceKind::Flip,
        }
    }

    /// Value the net takes given what its driver produced.
    pub fn value(&self, driven: bool) -> bool {
        self.kind.apply(driven)
    }
}
