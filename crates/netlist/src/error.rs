//! Error type for netlist construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or simulating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A port name was used twice.
    DuplicatePort(String),
    /// A named port does not exist.
    UnknownPort(String),
    /// A port was accessed with the wrong direction.
    PortDirection {
        /// Port name.
        name: String,
        /// Direction the port actually has.
        actual: crate::PortDir,
    },
    /// The bit width supplied for a port did not match its declaration.
    WidthMismatch {
        /// Port name.
        name: String,
        /// Declared width.
        expected: usize,
        /// Supplied width.
        actual: usize,
    },
    /// A net is driven by more than one source.
    MultipleDrivers(crate::NetId),
    /// A net has no driver and is not a primary input.
    Undriven(crate::NetId),
    /// The combinational logic contains a cycle through the given net.
    CombinationalLoop(crate::NetId),
    /// A memory was declared with an unsupported shape.
    BadMemoryShape(String),
    /// A LUT was given more than four inputs.
    TooManyLutInputs(usize),
    /// A named register does not exist.
    UnknownRegister(String),
    /// A named memory does not exist.
    UnknownMemory(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicatePort(n) => write!(f, "duplicate port name `{n}`"),
            NetlistError::UnknownPort(n) => write!(f, "unknown port `{n}`"),
            NetlistError::PortDirection { name, actual } => {
                write!(f, "port `{name}` is an {actual} port")
            }
            NetlistError::WidthMismatch {
                name,
                expected,
                actual,
            } => write!(f, "port `{name}` has width {expected}, got {actual} bits"),
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::Undriven(n) => write!(f, "net {n} has no driver"),
            NetlistError::CombinationalLoop(n) => {
                write!(f, "combinational loop through net {n}")
            }
            NetlistError::BadMemoryShape(m) => write!(f, "bad memory shape: {m}"),
            NetlistError::TooManyLutInputs(n) => {
                write!(f, "LUT declared with {n} inputs, maximum is 4")
            }
            NetlistError::UnknownRegister(n) => write!(f, "unknown register `{n}`"),
            NetlistError::UnknownMemory(n) => write!(f, "unknown memory `{n}`"),
        }
    }
}

impl Error for NetlistError {}
