//! Property-based tests for the netlist layer.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_netlist::{NetlistBuilder, Simulator};
use proptest::prelude::*;

proptest! {
    /// `lut_fn` must synthesise exactly the closure it was given, for any
    /// table and any input pattern, including when constants are folded.
    #[test]
    fn lut_fn_matches_closure(table in any::<u16>(), inputs in any::<[bool; 4]>()) {
        let mut b = NetlistBuilder::new("prop");
        let nets = b.input("in", 4);
        let pins = [nets[0], nets[1], nets[2], nets[3]];
        let f = move |v: &[bool]| {
            let mut idx = 0usize;
            for (i, &bit) in v.iter().enumerate() {
                if bit { idx |= 1 << i; }
            }
            (table >> idx) & 1 == 1
        };
        let out = b.lut_fn(&pins, f);
        b.output("out", &[out]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("in", &inputs).unwrap();
        sim.settle();
        let mut idx = 0usize;
        for (i, &bit) in inputs.iter().enumerate() {
            if bit { idx |= 1 << i; }
        }
        prop_assert_eq!(sim.output_u64("out").unwrap() == 1, (table >> idx) & 1 == 1);
    }

    /// Reduction trees agree with the iterator fold for any width.
    #[test]
    fn reductions_match_fold(bits in proptest::collection::vec(any::<bool>(), 1..12)) {
        let mut b = NetlistBuilder::new("prop");
        let nets = b.input("in", bits.len());
        let and = b.and_all(&nets);
        let or = b.or_all(&nets);
        b.output("and", &[and]);
        b.output("or", &[or]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("in", &bits).unwrap();
        sim.settle();
        prop_assert_eq!(sim.output_u64("and").unwrap() == 1, bits.iter().all(|&x| x));
        prop_assert_eq!(sim.output_u64("or").unwrap() == 1, bits.iter().any(|&x| x));
    }

    /// A RAM behaves as an array under an arbitrary write/read schedule.
    #[test]
    fn ram_matches_reference_array(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..40)
    ) {
        let mut b = NetlistBuilder::new("prop");
        let addr = b.input("addr", 4);
        let din = b.input("din", 8);
        let we_net = b.input("we", 1)[0];
        let dout = b.ram("m", &addr, &din, we_net, 8, &[]).unwrap();
        b.output("dout", &dout);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut reference = [0u8; 16];
        for (addr_v, din_v, we_v) in ops {
            let a = (addr_v & 0xF) as usize;
            let abits: Vec<bool> = (0..4).map(|i| (a >> i) & 1 == 1).collect();
            let dbits: Vec<bool> = (0..8).map(|i| (din_v >> i) & 1 == 1).collect();
            sim.set_input("addr", &abits).unwrap();
            sim.set_input("din", &dbits).unwrap();
            sim.set_input("we", &[we_v]).unwrap();
            sim.settle();
            prop_assert_eq!(sim.output_u64("dout").unwrap(), reference[a] as u64);
            sim.clock_edge();
            if we_v {
                reference[a] = din_v;
            }
        }
    }

    /// Forcing then releasing a net restores fault-free behaviour.
    #[test]
    fn force_release_roundtrip(a in any::<bool>(), forced in any::<bool>()) {
        let mut b = NetlistBuilder::new("prop");
        let x = b.input("x", 1)[0];
        let n = b.not(x);
        b.output("n", &[n]);
        let nl = b.finish().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", &[a]).unwrap();
        sim.settle();
        let clean = sim.output_u64("n").unwrap();
        sim.force(fades_netlist::Force::stuck(n, forced));
        sim.settle();
        prop_assert_eq!(sim.output_u64("n").unwrap() == 1, forced);
        sim.release(n);
        sim.settle();
        prop_assert_eq!(sim.output_u64("n").unwrap(), clean);
    }
}
