//! VFIT-style baseline: simulator-command fault injection on the HDL
//! model.
//!
//! VFIT, the paper's comparison tool, injects faults by driving a VHDL
//! simulator with commands — stop at the injection instant, `force` the
//! target signal or variable, resume, `release` at expiry. This crate
//! reproduces that technique on the `fades-netlist` cycle interpreter: no
//! FPGA is involved; the model executes on the host CPU, which is
//! precisely why it is slow (the paper measured a flat ~21 600 s per
//! 3000-fault campaign regardless of fault model, ~7.2 s per experiment).
//!
//! The delay fault model is intentionally **unsupported**, as in the
//! paper: VFIT requires the model to expose signal delays through generic
//! clauses, which the 8051 model does not (Table 3 shows dashes for
//! delay).
//!
//! # Example
//!
//! ```
//! use fades_vfit::{VfitCampaign, VfitFaultLoad, VfitTargetClass};
//! use fades_core::DurationRange;
//! use fades_mcu8051::{build_soc, workloads, OBSERVED_PORTS};
//!
//! let soc = build_soc(&workloads::bubblesort().rom)?;
//! let campaign = VfitCampaign::new(&soc.netlist, &OBSERVED_PORTS, 1400)?;
//! let load = VfitFaultLoad::bit_flips(VfitTargetClass::AllFfs, DurationRange::SubCycle);
//! let stats = campaign.run(&load, 10, 1)?;
//! assert_eq!(stats.total(), 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod campaign;
mod inject;
#[cfg(test)]
mod tests;
mod time_model;

pub use campaign::{VfitCampaign, VfitStats};
pub use inject::{VfitFault, VfitFaultLoad, VfitTargetClass};
pub use time_model::VfitTimeModel;
