//! Unit tests for the VFIT baseline.

use fades_core::DurationRange;
use fades_rtl::RtlBuilder;

use crate::{VfitCampaign, VfitFaultLoad, VfitTargetClass};

fn counter_netlist() -> fades_netlist::Netlist {
    let mut b = RtlBuilder::new("cnt");
    let r = b.reg("cnt", 8, 0);
    let q = r.q().clone();
    let next = b.add_const(&q, 1);
    b.connect(r, &next);
    b.output("q", &q);
    b.finish().unwrap()
}

#[test]
fn bit_flip_in_counter_always_fails() {
    let nl = counter_netlist();
    let campaign = VfitCampaign::new(&nl, &["q"], 100).unwrap();
    let load = VfitFaultLoad::bit_flips(VfitTargetClass::AllFfs, DurationRange::SubCycle);
    let stats = campaign.run(&load, 12, 3).unwrap();
    assert_eq!(stats.outcomes.failures, 12);
}

#[test]
fn simulation_time_is_flat_across_models_and_durations() {
    let nl = counter_netlist();
    let campaign = VfitCampaign::new(&nl, &["q"], 100).unwrap();
    let flips = VfitFaultLoad::bit_flips(VfitTargetClass::AllFfs, DurationRange::SubCycle);
    let pulses =
        VfitFaultLoad::pulses(VfitTargetClass::CombinationalSignals, DurationRange::MEDIUM);
    let a = campaign.run(&flips, 10, 1).unwrap();
    let b = campaign.run(&pulses, 10, 1).unwrap();
    let ratio = a.mean_seconds_per_fault() / b.mean_seconds_per_fault();
    // Paper: "very similar execution times for any type and length".
    assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
}

#[test]
fn delay_model_is_rejected() {
    let nl = counter_netlist();
    let campaign = VfitCampaign::new(&nl, &["q"], 50).unwrap();
    let mut load =
        VfitFaultLoad::pulses(VfitTargetClass::CombinationalSignals, DurationRange::SHORT);
    load.model = fades_core::FaultModel::Delay;
    assert!(campaign.run(&load, 4, 1).is_err());
}

#[test]
fn oscillating_indetermination_differs_from_fixed() {
    let nl = counter_netlist();
    let campaign = VfitCampaign::new(&nl, &["q"], 100).unwrap();
    let load = VfitFaultLoad::indeterminations(
        VfitTargetClass::AllFfs,
        DurationRange::Cycles(10, 10),
        true,
    );
    let stats = campaign.run(&load, 10, 7).unwrap();
    assert_eq!(stats.total(), 10);
    // Oscillation adds per-cycle commands but the simulation-dominated
    // time stays within a few percent.
    let fixed = VfitFaultLoad::indeterminations(
        VfitTargetClass::AllFfs,
        DurationRange::Cycles(10, 10),
        false,
    );
    let f = campaign.run(&fixed, 10, 7).unwrap();
    assert!(stats.simulation_seconds > f.simulation_seconds);
    assert!(stats.simulation_seconds < f.simulation_seconds * 2.0);
}
