//! VFIT campaign runner.

use fades_core::{CoreError, FaultModel, Outcome, OutcomeStats};
use fades_netlist::{Force, Netlist, OutputTrace, Simulator};
use fades_telemetry::{ExperimentRecord, Recorder, RecorderHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::inject::{command_count, resolve, sample, VfitFault, VfitFaultLoad};
use crate::time_model::VfitTimeModel;

/// Aggregated results of a VFIT campaign.
#[derive(Debug, Clone, Default)]
pub struct VfitStats {
    /// Outcome counts.
    pub outcomes: OutcomeStats,
    /// Modelled simulation time in seconds.
    pub simulation_seconds: f64,
    /// Experiments executed.
    pub n: usize,
}

impl VfitStats {
    /// Experiments executed.
    pub fn total(&self) -> usize {
        self.n
    }

    /// Mean modelled seconds per fault.
    pub fn mean_seconds_per_fault(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.simulation_seconds / self.n as f64
        }
    }
}

/// A prepared VFIT campaign over an HDL model.
///
/// See the crate documentation for an example.
#[derive(Debug)]
pub struct VfitCampaign<'n> {
    netlist: &'n Netlist,
    ports: Vec<String>,
    run_cycles: u64,
    golden_trace: OutputTrace,
    golden_state: Vec<u64>,
    time_model: VfitTimeModel,
}

impl<'n> VfitCampaign<'n> {
    /// Prepares a campaign: captures the golden simulation over
    /// `workload_cycles` plus a small margin.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors (unknown ports, bad netlist).
    pub fn new(
        netlist: &'n Netlist,
        observed_ports: &[&str],
        workload_cycles: u64,
    ) -> Result<Self, CoreError> {
        let ports: Vec<String> = observed_ports
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let run_cycles = workload_cycles + 64;
        let mut sim = Simulator::new(netlist)?;
        let mut trace = OutputTrace::new(ports.clone());
        for _ in 0..run_cycles {
            sim.settle();
            let mut row = Vec::with_capacity(ports.len());
            for p in &ports {
                row.push(sim.output_u64(p)?);
            }
            trace.push_cycle(row);
            sim.clock_edge();
        }
        Ok(VfitCampaign {
            netlist,
            ports,
            run_cycles,
            golden_trace: trace,
            golden_state: sim.state_snapshot(),
            time_model: VfitTimeModel::paper_calibrated(),
        })
    }

    /// The time model used for reporting.
    pub fn time_model(&self) -> &VfitTimeModel {
        &self.time_model
    }

    /// Runs `n_faults` experiments of the given fault load.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTargetSet`] when nothing matches the
    /// target class — including the unsupported delay model.
    pub fn run(
        &self,
        load: &VfitFaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<VfitStats, CoreError> {
        let label = format!("vfit {:?}", load.target);
        self.run_named(&label, load, n_faults, seed)
    }

    /// [`run`](VfitCampaign::run) with an explicit campaign label for the
    /// telemetry sinks.
    ///
    /// # Errors
    ///
    /// See [`run`](VfitCampaign::run).
    pub fn run_named(
        &self,
        label: &str,
        load: &VfitFaultLoad,
        n_faults: usize,
        seed: u64,
    ) -> Result<VfitStats, CoreError> {
        if load.model == FaultModel::Delay {
            // The paper could not compare delay experiments: VFIT needs
            // the model to declare delays via generic clauses.
            return Err(CoreError::EmptyTargetSet(
                "VFIT does not support the delay model on this design".into(),
            ));
        }
        let pool = resolve(self.netlist, &load.target);
        if pool.is_empty() {
            return Err(CoreError::EmptyTargetSet(format!("{:?}", load.target)));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Vec::with_capacity(n_faults);
        for i in 0..n_faults {
            let fault = sample(load, &pool, &mut rng);
            let inject_at = rng.gen_range(0..self.run_cycles - 64);
            let duration = load.duration.sample(&mut rng);
            plan.push((
                fault,
                inject_at,
                duration,
                seed ^ (0xA076_1D64_78BD_642Fu64.wrapping_mul(i as u64 + 1)),
            ));
        }

        let threads = fades_core::worker_threads().min(plan.len().max(1));
        let chunk = plan.len().div_ceil(threads);
        let mut outcomes: Vec<Option<(Outcome, u64)>> = vec![None; plan.len()];
        let recorder = Recorder::new(label, plan.len(), threads);
        let target_label = format!("{:?}", load.target);
        let strategy_label = format!("vfit-{:?}", load.model).to_lowercase();
        crossbeam::thread::scope(|scope| -> Result<(), CoreError> {
            let mut handles = Vec::new();
            for (t, (chunk_plan, chunk_out)) in plan
                .chunks(chunk)
                .zip(outcomes.chunks_mut(chunk))
                .enumerate()
            {
                let rec: RecorderHandle = recorder.handle();
                let target = target_label.as_str();
                let strategy = strategy_label.as_str();
                let base = t * chunk;
                handles.push(scope.spawn(move |_| -> Result<(), CoreError> {
                    for (j, ((fault, at, duration, exp_seed), out)) in
                        chunk_plan.iter().zip(chunk_out.iter_mut()).enumerate()
                    {
                        let _span = fades_telemetry::span!("vfit-experiment");
                        let started = std::time::Instant::now();
                        let mut rng = StdRng::seed_from_u64(*exp_seed);
                        let outcome = self.run_one(fault, *at, *duration, &mut rng)?;
                        let commands = command_count(fault, *duration);
                        rec.record(ExperimentRecord {
                            index: (base + j) as u64,
                            target: target.to_string(),
                            strategy: strategy.to_string(),
                            outcome: outcome.as_str(),
                            modelled_s: self.time_model.experiment_seconds(
                                self.netlist,
                                self.run_cycles,
                                commands,
                            ),
                            wall_us: started.elapsed().as_micros() as u64,
                            ..Default::default()
                        });
                        *out = Some((outcome, commands));
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))?;
            }
            Ok(())
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p))?;
        recorder.finish();

        let mut stats = VfitStats {
            n: plan.len(),
            ..Default::default()
        };
        for entry in outcomes.into_iter().flatten() {
            let (outcome, commands) = entry;
            stats.outcomes.record(outcome);
            stats.simulation_seconds +=
                self.time_model
                    .experiment_seconds(self.netlist, self.run_cycles, commands);
        }
        Ok(stats)
    }

    fn run_one(
        &self,
        fault: &VfitFault,
        inject_at: u64,
        duration: Option<u64>,
        rng: &mut StdRng,
    ) -> Result<Outcome, CoreError> {
        let mut sim = Simulator::new(self.netlist)?;
        let mut trace = OutputTrace::new(self.ports.clone());
        let expiry = duration.map(|d| inject_at + d);
        for cycle in 0..self.run_cycles {
            if cycle == inject_at {
                self.apply(&mut sim, fault, rng);
            } else if let VfitFault::SignalIndet {
                net,
                oscillating: true,
            } = fault
            {
                if cycle > inject_at && expiry.is_none_or(|e| cycle < e) {
                    sim.release(*net);
                    sim.force(Force::stuck(*net, rng.gen()));
                }
            } else if let VfitFault::FfIndet { cell, oscillating } = fault {
                // A VHDL `force` holds the register for the whole window;
                // the oscillating variant re-randomises each cycle.
                if cycle > inject_at && expiry.is_none_or(|e| cycle < e) {
                    let value = if *oscillating {
                        rng.gen()
                    } else {
                        self.held_value(fault, rng)
                    };
                    sim.set_ff(*cell, value);
                }
            }
            sim.settle();
            let mut row = Vec::with_capacity(self.ports.len());
            for p in &self.ports {
                row.push(sim.output_u64(p)?);
            }
            trace.push_cycle(row);
            sim.clock_edge();
            if Some(cycle + 1) == expiry {
                sim.clear_forces();
            }
        }
        let outcome = if !trace.diff(&self.golden_trace).identical() {
            Outcome::Failure
        } else if sim.state_snapshot() != self.golden_state {
            Outcome::Latent
        } else {
            Outcome::Silent
        };
        Ok(outcome)
    }

    /// The level a fixed indetermination holds: drawn once per experiment
    /// from the experiment's own RNG stream, so it is stable across the
    /// window. (The first `gen` call after injection made the draw; this
    /// recomputes it deterministically from the fault identity.)
    fn held_value(&self, fault: &VfitFault, _rng: &mut StdRng) -> bool {
        // Stable per-fault level: hash the target id.
        let id = match fault {
            VfitFault::FfIndet { cell, .. } => cell.index() as u64,
            _ => 0,
        };
        (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63) & 1 == 1
    }

    fn apply(&self, sim: &mut Simulator<'_>, fault: &VfitFault, rng: &mut StdRng) {
        match fault {
            VfitFault::FfBitFlip(cell) => {
                let v = sim.ff_value(*cell);
                sim.set_ff(*cell, !v);
            }
            VfitFault::MemBitFlip { cell, addr, bit } => {
                sim.flip_mem_bit(*cell, *addr, *bit);
            }
            VfitFault::SignalPulse(net) => {
                sim.force(Force::flip(*net));
            }
            VfitFault::SignalIndet { net, .. } => {
                sim.force(Force::stuck(*net, rng.gen()));
            }
            VfitFault::FfIndet { cell, oscillating } => {
                let value = if *oscillating {
                    rng.gen()
                } else {
                    self.held_value(fault, rng)
                };
                sim.set_ff(*cell, value);
            }
        }
    }
}
