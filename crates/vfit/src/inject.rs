//! Simulator-command fault descriptions.

use fades_core::{DurationRange, FaultModel};
use fades_netlist::{Cell, CellId, NetId, Netlist, UnitTag};
use rand::rngs::StdRng;
use rand::Rng;

/// Model elements VFIT can force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfitTargetClass {
    /// All flip-flops (registers of the model).
    AllFfs,
    /// Flip-flops of one unit.
    FfsOfUnit(UnitTag),
    /// An explicit list of flip-flop cells (e.g. the same screened
    /// registers a FADES campaign targets, for Table 3 comparisons).
    FfList(Vec<CellId>),
    /// Words of a named memory in an address range (inclusive).
    MemoryWords {
        /// Memory name.
        name: String,
        /// First address.
        lo: usize,
        /// Last address (inclusive).
        hi: usize,
    },
    /// Signals driven by combinational cells (LUT outputs).
    CombinationalSignals,
    /// Signals driven by combinational cells of one unit.
    SignalsOfUnit(UnitTag),
}

/// A concrete simulator-command fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfitFault {
    /// Flip a register bit once.
    FfBitFlip(CellId),
    /// Flip a stored memory bit once.
    MemBitFlip {
        /// Memory cell.
        cell: CellId,
        /// Word address.
        addr: usize,
        /// Bit within the word.
        bit: usize,
    },
    /// Invert a signal for the fault window (`force`/`release`).
    SignalPulse(NetId),
    /// Force a signal to a random level for the window.
    SignalIndet {
        /// Target net.
        net: NetId,
        /// Re-randomise every cycle.
        oscillating: bool,
    },
    /// Force a register bit to a random level.
    FfIndet {
        /// Target register bit.
        cell: CellId,
        /// Re-randomise every cycle.
        oscillating: bool,
    },
}

/// A VFIT fault load.
#[derive(Debug, Clone)]
pub struct VfitFaultLoad {
    /// Fault model (delay is rejected at resolution time).
    pub model: FaultModel,
    /// Targeted model elements.
    pub target: VfitTargetClass,
    /// Duration range.
    pub duration: DurationRange,
    /// Indeterminations: oscillate every cycle.
    pub oscillating: bool,
}

impl VfitFaultLoad {
    /// Bit-flip load.
    pub fn bit_flips(target: VfitTargetClass, duration: DurationRange) -> Self {
        VfitFaultLoad {
            model: FaultModel::BitFlip,
            target,
            duration,
            oscillating: false,
        }
    }

    /// Pulse load.
    pub fn pulses(target: VfitTargetClass, duration: DurationRange) -> Self {
        VfitFaultLoad {
            model: FaultModel::Pulse,
            target,
            duration,
            oscillating: false,
        }
    }

    /// Indetermination load.
    pub fn indeterminations(
        target: VfitTargetClass,
        duration: DurationRange,
        oscillating: bool,
    ) -> Self {
        VfitFaultLoad {
            model: FaultModel::Indetermination,
            target,
            duration,
            oscillating,
        }
    }
}

/// Enumerates the injectable model elements of a class.
pub(crate) fn resolve(netlist: &Netlist, class: &VfitTargetClass) -> Vec<VfitFault> {
    match class {
        VfitTargetClass::AllFfs => netlist
            .dff_ids()
            .into_iter()
            .map(VfitFault::FfBitFlip)
            .collect(),
        VfitTargetClass::FfsOfUnit(unit) => netlist
            .dff_ids()
            .into_iter()
            .filter(|&id| netlist.unit(id) == *unit)
            .map(VfitFault::FfBitFlip)
            .collect(),
        VfitTargetClass::FfList(cells) => cells.iter().copied().map(VfitFault::FfBitFlip).collect(),
        VfitTargetClass::MemoryWords { name, lo, hi } => {
            let Ok(cell) = netlist.ram_by_name(name) else {
                return Vec::new();
            };
            let Cell::Ram(ram) = netlist.cell(cell) else {
                return Vec::new();
            };
            let mut v = Vec::new();
            for addr in *lo..=*hi {
                for bit in 0..ram.width() {
                    v.push(VfitFault::MemBitFlip { cell, addr, bit });
                }
            }
            v
        }
        VfitTargetClass::CombinationalSignals => netlist
            .lut_ids()
            .into_iter()
            .flat_map(|id| netlist.cell(id).outputs())
            .map(VfitFault::SignalPulse)
            .collect(),
        VfitTargetClass::SignalsOfUnit(unit) => netlist
            .lut_ids()
            .into_iter()
            .filter(|&id| netlist.unit(id) == *unit)
            .flat_map(|id| netlist.cell(id).outputs())
            .map(VfitFault::SignalPulse)
            .collect(),
    }
}

/// Specialises a sampled element to the fault model.
pub(crate) fn specialise(load: &VfitFaultLoad, base: VfitFault, _rng: &mut StdRng) -> VfitFault {
    match (&load.model, base) {
        (FaultModel::BitFlip, f) => f,
        (FaultModel::Pulse, VfitFault::FfBitFlip(cell)) => {
            // A pulse on a register's input manifests as a flip; VFIT
            // treats register pulses as bit-flips.
            VfitFault::FfBitFlip(cell)
        }
        (FaultModel::Pulse, f) => f,
        (FaultModel::Indetermination, VfitFault::FfBitFlip(cell)) => VfitFault::FfIndet {
            cell,
            oscillating: load.oscillating,
        },
        (FaultModel::Indetermination, VfitFault::SignalPulse(net)) => VfitFault::SignalIndet {
            net,
            oscillating: load.oscillating,
        },
        (_, f) => f,
    }
}

/// Counts the simulator commands a fault costs (stop/force + release).
pub(crate) fn command_count(fault: &VfitFault, duration: Option<u64>) -> u64 {
    match fault {
        VfitFault::FfBitFlip(_) | VfitFault::MemBitFlip { .. } => 1,
        VfitFault::SignalPulse(_) => 2,
        VfitFault::SignalIndet { oscillating, .. } | VfitFault::FfIndet { oscillating, .. } => {
            if *oscillating {
                1 + duration.unwrap_or(1).max(1)
            } else {
                2
            }
        }
    }
}

pub(crate) fn sample(load: &VfitFaultLoad, pool: &[VfitFault], rng: &mut StdRng) -> VfitFault {
    let base = pool[rng.gen_range(0..pool.len())].clone();
    specialise(load, base, rng)
}
