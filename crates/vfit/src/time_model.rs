//! The VFIT execution-time model.

use fades_netlist::Netlist;

/// Models the wall-clock cost of simulator-command fault injection.
///
/// Classical model-based injection spends almost all of its time
/// *simulating the model on a CPU*; the injection commands themselves are
/// nearly free (paper §7.1). Each experiment therefore costs
/// `cells × cycles × per-event cost` plus a small per-command overhead —
/// which is why the paper measured essentially the same 7.2 s/fault for
/// every fault model and duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfitTimeModel {
    /// Seconds the simulator spends evaluating one cell for one cycle.
    pub per_event_s: f64,
    /// Seconds per simulator command (stop, force, release, resume).
    pub per_command_s: f64,
}

impl VfitTimeModel {
    /// Calibrated against the paper's measured 21 600 s for 3000 faults
    /// on the ~1300-cycle Bubblesort over the 8051 model.
    pub fn paper_calibrated() -> Self {
        VfitTimeModel {
            per_event_s: 2.9e-6,
            per_command_s: 1e-3,
        }
    }

    /// Modelled seconds for one experiment.
    pub fn experiment_seconds(&self, netlist: &Netlist, cycles: u64, commands: u64) -> f64 {
        netlist.cell_count() as f64 * cycles as f64 * self.per_event_s
            + commands as f64 * self.per_command_s
    }
}
