//! Placement and resource-map behaviour on the real 8051 design.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)]

use fades_fpga::ArchParams;
use fades_mcu8051::{build_soc, workloads};
use fades_netlist::{Cell, UnitTag};
use fades_pnr::implement;

#[test]
fn packing_shares_blocks_between_luts_and_their_registers() {
    let soc = build_soc(&workloads::bubblesort().rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let (luts, ffs, _) = imp.bitstream.utilisation();
    let stats = soc.netlist.stats();
    assert_eq!(luts, stats.luts);
    assert_eq!(ffs, stats.ffs);
    // Packing must have put at least some FFs on the same block as their
    // driving LUT: total occupied CBs < LUTs + FFs.
    let occupied = imp
        .bitstream
        .cbs()
        .iter()
        .filter(|c| !c.is_unused())
        .count();
    assert!(
        occupied < luts + ffs,
        "packing saves blocks: {occupied} occupied vs {} cells",
        luts + ffs
    );
}

#[test]
fn resource_map_finds_named_registers() {
    let soc = build_soc(&workloads::bubblesort().rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let acc = imp.map.ff_sites_of_register(&soc.netlist, "acc");
    assert_eq!(acc.len(), 8, "the accumulator has eight flip-flops");
    let pc = imp.map.ff_sites_of_register(&soc.netlist, "pc");
    assert_eq!(pc.len(), 16);
    // Reverse lookup round-trips.
    for site in acc {
        let cell = imp.map.ff_cell_at(site).expect("site maps back");
        let Cell::Dff(d) = soc.netlist.cell(cell) else {
            panic!("not a DFF")
        };
        assert!(d.name.starts_with("acc["), "{}", d.name);
    }
}

#[test]
fn every_unit_has_luts_wires_and_disjoint_columns() {
    let soc = build_soc(&workloads::bubblesort().rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let mut unit_cols: Vec<(UnitTag, Vec<u16>)> = Vec::new();
    for unit in [
        UnitTag::Alu,
        UnitTag::MemCtl,
        UnitTag::Fsm,
        UnitTag::Registers,
    ] {
        let luts = imp.map.lut_sites_of_unit(&soc.netlist, unit);
        assert!(!luts.is_empty(), "{unit} has LUTs");
        let wires = imp.map.wires_of_unit(&soc.netlist, unit);
        assert!(!wires.is_empty(), "{unit} has wires");
        let mut cols: Vec<u16> = luts.iter().map(|cb| cb.col).collect();
        cols.sort_unstable();
        cols.dedup();
        unit_cols.push((unit, cols));
    }
    for i in 0..unit_cols.len() {
        for j in i + 1..unit_cols.len() {
            let (ua, a) = &unit_cols[i];
            let (ub, b) = &unit_cols[j];
            assert!(
                a.iter().all(|c| !b.contains(c)),
                "{ua} and {ub} share columns"
            );
        }
    }
}

#[test]
fn sequential_and_combinational_wires_partition_cleanly() {
    let soc = build_soc(&workloads::bubblesort().rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    let seq = imp.map.sequential_wires(&soc.netlist);
    let comb = imp.map.combinational_wires(&soc.netlist);
    assert!(!seq.is_empty() && !comb.is_empty());
    for w in &seq {
        assert!(!comb.contains(w), "wire {w} in both classes");
    }
    // Every used FF with a routed output contributes a sequential wire.
    assert!(seq.len() <= soc.netlist.dff_ids().len());
}

#[test]
fn routed_wires_have_plausible_metadata() {
    let soc = build_soc(&workloads::bubblesort().rom).unwrap();
    let imp = implement(&soc.netlist, ArchParams::virtex1000_like()).unwrap();
    for wire in imp.bitstream.wires() {
        assert!(wire.segments >= 1, "every route uses a segment");
        assert!(wire.pass_transistors >= wire.sinks.len() as u32);
        assert!(wire.col_span.0 <= wire.col_span.1);
        assert_eq!(wire.extra_fanout, 0, "no faults at implementation time");
        assert_eq!(wire.detour_luts, 0);
    }
}
