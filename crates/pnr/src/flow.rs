//! The place-and-route flow itself.

use std::collections::HashMap;

use fades_fpga::{ArchParams, Bitstream, BramId, CbCoord, FfDSrc, WireId, WireSink};
use fades_netlist::{Cell, CellId, NetId, Netlist, PortDir, UnitTag};

use crate::error::PnrError;
use crate::resource_map::ResourceMap;

/// Result of implementing a netlist on an architecture.
#[derive(Debug, Clone)]
pub struct Implementation {
    /// The configuration file to download.
    pub bitstream: Bitstream,
    /// HDL-element → resource mapping (fault-location input).
    pub map: ResourceMap,
}

/// What occupies one placement slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// A LUT alone.
    Lut(CellId),
    /// A flip-flop alone (data arrives over a wire).
    Ff(CellId),
    /// A LUT packed with the flip-flop that registers it.
    Packed { lut: CellId, ff: CellId },
}

/// Places and routes a netlist onto the given architecture.
///
/// Placement packs each flip-flop with its driving LUT when that LUT has no
/// other reader (standard CB packing), then assigns every unit tag a
/// contiguous band of columns — mirroring how the paper's experiments
/// target the 8051's ALU / MEM / FSM regions separately. Routing is
/// bounding-box based: each net's segment and pass-transistor counts are
/// derived from the half-perimeter of its terminals, which is what the
/// delay-fault time and timing models consume.
///
/// # Errors
///
/// Returns [`PnrError::DeviceFull`] when the design does not fit,
/// [`PnrError::MemoryTooLarge`] when a memory exceeds one block, or a
/// wrapped FPGA error for inconsistent construction.
pub fn implement(netlist: &Netlist, arch: ArchParams) -> Result<Implementation, PnrError> {
    let mut bs = Bitstream::new(arch);
    let mut map = ResourceMap::with_sizes(netlist.cell_count(), netlist.net_count());

    // --- Analysis: reader counts per net -------------------------------
    let mut readers = vec![0u32; netlist.net_count()];
    for cell in netlist.cells() {
        for net in cell.inputs() {
            readers[net.index()] += 1;
        }
    }
    for port in netlist.ports() {
        if port.dir == PortDir::Output {
            for &net in &port.bits {
                readers[net.index()] += 1;
            }
        }
    }

    // --- Packing decisions ---------------------------------------------
    // A DFF packs with its driving LUT when the LUT's only reader is the
    // DFF itself (its output net is not observed anywhere else).
    let mut packed_lut_of_ff: HashMap<CellId, CellId> = HashMap::new();
    let mut lut_is_packed: Vec<bool> = vec![false; netlist.cell_count()];
    for ff_id in netlist.dff_ids() {
        let Cell::Dff(ff) = netlist.cell(ff_id) else {
            unreachable!()
        };
        if let Some(drv) = netlist.driver(ff.d) {
            if let Cell::Lut(_) = netlist.cell(drv) {
                let out = netlist.cell(drv).outputs()[0];
                // Only pack within a unit so the per-unit column bands stay
                // exact (fault campaigns target units by region).
                if readers[out.index()] == 1
                    && !lut_is_packed[drv.index()]
                    && netlist.unit(drv) == netlist.unit(ff_id)
                {
                    packed_lut_of_ff.insert(ff_id, drv);
                    lut_is_packed[drv.index()] = true;
                }
            }
        }
    }

    // --- Slot construction, grouped by unit ----------------------------
    let mut slots_per_unit: HashMap<UnitTag, Vec<Slot>> = HashMap::new();
    for ff_id in netlist.dff_ids() {
        let unit = netlist.unit(ff_id);
        let slot = match packed_lut_of_ff.get(&ff_id) {
            Some(&lut) => Slot::Packed { lut, ff: ff_id },
            None => Slot::Ff(ff_id),
        };
        slots_per_unit.entry(unit).or_default().push(slot);
    }
    for lut_id in netlist.lut_ids() {
        if lut_is_packed[lut_id.index()] {
            continue;
        }
        let unit = netlist.unit(lut_id);
        slots_per_unit
            .entry(unit)
            .or_default()
            .push(Slot::Lut(lut_id));
    }

    let total_slots: usize = slots_per_unit.values().map(Vec::len).sum();
    // Keep at least two columns spare for delay-fault detours.
    let spare_cols = 2usize.min(arch.cols as usize / 8);
    let available = (arch.cols as usize - spare_cols) * arch.rows as usize;
    if total_slots > available {
        return Err(PnrError::DeviceFull {
            needed: total_slots,
            available,
        });
    }

    // --- Site assignment: contiguous column bands per unit -------------
    let mut site_of_slot: Vec<(Slot, CbCoord)> = Vec::with_capacity(total_slots);
    let mut next_col: u16 = 0;
    for unit in UnitTag::ALL {
        let Some(slots) = slots_per_unit.get(&unit) else {
            continue;
        };
        let mut row: u16 = 0;
        let mut col = next_col;
        for &slot in slots {
            if row == arch.rows {
                row = 0;
                col += 1;
            }
            site_of_slot.push((slot, CbCoord::new(col, row)));
            row += 1;
        }
        // Next unit starts on a fresh column (bands never share columns,
        // so per-unit targeting by region is exact).
        next_col = col + 1;
    }

    // --- Placement: create all output wires ----------------------------
    for port in netlist.ports() {
        if port.dir == PortDir::Input {
            let wires = bs.add_input(port.name.clone(), port.bits.len());
            for (&net, &wire) in port.bits.iter().zip(&wires) {
                map.net_wire[net.index()] = Some(wire);
            }
        }
    }
    for (slot, site) in &site_of_slot {
        match *slot {
            Slot::Lut(lut) => {
                let Cell::Lut(l) = netlist.cell(lut) else {
                    unreachable!()
                };
                let w = bs.place_lut(*site, l.table)?;
                map.lut_site[lut.index()] = Some(*site);
                map.net_wire[l.output.index()] = Some(w);
            }
            Slot::Ff(ff) => {
                let Cell::Dff(d) = netlist.cell(ff) else {
                    unreachable!()
                };
                let w = bs.place_ff(*site, d.init)?;
                map.ff_site[ff.index()] = Some(*site);
                map.net_wire[d.q.index()] = Some(w);
            }
            Slot::Packed { lut, ff } => {
                let Cell::Lut(l) = netlist.cell(lut) else {
                    unreachable!()
                };
                let Cell::Dff(d) = netlist.cell(ff) else {
                    unreachable!()
                };
                let lw = bs.place_lut(*site, l.table)?;
                let fw = bs.place_ff(*site, d.init)?;
                map.lut_site[lut.index()] = Some(*site);
                map.ff_site[ff.index()] = Some(*site);
                map.net_wire[l.output.index()] = Some(lw);
                map.net_wire[d.q.index()] = Some(fw);
            }
        }
    }
    let mut bram_of_cell: HashMap<CellId, BramId> = HashMap::new();
    for ram_id in netlist.ram_ids() {
        let Cell::Ram(r) = netlist.cell(ram_id) else {
            unreachable!()
        };
        if r.capacity_bits() > arch.bram_bits as usize {
            return Err(PnrError::MemoryTooLarge {
                name: r.name.clone(),
                bits: r.capacity_bits(),
            });
        }
        let (bram, dout) =
            bs.place_bram(r.name.clone(), r.addr.len(), r.width() as u32, &r.init)?;
        bram_of_cell.insert(ram_id, bram);
        map.ram_site[ram_id.index()] = Some(bram);
        for (&net, &wire) in r.dout.iter().zip(&dout) {
            map.net_wire[net.index()] = Some(wire);
        }
    }

    // --- Connection pass ------------------------------------------------
    let wire_of = |map: &ResourceMap, net: NetId| -> WireId {
        // Invariant of the construction pass above: every driven net got
        // a wire. A miss here is a bug in the flow itself, not bad input.
        map.net_wire[net.index()].unwrap_or_else(|| unreachable!("driven net without a wire"))
    };
    for (slot, site) in &site_of_slot {
        match *slot {
            Slot::Lut(lut) | Slot::Packed { lut, .. } => {
                let Cell::Lut(l) = netlist.cell(lut) else {
                    unreachable!()
                };
                for (pin, input) in l.inputs.iter().enumerate() {
                    if let Some(net) = input {
                        bs.connect_lut_pin(*site, pin as u8, wire_of(&map, *net))?;
                    }
                }
            }
            Slot::Ff(_) => {}
        }
        match *slot {
            Slot::Ff(ff) => {
                let Cell::Dff(d) = netlist.cell(ff) else {
                    unreachable!()
                };
                bs.connect_ff(*site, FfDSrc::Direct(wire_of(&map, d.d)))?;
            }
            Slot::Packed { .. } => {
                bs.connect_ff(*site, FfDSrc::LutOut)?;
            }
            Slot::Lut(_) => {}
        }
    }
    for (ram_id, bram) in &bram_of_cell {
        let Cell::Ram(r) = netlist.cell(*ram_id) else {
            unreachable!()
        };
        let addr: Vec<WireId> = r.addr.iter().map(|&n| wire_of(&map, n)).collect();
        let din: Vec<WireId> = r.din.iter().map(|&n| wire_of(&map, n)).collect();
        let we = r.write_enable.map(|n| wire_of(&map, n));
        bs.connect_bram(*bram, &addr, &din, we)?;
    }
    for port in netlist.ports() {
        if port.dir == PortDir::Output {
            let wires: Vec<WireId> = port.bits.iter().map(|&n| wire_of(&map, n)).collect();
            bs.add_output(port.name.clone(), &wires)?;
        }
    }

    route(&mut bs, arch)?;

    Ok(Implementation { bitstream: bs, map })
}

/// Fills in routing metadata (segments, pass transistors, column span) for
/// every wire from the bounding box of its terminals.
fn route(bs: &mut Bitstream, arch: ArchParams) -> Result<(), PnrError> {
    let bram_col = |bram: BramId| -> u16 {
        // Memory blocks sit in dedicated columns on the right edge.
        arch.cols - 1 - (bram.index() as u16 % arch.cols.max(1))
    };
    let n = bs.wires().len();
    for wi in 0..n {
        let wire = &bs.wires()[wi];
        let mut cols: Vec<u16> = Vec::with_capacity(1 + wire.sinks.len());
        let mut rows: Vec<u16> = Vec::with_capacity(1 + wire.sinks.len());
        match &wire.driver {
            fades_fpga::WireDriver::CbLut(cb) | fades_fpga::WireDriver::CbFf(cb) => {
                cols.push(cb.col);
                rows.push(cb.row);
            }
            fades_fpga::WireDriver::PrimaryInput { bit, .. } => {
                cols.push(0);
                rows.push((*bit % arch.rows as u32) as u16);
            }
            fades_fpga::WireDriver::BramDout { bram, .. } => {
                cols.push(bram_col(*bram));
                rows.push(0);
            }
        }
        for sink in &wire.sinks {
            match sink {
                WireSink::LutPin { cb, .. } | WireSink::FfDirect { cb } => {
                    cols.push(cb.col);
                    rows.push(cb.row);
                }
                WireSink::BramAddr { bram, .. }
                | WireSink::BramDin { bram, .. }
                | WireSink::BramWe { bram } => {
                    cols.push(bram_col(*bram));
                    rows.push(0);
                }
                WireSink::PrimaryOutput { bit, .. } => {
                    cols.push(arch.cols - 1);
                    rows.push((*bit % arch.rows as u32) as u16);
                }
            }
        }
        let (min_c, max_c) = (
            cols.iter().min().copied().unwrap_or(0),
            cols.iter().max().copied().unwrap_or(0),
        );
        let (min_r, max_r) = (
            rows.iter().min().copied().unwrap_or(0),
            rows.iter().max().copied().unwrap_or(0),
        );
        let half_perimeter = (max_c - min_c) as u32 + (max_r - min_r) as u32;
        let n_sinks = wire.sinks.len() as u32;
        // One segment per four grid units of span plus one per sink branch.
        let segments = 1 + half_perimeter / 4 + n_sinks / 2;
        let pass_transistors = segments + n_sinks;
        bs.set_routing(
            WireId::from_index(wi),
            segments,
            pass_transistors,
            (min_c, max_c),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fades_fpga::Device;
    use fades_netlist::{NetlistBuilder, Simulator};
    use fades_rtl::RtlBuilder;

    /// An 8-bit LFSR with an output port: a sequential circuit with
    /// feedback, exercising packing, placement, routing and equivalence.
    fn lfsr_netlist() -> Netlist {
        let mut b = RtlBuilder::new("lfsr");
        let r = b.reg("lfsr", 8, 1);
        let q = r.q().clone();
        let tap = {
            let t1 = b.xor_bit(q.bit(7), q.bit(5));
            let t2 = b.xor_bit(q.bit(4), q.bit(3));
            b.xor_bit(t1, t2)
        };
        let shifted = b.shl_const(&q, 1);
        let mut bits = shifted.bits().to_vec();
        bits[0] = tap;
        let next = fades_rtl::Signal::from_bits(bits);
        b.connect(r, &next);
        b.output("q", &q);
        b.finish().unwrap()
    }

    #[test]
    fn implemented_lfsr_matches_netlist_simulation() {
        let nl = lfsr_netlist();
        let imp = implement(&nl, ArchParams::small()).unwrap();
        let mut dev = Device::configure(imp.bitstream).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..200 {
            sim.settle();
            dev.settle();
            assert_eq!(sim.output_u64("q").unwrap(), dev.output_u64("q").unwrap());
            sim.clock_edge();
            dev.clock_edge();
        }
    }

    #[test]
    fn units_get_disjoint_column_bands() {
        let mut b = NetlistBuilder::new("units");
        let a = b.input("a", 1)[0];
        b.set_unit(UnitTag::Alu);
        let x = b.not(a);
        let q1 = b.dff("alu_q[0]", x, false);
        b.set_unit(UnitTag::Fsm);
        let y = b.not(a);
        let q2 = b.dff("fsm_q[0]", y, false);
        b.output("o", &[q1, q2]);
        let nl = b.finish().unwrap();
        let imp = implement(&nl, ArchParams::small()).unwrap();
        let alu = imp.map.ff_sites_of_unit(&nl, UnitTag::Alu);
        let fsm = imp.map.ff_sites_of_unit(&nl, UnitTag::Fsm);
        assert!(!alu.is_empty() && !fsm.is_empty());
        for a_site in &alu {
            for f_site in &fsm {
                assert_ne!(a_site.col, f_site.col, "unit bands must not share columns");
            }
        }
    }

    #[test]
    fn device_full_is_reported() {
        let mut b = NetlistBuilder::new("big");
        let a = b.input("a", 1)[0];
        let mut nets = vec![a];
        for _ in 0..(16 * 16 + 10) {
            let prev = *nets.last().unwrap();
            nets.push(b.not(prev));
        }
        let last = *nets.last().unwrap();
        b.output("o", &[last]);
        let nl = b.finish().unwrap();
        assert!(matches!(
            implement(&nl, ArchParams::small()),
            Err(PnrError::DeviceFull { .. })
        ));
    }

    #[test]
    fn memory_contents_and_map_survive_implementation() {
        let mut b = NetlistBuilder::new("rom");
        let addr = b.input("addr", 4);
        let dout = b.rom("boot", &addr, 8, &[0x12, 0x34, 0x56]).unwrap();
        b.output("dout", &dout);
        let nl = b.finish().unwrap();
        let imp = implement(&nl, ArchParams::small()).unwrap();
        let ram_cell = nl.ram_by_name("boot").unwrap();
        let bram = imp.map.ram_site(ram_cell).unwrap();
        assert_eq!(imp.bitstream.bram(bram).unwrap().contents[1], 0x34);
        let mut dev = Device::configure(imp.bitstream).unwrap();
        dev.set_input("addr", &[true, false, false, false]).unwrap();
        dev.settle();
        assert_eq!(dev.output_u64("dout").unwrap(), 0x34);
    }
}
