//! Synthesis implementation flow: netlist → placed-and-routed bitstream.
//!
//! This crate models the vendor "synthesis and implementation" step of the
//! paper's Figure 1: it takes a technology-mapped [`fades_netlist::Netlist`]
//! and produces
//!
//! * a [`fades_fpga::Bitstream`] (the configuration file that is downloaded
//!   into the device), and
//! * a [`ResourceMap`] establishing the correspondence between HDL model
//!   elements (registers, signals, memories) and FPGA internal resources
//!   (CBs, wires, memory blocks).
//!
//! The resource map is the artefact the paper's *fault location process*
//! needs: model elements can be renamed, merged or moved by implementation,
//! so fault injection must target physical resources resolved through this
//! mapping.
//!
//! # Example
//!
//! ```
//! use fades_netlist::NetlistBuilder;
//! use fades_fpga::{ArchParams, Device};
//! use fades_pnr::implement;
//!
//! let mut b = NetlistBuilder::new("buf");
//! let a = b.input("a", 1)[0];
//! let q = b.dff("q", a, false);
//! b.output("q", &[q]);
//! let netlist = b.finish()?;
//!
//! let imp = implement(&netlist, ArchParams::small())?;
//! let mut dev = Device::configure(imp.bitstream)?;
//! dev.set_input("a", &[true])?;
//! dev.step();
//! dev.settle();
//! assert_eq!(dev.output_u64("q")?, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::missing_panics_doc)
)]

mod error;
mod flow;
mod resource_map;

pub use error::PnrError;
pub use flow::{implement, Implementation};
pub use resource_map::ResourceMap;
