//! Implementation-flow errors.

use std::error::Error;
use std::fmt;

use fades_fpga::FpgaError;
use fades_netlist::NetlistError;

/// Errors from the place-and-route flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnrError {
    /// The design needs more configurable blocks than the device has.
    DeviceFull {
        /// CBs required by the design.
        needed: usize,
        /// CBs available on the device.
        available: usize,
    },
    /// A memory does not fit in one memory block.
    MemoryTooLarge {
        /// Memory name.
        name: String,
        /// Requested bits.
        bits: usize,
    },
    /// An error raised by the FPGA model.
    Fpga(FpgaError),
    /// An error raised by the netlist layer.
    Netlist(NetlistError),
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::DeviceFull { needed, available } => {
                write!(f, "design needs {needed} CBs, device has {available}")
            }
            PnrError::MemoryTooLarge { name, bits } => {
                write!(f, "memory `{name}` ({bits} bits) does not fit one block")
            }
            PnrError::Fpga(e) => write!(f, "fpga: {e}"),
            PnrError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl Error for PnrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PnrError::Fpga(e) => Some(e),
            PnrError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FpgaError> for PnrError {
    fn from(e: FpgaError) -> Self {
        PnrError::Fpga(e)
    }
}

impl From<NetlistError> for PnrError {
    fn from(e: NetlistError) -> Self {
        PnrError::Netlist(e)
    }
}
